//! The thread-local event bus.
//!
//! Every crate in the workspace emits onto one per-thread bus through
//! free functions, so no plumbing of handles through constructors is
//! needed and there are no dependency cycles. The simulation is
//! single-threaded, which makes "per thread" mean "per simulation" in
//! practice (and keeps parallel test binaries isolated from each other).
//!
//! Determinism: sequence numbers and span ids are dense counters, time
//! comes from the simulator's virtual clock, and nothing reads the wall
//! clock — so the same seed produces a byte-identical event stream.
//! [`reset`] is called by `Sim::new`, giving each simulation a fresh
//! stream.
//!
//! # Bounded collection
//!
//! By default the bus buffers every event — right for tests and small
//! scenarios, wrong for million-invocation runs. [`set_collect`]
//! installs a [`CollectConfig`] with two independent bounds:
//!
//! - **Head-based sampling** (`sample_denom = Some(d)`): each event is
//!   attributed to the *root* of its span's parent chain (the causality
//!   id — one invocation, one migration, one message tree), and only
//!   roots whose hash lands in the 1-in-`d` admitted class are buffered.
//!   The decision is a pure function of the root id, so a kept
//!   invocation keeps **all** its spans and the same seed keeps the same
//!   invocations. Events with no span at all are always kept.
//! - **Ring buffer** (`ring_capacity = Some(n)`): at most `n` events are
//!   buffered; the oldest is evicted as new ones arrive.
//!
//! Both modes count what they discard — [`drop_stats`] and the
//! `observe.drop.sampled` / `observe.drop.ring` counters — so truncation
//! is never silent. Sequence numbers are allocated *before* the sampling
//! decision: a sampled trace is exactly the full trace filtered to the
//! admitted roots, gaps and all. The config survives [`reset`] (like the
//! enabled flag); the drop counters, sampling state, and peak trackers
//! do not.

use crate::event::{Event, EventBuilder, SpanId};
use crate::metrics::{Histogram, Registry};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};

/// Bounds on event collection. Default (`None`/`None`) buffers
/// everything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectConfig {
    /// Keep at most this many events, evicting the oldest.
    pub ring_capacity: Option<usize>,
    /// Keep roughly 1 in `d` causal trees (head-based, keyed on the root
    /// span id). `Some(1)` keeps everything; `Some(0)` is treated as 1.
    pub sample_denom: Option<u64>,
}

/// What bounded collection has discarded since the last [`reset`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropStats {
    /// Events rejected by head-based sampling.
    pub sampled_out: u64,
    /// Events evicted by the ring buffer.
    pub ring_evicted: u64,
}

impl DropStats {
    /// Total events discarded.
    pub fn total(&self) -> u64 {
        self.sampled_out + self.ring_evicted
    }
}

#[derive(Debug)]
struct BusState {
    enabled: bool,
    collect: CollectConfig,
    now_us: u64,
    next_seq: u64,
    next_span: SpanId,
    context: Vec<SpanId>,
    events: VecDeque<Event>,
    metrics: Registry,
    drops: DropStats,
    /// First-declared parent of each span (learned from every event,
    /// sampled-out ones included, so late events of a rejected tree
    /// still resolve to the same root).
    parent_of: BTreeMap<SpanId, SpanId>,
    /// Memoised root of each span's parent chain.
    root_of: BTreeMap<SpanId, SpanId>,
    cur_bytes: usize,
    peak_bytes: usize,
    peak_events: usize,
}

impl BusState {
    fn fresh() -> Self {
        Self {
            enabled: true,
            collect: CollectConfig::default(),
            now_us: 0,
            next_seq: 0,
            // Span 0 is reserved as "no span" in renderings.
            next_span: 1,
            context: Vec::new(),
            events: VecDeque::new(),
            metrics: Registry::new(),
            drops: DropStats::default(),
            parent_of: BTreeMap::new(),
            root_of: BTreeMap::new(),
            cur_bytes: 0,
            peak_bytes: 0,
            peak_events: 0,
        }
    }

    /// Resolves (and memoises) the root of a span's parent chain.
    fn root(&mut self, span: SpanId) -> SpanId {
        if let Some(&r) = self.root_of.get(&span) {
            return r;
        }
        let mut chain = vec![span];
        let mut cur = span;
        while let Some(&p) = self.parent_of.get(&cur) {
            if let Some(&r) = self.root_of.get(&p) {
                cur = r;
                break;
            }
            if chain.contains(&p) {
                break; // defensive: a cycle would otherwise hang us
            }
            chain.push(p);
            cur = p;
        }
        for s in chain {
            self.root_of.insert(s, cur);
        }
        cur
    }
}

thread_local! {
    static BUS: RefCell<BusState> = RefCell::new(BusState::fresh());
}

/// The approximate buffered size of one event: the struct itself plus
/// its detail string. The unit of [`peak_trace_bytes`].
pub fn approx_event_bytes(e: &Event) -> usize {
    std::mem::size_of::<Event>() + e.detail.len()
}

/// FNV-1a over the root span id — the pure sampling hash.
fn fnv1a(v: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Whether head-based sampling at 1-in-`denom` admits the causal tree
/// rooted at `root`. Pure: tests and analyzers can predict exactly which
/// invocations a sampled run kept.
pub fn sample_admits(root: SpanId, denom: u64) -> bool {
    fnv1a(root).is_multiple_of(denom.max(1))
}

/// Clears the bus: events, metrics, counters, clock, drop counters,
/// sampling state, peak trackers. Called by `Sim::new` so each
/// simulation starts a fresh deterministic stream. The enabled/disabled
/// setting and the [`CollectConfig`] survive the reset, so a benchmark
/// that turned recording off (or sampling on) keeps that setting across
/// simulation rebuilds.
pub fn reset() {
    BUS.with(|b| {
        let (enabled, collect) = {
            let s = b.borrow();
            (s.enabled, s.collect)
        };
        let mut fresh = BusState::fresh();
        fresh.enabled = enabled;
        fresh.collect = collect;
        *b.borrow_mut() = fresh;
    });
}

/// Enables or disables recording. Disabled recording is a cheap no-op;
/// span allocation still works (ids keep advancing) so code paths do not
/// branch on the setting.
pub fn set_enabled(enabled: bool) {
    BUS.with(|b| b.borrow_mut().enabled = enabled);
}

/// Whether the bus is currently recording.
pub fn is_enabled() -> bool {
    BUS.with(|b| b.borrow().enabled)
}

/// Installs collection bounds (see the module docs). Takes effect for
/// subsequent events; already-buffered events stay. Survives [`reset`].
pub fn set_collect(config: CollectConfig) {
    BUS.with(|b| b.borrow_mut().collect = config);
}

/// The current collection bounds.
pub fn collect_config() -> CollectConfig {
    BUS.with(|b| b.borrow().collect)
}

/// What bounded collection has discarded since the last [`reset`].
pub fn drop_stats() -> DropStats {
    BUS.with(|b| b.borrow().drops)
}

/// High-water mark of buffered events since the last [`reset`].
pub fn peak_trace_events() -> usize {
    BUS.with(|b| b.borrow().peak_events)
}

/// High-water mark of approximate buffered bytes since the last
/// [`reset`] (see [`approx_event_bytes`]).
pub fn peak_trace_bytes() -> usize {
    BUS.with(|b| b.borrow().peak_bytes)
}

/// Advances the bus's virtual clock (microseconds). Called by the
/// simulator as it processes the event queue.
pub fn set_time_us(t_us: u64) {
    BUS.with(|b| b.borrow_mut().now_us = t_us);
}

/// The bus's current virtual time in microseconds.
pub fn now_us() -> u64 {
    BUS.with(|b| b.borrow().now_us)
}

/// Pushes a span onto the causal context stack: spans allocated while it
/// is on top get it as their parent. The simulator pushes a message's
/// span around its handler so replies are causally linked; the engine
/// pushes an invocation's span around the whole call.
pub fn push_context(span: SpanId) {
    BUS.with(|b| b.borrow_mut().context.push(span));
}

/// Pops the causal context stack (no-op if empty).
pub fn pop_context() {
    BUS.with(|b| {
        b.borrow_mut().context.pop();
    });
}

/// The span on top of the causal context stack, if any.
pub fn current_context() -> Option<SpanId> {
    BUS.with(|b| b.borrow().context.last().copied())
}

/// Allocates a fresh causal span id.
pub fn new_span() -> SpanId {
    BUS.with(|b| {
        let mut s = b.borrow_mut();
        let id = s.next_span;
        s.next_span += 1;
        id
    })
}

/// Records an event built by [`EventBuilder`]; returns its sequence
/// number, or `None` if disabled or discarded by sampling.
pub(crate) fn record(builder: EventBuilder) -> Option<u64> {
    BUS.with(|b| {
        let mut s = b.borrow_mut();
        if !s.enabled {
            return None;
        }
        // Learn the span's parent link before any keep/drop decision, so
        // every later event of this tree resolves to the same root.
        if let (Some(span), Some(parent)) = (builder.span, builder.parent) {
            s.parent_of.entry(span).or_insert(parent);
        }
        // Sequence numbers are allocated unconditionally: a sampled
        // trace is the full trace filtered, gaps and all.
        let seq = s.next_seq;
        s.next_seq += 1;
        if let Some(denom) = s.collect.sample_denom {
            if let Some(key) = builder.span.or(builder.parent) {
                let root = s.root(key);
                if !sample_admits(root, denom) {
                    s.drops.sampled_out += 1;
                    s.metrics.counter_add("observe.drop.sampled", 1);
                    return None;
                }
            }
        }
        let t_us = s.now_us;
        let event = Event {
            seq,
            t_us,
            layer: builder.layer,
            kind: builder.kind,
            span: builder.span,
            parent: builder.parent,
            node: builder.node,
            port: builder.port,
            channel: builder.channel,
            capsule: builder.capsule,
            detail: builder.detail,
        };
        s.cur_bytes += approx_event_bytes(&event);
        s.events.push_back(event);
        if let Some(cap) = s.collect.ring_capacity {
            while s.events.len() > cap.max(1) {
                if let Some(old) = s.events.pop_front() {
                    s.cur_bytes -= approx_event_bytes(&old);
                    s.drops.ring_evicted += 1;
                    s.metrics.counter_add("observe.drop.ring", 1);
                }
            }
        }
        s.peak_events = s.peak_events.max(s.events.len());
        s.peak_bytes = s.peak_bytes.max(s.cur_bytes);
        Some(seq)
    })
}

/// Number of events buffered right now.
pub fn event_count() -> usize {
    BUS.with(|b| b.borrow().events.len())
}

/// A copy of every buffered event, in emission order.
pub fn snapshot_events() -> Vec<Event> {
    BUS.with(|b| b.borrow().events.iter().cloned().collect())
}

/// Removes and returns every buffered event.
pub fn take_events() -> Vec<Event> {
    BUS.with(|b| {
        let mut s = b.borrow_mut();
        s.cur_bytes = 0;
        std::mem::take(&mut s.events).into_iter().collect()
    })
}

/// Adds to a counter in the bus's metrics registry.
pub fn counter_add(name: &str, v: u64) {
    BUS.with(|b| {
        let mut s = b.borrow_mut();
        if s.enabled {
            s.metrics.counter_add(name, v);
        }
    });
}

/// Sets a gauge in the bus's metrics registry.
pub fn gauge_set(name: &str, v: i64) {
    BUS.with(|b| {
        let mut s = b.borrow_mut();
        if s.enabled {
            s.metrics.gauge_set(name, v);
        }
    });
}

/// Records a histogram sample (typically sim-time microseconds).
pub fn observe(name: &str, v: u64) {
    BUS.with(|b| {
        let mut s = b.borrow_mut();
        if s.enabled {
            s.metrics.observe(name, v);
        }
    });
}

/// A copy of the metrics registry.
pub fn snapshot_metrics() -> Registry {
    BUS.with(|b| b.borrow().metrics.clone())
}

/// Reads one counter (0 if absent).
pub fn counter(name: &str) -> u64 {
    BUS.with(|b| b.borrow().metrics.counter(name))
}

/// Reads one histogram (cloned; `None` if absent).
pub fn histogram(name: &str) -> Option<Histogram> {
    BUS.with(|b| b.borrow().metrics.histogram(name).cloned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventBuilder, EventKind, Layer};

    /// Restores default collection after a test that bounds it.
    fn unbounded() {
        set_collect(CollectConfig::default());
        reset();
    }

    #[test]
    fn bus_records_in_order_with_dense_seq() {
        unbounded();
        set_time_us(5);
        let s1 = new_span();
        EventBuilder::new(Layer::Netsim, EventKind::Send)
            .span(s1)
            .node(0)
            .detail("a")
            .emit();
        set_time_us(9);
        EventBuilder::new(Layer::Netsim, EventKind::Deliver)
            .span(s1)
            .node(1)
            .emit();
        let evs = snapshot_events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].seq, 0);
        assert_eq!(evs[1].seq, 1);
        assert_eq!(evs[0].t_us, 5);
        assert_eq!(evs[1].t_us, 9);
        assert_eq!(evs[0].span, Some(s1));
    }

    #[test]
    fn disabled_bus_drops_events_and_metrics() {
        unbounded();
        set_enabled(false);
        assert!(!is_enabled());
        EventBuilder::new(Layer::Application, EventKind::Note).emit();
        counter_add("c", 1);
        observe("h", 1);
        assert_eq!(event_count(), 0);
        assert_eq!(counter("c"), 0);
        set_enabled(true);
        EventBuilder::new(Layer::Application, EventKind::Note).emit();
        assert_eq!(event_count(), 1);
    }

    #[test]
    fn reset_restarts_spans_and_seq() {
        unbounded();
        let a = new_span();
        reset();
        let b = new_span();
        assert_eq!(a, b);
        assert_eq!(event_count(), 0);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        unbounded();
        set_collect(CollectConfig {
            ring_capacity: Some(3),
            sample_denom: None,
        });
        for i in 0..10 {
            EventBuilder::new(Layer::Application, EventKind::Note)
                .detail(format!("e{i}"))
                .emit();
        }
        let evs = snapshot_events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].detail, "e7");
        assert_eq!(evs[2].detail, "e9");
        assert_eq!(drop_stats().ring_evicted, 7);
        assert_eq!(counter("observe.drop.ring"), 7);
        assert!(peak_trace_events() <= 4);
        unbounded();
    }

    #[test]
    fn sampling_keeps_whole_trees_and_counts_drops() {
        unbounded();
        set_collect(CollectConfig {
            ring_capacity: None,
            sample_denom: Some(4),
        });
        let mut kept_roots = Vec::new();
        for _ in 0..64 {
            let root = new_span();
            EventBuilder::new(Layer::Engineering, EventKind::CallStart)
                .span(root)
                .emit();
            let child = new_span();
            EventBuilder::new(Layer::Netsim, EventKind::Send)
                .span(child)
                .parent(root)
                .emit();
            if sample_admits(root, 4) {
                kept_roots.push(root);
            }
        }
        let evs = snapshot_events();
        // Every buffered event belongs to an admitted tree, and admitted
        // trees are complete (both events present).
        assert_eq!(evs.len(), kept_roots.len() * 2);
        assert!(!kept_roots.is_empty());
        assert!(drop_stats().sampled_out > 0);
        assert_eq!(
            drop_stats().sampled_out + evs.len() as u64,
            128,
            "every event is either kept or counted"
        );
        assert_eq!(counter("observe.drop.sampled"), drop_stats().sampled_out);
        unbounded();
    }

    #[test]
    fn sampled_trace_is_filtered_full_trace() {
        // Run the same emission twice: once unbounded, once sampled.
        // The sampled stream must equal the full stream filtered to
        // admitted roots — same seqs, same times, same payloads.
        let emit_all = || {
            for i in 0..32u64 {
                set_time_us(i * 10);
                let root = new_span();
                EventBuilder::new(Layer::Engineering, EventKind::CallStart)
                    .span(root)
                    .detail(format!("call{i}"))
                    .emit();
                let msg = new_span();
                EventBuilder::new(Layer::Netsim, EventKind::Send)
                    .span(msg)
                    .parent(root)
                    .emit();
            }
        };
        unbounded();
        emit_all();
        let full = snapshot_events();
        set_collect(CollectConfig {
            ring_capacity: None,
            sample_denom: Some(4),
        });
        reset();
        emit_all();
        let sampled = snapshot_events();
        unbounded();

        let parent_of: std::collections::BTreeMap<u64, u64> = full
            .iter()
            .filter_map(|e| Some((e.span?, e.parent?)))
            .collect();
        let root_of = |mut s: u64| {
            while let Some(&p) = parent_of.get(&s) {
                s = p;
            }
            s
        };
        let expected: Vec<_> = full
            .iter()
            .filter(|e| e.span.is_none_or(|s| sample_admits(root_of(s), 4)))
            .cloned()
            .collect();
        assert_eq!(sampled, expected);
        assert!(sampled.len() < full.len());
    }

    #[test]
    fn reset_clears_drop_stats_and_peaks_but_keeps_config() {
        unbounded();
        set_collect(CollectConfig {
            ring_capacity: Some(1),
            sample_denom: Some(2),
        });
        for _ in 0..8 {
            let s = new_span();
            EventBuilder::new(Layer::Application, EventKind::Note)
                .span(s)
                .emit();
        }
        assert!(drop_stats().total() > 0);
        reset();
        assert_eq!(drop_stats(), DropStats::default());
        assert_eq!(peak_trace_events(), 0);
        assert_eq!(peak_trace_bytes(), 0);
        assert_eq!(
            collect_config(),
            CollectConfig {
                ring_capacity: Some(1),
                sample_denom: Some(2),
            },
            "config survives reset like the enabled flag"
        );
        unbounded();
    }

    #[test]
    fn peak_bytes_tracks_high_water_not_current() {
        unbounded();
        for i in 0..10 {
            EventBuilder::new(Layer::Application, EventKind::Note)
                .detail(format!("event number {i}"))
                .emit();
        }
        let peak = peak_trace_bytes();
        assert!(peak > 0);
        let taken = take_events();
        assert_eq!(taken.len(), 10);
        assert_eq!(event_count(), 0);
        assert_eq!(peak_trace_bytes(), peak, "peak survives take_events");
    }
}
