//! The write-ahead log.
//!
//! Permanence (§8.2.1) is realised by logging every effect before it is
//! applied, then replaying the log after a crash. The log distinguishes
//! "stable" storage (what survives a crash) from the volatile tail via a
//! flush point, so tests can exercise crashes with unflushed records.

use std::collections::{BTreeMap, BTreeSet};

use rmodp_core::id::TxId;
use rmodp_core::value::Value;

/// Tags identifying each record shape in the durable [`Value`] form.
const TAGS: [&str; 5] = ["begin", "write", "prepare", "commit", "abort"];

/// One log record.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// A transaction began.
    Begin { tx: TxId },
    /// A write, with before- and after-images (undo/redo information).
    Write {
        tx: TxId,
        item: String,
        before: Option<Value>,
        after: Value,
    },
    /// The transaction is prepared (2PC phase 1 promise).
    Prepare { tx: TxId },
    /// The transaction committed.
    Commit { tx: TxId },
    /// The transaction aborted.
    Abort { tx: TxId },
}

impl LogRecord {
    /// The transaction this record belongs to.
    pub fn tx(&self) -> TxId {
        match self {
            LogRecord::Begin { tx }
            | LogRecord::Prepare { tx }
            | LogRecord::Commit { tx }
            | LogRecord::Abort { tx } => *tx,
            LogRecord::Write { tx, .. } => *tx,
        }
    }

    /// The record as a self-describing [`Value`], the form a durable log
    /// serialises through a transfer syntax. The optional before-image is
    /// carried as a zero/one-element sequence so that `None` and a stored
    /// `Null` stay distinguishable.
    pub fn to_value(&self) -> Value {
        let (tag, tx) = match self {
            LogRecord::Begin { tx } => (TAGS[0], tx),
            LogRecord::Write { tx, .. } => (TAGS[1], tx),
            LogRecord::Prepare { tx } => (TAGS[2], tx),
            LogRecord::Commit { tx } => (TAGS[3], tx),
            LogRecord::Abort { tx } => (TAGS[4], tx),
        };
        let mut fields = vec![
            ("rec".to_owned(), Value::text(tag)),
            ("tx".to_owned(), Value::Int(tx.raw() as i64)),
        ];
        if let LogRecord::Write {
            item,
            before,
            after,
            ..
        } = self
        {
            fields.push(("item".to_owned(), Value::text(item.clone())));
            fields.push((
                "before".to_owned(),
                Value::Seq(before.iter().cloned().collect()),
            ));
            fields.push(("after".to_owned(), after.clone()));
        }
        Value::record(fields)
    }

    /// Rebuilds a record from its [`to_value`](Self::to_value) form.
    ///
    /// # Errors
    ///
    /// A description of the first structural problem found.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let tag = v
            .field("rec")
            .and_then(Value::as_text)
            .ok_or("missing record tag")?;
        let tx = TxId::new(
            v.field("tx")
                .and_then(Value::as_int)
                .ok_or("missing tx id")? as u64,
        );
        match tag {
            "begin" => Ok(LogRecord::Begin { tx }),
            "prepare" => Ok(LogRecord::Prepare { tx }),
            "commit" => Ok(LogRecord::Commit { tx }),
            "abort" => Ok(LogRecord::Abort { tx }),
            "write" => {
                let item = v
                    .field("item")
                    .and_then(Value::as_text)
                    .ok_or("write without item")?
                    .to_owned();
                let before = v
                    .field("before")
                    .and_then(Value::as_seq)
                    .ok_or("write without before-image slot")?
                    .first()
                    .cloned();
                let after = v.field("after").cloned().ok_or("write without after")?;
                Ok(LogRecord::Write {
                    tx,
                    item,
                    before,
                    after,
                })
            }
            other => Err(format!("unknown record tag `{other}`")),
        }
    }
}

/// The write-ahead log with an explicit stable/volatile boundary.
#[derive(Debug, Default)]
pub struct WriteAheadLog {
    records: Vec<LogRecord>,
    /// Records before this index survive a crash.
    flushed: usize,
}

/// What recovery analysis concluded about the logged transactions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryAnalysis {
    /// Committed transactions (redo).
    pub committed: BTreeSet<TxId>,
    /// Aborted transactions (undo, already resolved).
    pub aborted: BTreeSet<TxId>,
    /// Prepared but unresolved — in 2PC these are *in doubt* and must ask
    /// the coordinator.
    pub in_doubt: BTreeSet<TxId>,
    /// Active (neither prepared nor resolved) — undo.
    pub active: BTreeSet<TxId>,
}

impl WriteAheadLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a log from already-stable records (e.g. decoded from a
    /// durable medium after a crash): everything is marked flushed.
    pub fn from_records(records: Vec<LogRecord>) -> Self {
        let flushed = records.len();
        Self { records, flushed }
    }

    /// Appends a record (volatile until [`flush`](Self::flush)).
    pub fn append(&mut self, record: LogRecord) {
        self.records.push(record);
    }

    /// Makes everything appended so far stable.
    pub fn flush(&mut self) {
        self.flushed = self.records.len();
    }

    /// Simulates a crash: the volatile tail is lost.
    pub fn crash(&mut self) {
        self.records.truncate(self.flushed);
    }

    /// All records (stable prefix after a crash).
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// How many records are stable.
    pub fn stable_len(&self) -> usize {
        self.flushed.min(self.records.len())
    }

    /// Classifies every logged transaction for recovery.
    pub fn analyze(&self) -> RecoveryAnalysis {
        let mut analysis = RecoveryAnalysis::default();
        let mut seen = BTreeSet::new();
        for r in &self.records {
            seen.insert(r.tx());
            match r {
                LogRecord::Commit { tx } => {
                    analysis.committed.insert(*tx);
                    analysis.in_doubt.remove(tx);
                    analysis.active.remove(tx);
                }
                LogRecord::Abort { tx } => {
                    analysis.aborted.insert(*tx);
                    analysis.in_doubt.remove(tx);
                    analysis.active.remove(tx);
                }
                LogRecord::Prepare { tx } => {
                    if !analysis.committed.contains(tx) && !analysis.aborted.contains(tx) {
                        analysis.in_doubt.insert(*tx);
                        analysis.active.remove(tx);
                    }
                }
                LogRecord::Begin { tx } | LogRecord::Write { tx, .. } => {
                    if !analysis.committed.contains(tx)
                        && !analysis.aborted.contains(tx)
                        && !analysis.in_doubt.contains(tx)
                    {
                        analysis.active.insert(*tx);
                    }
                }
            }
        }
        analysis
    }

    /// Replays the log into a data store: redo committed writes in order,
    /// skip writes of aborted/active transactions. In-doubt transactions'
    /// writes are **not** applied (they are re-applied when the
    /// coordinator's decision arrives).
    pub fn replay(&self) -> BTreeMap<String, Value> {
        let analysis = self.analyze();
        let mut store = BTreeMap::new();
        for r in &self.records {
            if let LogRecord::Write {
                tx, item, after, ..
            } = r
            {
                if analysis.committed.contains(tx) {
                    store.insert(item.clone(), after.clone());
                }
            }
        }
        store
    }

    /// The undo images of a transaction, newest first.
    pub fn undo_images(&self, tx: TxId) -> Vec<(String, Option<Value>)> {
        self.records
            .iter()
            .rev()
            .filter_map(|r| match r {
                LogRecord::Write {
                    tx: t,
                    item,
                    before,
                    ..
                } if *t == tx => Some((item.clone(), before.clone())),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T1: TxId = TxId::new(1);
    const T2: TxId = TxId::new(2);
    const T3: TxId = TxId::new(3);

    fn write(tx: TxId, item: &str, before: Option<i64>, after: i64) -> LogRecord {
        LogRecord::Write {
            tx,
            item: item.to_owned(),
            before: before.map(Value::Int),
            after: Value::Int(after),
        }
    }

    #[test]
    fn analysis_classifies_transactions() {
        let mut log = WriteAheadLog::new();
        log.append(LogRecord::Begin { tx: T1 });
        log.append(write(T1, "x", None, 1));
        log.append(LogRecord::Commit { tx: T1 });
        log.append(LogRecord::Begin { tx: T2 });
        log.append(write(T2, "y", None, 2));
        log.append(LogRecord::Prepare { tx: T2 });
        log.append(LogRecord::Begin { tx: T3 });
        log.append(write(T3, "z", None, 3));
        let a = log.analyze();
        assert!(a.committed.contains(&T1));
        assert!(a.in_doubt.contains(&T2));
        assert!(a.active.contains(&T3));
        assert!(a.aborted.is_empty());
    }

    #[test]
    fn replay_applies_only_committed() {
        let mut log = WriteAheadLog::new();
        log.append(write(T1, "x", None, 1));
        log.append(LogRecord::Commit { tx: T1 });
        log.append(write(T2, "x", Some(1), 99)); // active: lost
        log.append(write(T3, "y", None, 3));
        log.append(LogRecord::Abort { tx: T3 });
        let store = log.replay();
        assert_eq!(store.get("x"), Some(&Value::Int(1)));
        assert_eq!(store.get("y"), None);
    }

    #[test]
    fn later_committed_writes_win() {
        let mut log = WriteAheadLog::new();
        log.append(write(T1, "x", None, 1));
        log.append(LogRecord::Commit { tx: T1 });
        log.append(write(T2, "x", Some(1), 2));
        log.append(LogRecord::Commit { tx: T2 });
        assert_eq!(log.replay().get("x"), Some(&Value::Int(2)));
    }

    #[test]
    fn crash_loses_unflushed_tail() {
        let mut log = WriteAheadLog::new();
        log.append(write(T1, "x", None, 1));
        log.append(LogRecord::Commit { tx: T1 });
        log.flush();
        log.append(write(T2, "y", None, 2));
        log.append(LogRecord::Commit { tx: T2 });
        // T2's commit was never flushed.
        log.crash();
        let store = log.replay();
        assert_eq!(store.get("x"), Some(&Value::Int(1)));
        assert_eq!(store.get("y"), None);
        assert_eq!(log.stable_len(), 2);
    }

    #[test]
    fn undo_images_come_newest_first() {
        let mut log = WriteAheadLog::new();
        log.append(write(T1, "x", None, 1));
        log.append(write(T1, "x", Some(1), 2));
        log.append(write(T1, "y", Some(7), 8));
        let undo = log.undo_images(T1);
        assert_eq!(undo.len(), 3);
        assert_eq!(undo[0], ("y".to_owned(), Some(Value::Int(7))));
        assert_eq!(undo[2], ("x".to_owned(), None));
    }

    #[test]
    fn value_form_round_trips_every_record_shape() {
        let records = vec![
            LogRecord::Begin { tx: T1 },
            write(T1, "x", None, 1),
            write(T1, "x", Some(1), 2),
            LogRecord::Write {
                tx: T1,
                item: "n".to_owned(),
                before: Some(Value::Null),
                after: Value::record([("k", Value::Int(3))]),
            },
            LogRecord::Prepare { tx: T1 },
            LogRecord::Commit { tx: T1 },
            LogRecord::Abort { tx: T2 },
        ];
        for r in &records {
            let back = LogRecord::from_value(&r.to_value()).unwrap();
            assert_eq!(&back, r);
        }
        assert!(LogRecord::from_value(&Value::Int(3)).is_err());
        assert!(LogRecord::from_value(&Value::record([("rec", Value::text("warp"))])).is_err());
    }

    #[test]
    fn from_records_is_fully_stable() {
        let log = WriteAheadLog::from_records(vec![
            write(T1, "x", None, 1),
            LogRecord::Commit { tx: T1 },
        ]);
        assert_eq!(log.stable_len(), 2);
        assert_eq!(log.replay().get("x"), Some(&Value::Int(1)));
    }

    #[test]
    fn prepared_then_committed_is_committed() {
        let mut log = WriteAheadLog::new();
        log.append(LogRecord::Prepare { tx: T1 });
        log.append(LogRecord::Commit { tx: T1 });
        let a = log.analyze();
        assert!(a.committed.contains(&T1));
        assert!(!a.in_doubt.contains(&T1));
    }
}
