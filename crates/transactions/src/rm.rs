//! The resource manager: a transactional store combining the lock manager
//! and the write-ahead log, configurable along the generalised transaction
//! function's axes (§8.2.1).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use rmodp_core::id::{IdGen, TxId};
use rmodp_core::value::Value;

use crate::lock::{LockManager, LockMode, LockOutcome};
use crate::log::{LogRecord, WriteAheadLog};

/// When other transactions may observe a transaction's writes
/// (the *visibility* axis of the generalised transaction function).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// Reads see only committed data and take shared locks (serialisable
    /// with strict 2PL).
    ReadCommitted,
    /// Reads see in-flight writes and take no locks (the paper's
    /// generalised function permits weaker coordination).
    ReadUncommitted,
}

/// Whether effects of incomplete transactions are undone
/// (the *recoverability* axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recoverability {
    /// Aborts restore before-images.
    Undoable,
    /// Aborts leave effects in place (no rollback).
    None,
}

/// Whether committed effects survive crashes (the *permanence* axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Permanence {
    /// Committed writes are replayable from the stable log.
    Durable,
    /// Nothing survives a crash.
    Volatile,
}

/// A profile along the three axes. [`TxProfile::acid`] is the ACID
/// specialisation the paper singles out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxProfile {
    /// Visibility of intermediate effects.
    pub visibility: Visibility,
    /// Recoverability of incomplete transactions.
    pub recoverability: Recoverability,
    /// Permanence of completed transactions.
    pub permanence: Permanence,
}

impl TxProfile {
    /// The ACID profile: read-committed visibility, undoable, durable.
    pub fn acid() -> Self {
        Self {
            visibility: Visibility::ReadCommitted,
            recoverability: Recoverability::Undoable,
            permanence: Permanence::Durable,
        }
    }

    /// A deliberately weak profile: dirty reads, no undo, volatile.
    pub fn best_effort() -> Self {
        Self {
            visibility: Visibility::ReadUncommitted,
            recoverability: Recoverability::None,
            permanence: Permanence::Volatile,
        }
    }
}

/// A resource-manager failure.
#[derive(Debug, Clone, PartialEq)]
pub enum RmError {
    /// The transaction is not active.
    NotActive { tx: TxId },
    /// The transaction must wait for a lock (retry after the blockers
    /// finish).
    WouldBlock {
        tx: TxId,
        item: String,
        blockers: Vec<TxId>,
    },
    /// Granting the lock would deadlock; the transaction was aborted.
    Deadlock { tx: TxId, cycle: Vec<TxId> },
    /// The transaction is prepared; only commit/abort are legal.
    Prepared { tx: TxId },
}

impl fmt::Display for RmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RmError::NotActive { tx } => write!(f, "{tx} is not active"),
            RmError::WouldBlock { tx, item, .. } => {
                write!(f, "{tx} must wait for a lock on {item:?}")
            }
            RmError::Deadlock { tx, .. } => write!(f, "{tx} aborted: deadlock"),
            RmError::Prepared { tx } => write!(f, "{tx} is prepared"),
        }
    }
}

impl std::error::Error for RmError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxState {
    Active,
    Prepared,
}

/// A transactional key-value resource manager.
pub struct ResourceManager {
    name: String,
    profile: TxProfile,
    committed: BTreeMap<String, Value>,
    /// Per-transaction uncommitted write sets.
    write_sets: BTreeMap<TxId, BTreeMap<String, Value>>,
    tx_states: BTreeMap<TxId, TxState>,
    locks: LockManager,
    log: WriteAheadLog,
    tx_gen: IdGen<TxId>,
    /// Statistics: (commits, aborts, deadlocks).
    stats: (u64, u64, u64),
}

impl fmt::Debug for ResourceManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResourceManager")
            .field("name", &self.name)
            .field("items", &self.committed.len())
            .field("active", &self.tx_states.len())
            .finish()
    }
}

impl ResourceManager {
    /// Creates an empty resource manager.
    pub fn new(name: impl Into<String>, profile: TxProfile) -> Self {
        Self {
            name: name.into(),
            profile,
            committed: BTreeMap::new(),
            write_sets: BTreeMap::new(),
            tx_states: BTreeMap::new(),
            locks: LockManager::new(),
            log: WriteAheadLog::new(),
            tx_gen: IdGen::new(),
            stats: (0, 0, 0),
        }
    }

    /// The manager's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The profile in force.
    pub fn profile(&self) -> TxProfile {
        self.profile
    }

    /// (commits, aborts, deadlock-aborts) so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        self.stats
    }

    /// Begins a transaction.
    pub fn begin(&mut self) -> TxId {
        let tx = self.tx_gen.fresh();
        self.tx_states.insert(tx, TxState::Active);
        self.write_sets.insert(tx, BTreeMap::new());
        self.log.append(LogRecord::Begin { tx });
        tx
    }

    /// Begins a transaction with a caller-chosen identity (used by the
    /// distributed coordinator so every participant shares the global id).
    pub fn begin_with_id(&mut self, tx: TxId) {
        self.tx_states.insert(tx, TxState::Active);
        self.write_sets.entry(tx).or_default();
        self.log.append(LogRecord::Begin { tx });
    }

    /// Transactionally reads an item.
    ///
    /// # Errors
    ///
    /// Lock waits/deadlocks under `ReadCommitted`; `NotActive` for unknown
    /// transactions.
    pub fn read(&mut self, tx: TxId, item: &str) -> Result<Option<Value>, RmError> {
        self.check_active(tx)?;
        // Own writes are always visible.
        if let Some(v) = self.write_sets.get(&tx).and_then(|ws| ws.get(item)) {
            return Ok(Some(v.clone()));
        }
        match self.profile.visibility {
            Visibility::ReadUncommitted => {
                // Latest in-flight write by anyone, else committed.
                let dirty = self
                    .write_sets
                    .values()
                    .filter_map(|ws| ws.get(item))
                    .next_back()
                    .cloned();
                Ok(dirty.or_else(|| self.committed.get(item).cloned()))
            }
            Visibility::ReadCommitted => {
                self.lock(tx, item, LockMode::Shared)?;
                Ok(self.committed.get(item).cloned())
            }
        }
    }

    /// Reads the committed value outside any transaction.
    pub fn read_committed(&self, item: &str) -> Option<Value> {
        self.committed.get(item).cloned()
    }

    /// Transactionally writes an item.
    ///
    /// # Errors
    ///
    /// Lock waits/deadlocks; `NotActive`/`Prepared` state errors.
    pub fn write(&mut self, tx: TxId, item: &str, value: Value) -> Result<(), RmError> {
        self.check_active(tx)?;
        self.lock(tx, item, LockMode::Exclusive)?;
        let before = self
            .write_sets
            .get(&tx)
            .and_then(|ws| ws.get(item))
            .or_else(|| self.committed.get(item))
            .cloned();
        self.log.append(LogRecord::Write {
            tx,
            item: item.to_owned(),
            before,
            after: value.clone(),
        });
        self.write_sets
            .get_mut(&tx)
            .expect("active tx has a write set")
            .insert(item.to_owned(), value);
        Ok(())
    }

    /// Prepares the transaction (2PC phase 1): after a successful prepare
    /// the manager guarantees it can commit.
    ///
    /// # Errors
    ///
    /// `NotActive` for unknown/finished transactions.
    pub fn prepare(&mut self, tx: TxId) -> Result<(), RmError> {
        match self.tx_states.get(&tx) {
            Some(TxState::Active) => {
                self.tx_states.insert(tx, TxState::Prepared);
                self.log.append(LogRecord::Prepare { tx });
                self.log.flush();
                Ok(())
            }
            Some(TxState::Prepared) => Ok(()),
            None => Err(RmError::NotActive { tx }),
        }
    }

    /// Commits the transaction: applies its write set, logs and flushes,
    /// releases locks.
    ///
    /// # Errors
    ///
    /// `NotActive` for unknown transactions.
    pub fn commit(&mut self, tx: TxId) -> Result<(), RmError> {
        if self.tx_states.remove(&tx).is_none() {
            return Err(RmError::NotActive { tx });
        }
        let writes = self.write_sets.remove(&tx).unwrap_or_default();
        for (item, value) in writes {
            self.committed.insert(item, value);
        }
        self.log.append(LogRecord::Commit { tx });
        if self.profile.permanence == Permanence::Durable {
            self.log.flush();
        }
        self.locks.release_all(tx);
        self.stats.0 += 1;
        Ok(())
    }

    /// Aborts the transaction: discards its write set (under
    /// `Recoverability::Undoable`) or applies it anyway (under
    /// `Recoverability::None`, modelling the generalised function's
    /// weakest setting), then releases locks.
    ///
    /// # Errors
    ///
    /// `NotActive` for unknown transactions.
    pub fn abort(&mut self, tx: TxId) -> Result<(), RmError> {
        if self.tx_states.remove(&tx).is_none() {
            return Err(RmError::NotActive { tx });
        }
        let writes = self.write_sets.remove(&tx).unwrap_or_default();
        if self.profile.recoverability == Recoverability::None {
            for (item, value) in writes {
                self.committed.insert(item, value);
            }
        }
        self.log.append(LogRecord::Abort { tx });
        self.locks.release_all(tx);
        self.stats.1 += 1;
        Ok(())
    }

    /// Whether the transaction is prepared (in doubt after a crash).
    pub fn is_prepared(&self, tx: TxId) -> bool {
        self.tx_states.get(&tx) == Some(&TxState::Prepared)
    }

    /// Simulates a crash: volatile state is lost; the stable log prefix
    /// survives.
    pub fn crash(&mut self) {
        self.committed.clear();
        self.write_sets.clear();
        self.tx_states.clear();
        self.locks = LockManager::new();
        self.log.crash();
    }

    /// Recovers after a crash: replays committed writes from the log and
    /// restores in-doubt (prepared) transactions, whose write sets are
    /// rebuilt from their log records so a later decision can apply them.
    pub fn recover(&mut self) {
        if self.profile.permanence != Permanence::Durable {
            return;
        }
        self.committed = self.log.replay();
        let analysis = self.log.analyze();
        for tx in &analysis.in_doubt {
            self.tx_states.insert(*tx, TxState::Prepared);
            let mut ws = BTreeMap::new();
            for r in self.log.records() {
                if let LogRecord::Write {
                    tx: t, item, after, ..
                } = r
                {
                    if t == tx {
                        ws.insert(item.clone(), after.clone());
                    }
                }
            }
            self.write_sets.insert(*tx, ws);
        }
    }

    /// The in-doubt transactions after [`recover`](Self::recover).
    pub fn in_doubt(&self) -> BTreeSet<TxId> {
        self.tx_states
            .iter()
            .filter(|(_, s)| **s == TxState::Prepared)
            .map(|(t, _)| *t)
            .collect()
    }

    fn check_active(&self, tx: TxId) -> Result<(), RmError> {
        match self.tx_states.get(&tx) {
            Some(TxState::Active) => Ok(()),
            Some(TxState::Prepared) => Err(RmError::Prepared { tx }),
            None => Err(RmError::NotActive { tx }),
        }
    }

    fn lock(&mut self, tx: TxId, item: &str, mode: LockMode) -> Result<(), RmError> {
        match self.locks.acquire(tx, item, mode) {
            LockOutcome::Granted => Ok(()),
            LockOutcome::Wait { blockers } => Err(RmError::WouldBlock {
                tx,
                item: item.to_owned(),
                blockers,
            }),
            LockOutcome::Deadlock { cycle } => {
                self.abort(tx).ok();
                self.stats.2 += 1;
                Err(RmError::Deadlock { tx, cycle })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acid() -> ResourceManager {
        ResourceManager::new("test", TxProfile::acid())
    }

    #[test]
    fn commit_makes_writes_visible() {
        let mut rm = acid();
        let tx = rm.begin();
        rm.write(tx, "x", Value::Int(1)).unwrap();
        // Not visible outside before commit.
        assert_eq!(rm.read_committed("x"), None);
        // Visible to itself.
        assert_eq!(rm.read(tx, "x").unwrap(), Some(Value::Int(1)));
        rm.commit(tx).unwrap();
        assert_eq!(rm.read_committed("x"), Some(Value::Int(1)));
    }

    #[test]
    fn abort_discards_writes_under_acid() {
        let mut rm = acid();
        let t0 = rm.begin();
        rm.write(t0, "x", Value::Int(1)).unwrap();
        rm.commit(t0).unwrap();
        let tx = rm.begin();
        rm.write(tx, "x", Value::Int(99)).unwrap();
        rm.abort(tx).unwrap();
        assert_eq!(rm.read_committed("x"), Some(Value::Int(1)));
    }

    #[test]
    fn best_effort_abort_leaks_effects() {
        // The generalised function's weakest recoverability: effects of
        // failed transactions are not undone.
        let mut rm = ResourceManager::new("weak", TxProfile::best_effort());
        let tx = rm.begin();
        rm.write(tx, "x", Value::Int(9)).unwrap();
        rm.abort(tx).unwrap();
        assert_eq!(rm.read_committed("x"), Some(Value::Int(9)));
    }

    #[test]
    fn read_committed_blocks_on_writers() {
        let mut rm = acid();
        let w = rm.begin();
        rm.write(w, "x", Value::Int(5)).unwrap();
        let r = rm.begin();
        let err = rm.read(r, "x").unwrap_err();
        assert!(matches!(err, RmError::WouldBlock { .. }));
        rm.commit(w).unwrap();
        // Lock was granted to r on release; the retry succeeds.
        assert_eq!(rm.read(r, "x").unwrap(), Some(Value::Int(5)));
    }

    #[test]
    fn read_uncommitted_sees_dirty_data() {
        let mut rm = ResourceManager::new(
            "dirty",
            TxProfile {
                visibility: Visibility::ReadUncommitted,
                ..TxProfile::acid()
            },
        );
        let w = rm.begin();
        rm.write(w, "x", Value::Int(5)).unwrap();
        let r = rm.begin();
        assert_eq!(rm.read(r, "x").unwrap(), Some(Value::Int(5)));
        rm.abort(w).unwrap();
        // The dirty read observed a value that never committed.
        assert_eq!(rm.read_committed("x"), None);
    }

    #[test]
    fn deadlock_aborts_the_victim() {
        let mut rm = acid();
        let t1 = rm.begin();
        let t2 = rm.begin();
        rm.write(t1, "a", Value::Int(1)).unwrap();
        rm.write(t2, "b", Value::Int(2)).unwrap();
        assert!(matches!(
            rm.write(t1, "b", Value::Int(3)),
            Err(RmError::WouldBlock { .. })
        ));
        let err = rm.write(t2, "a", Value::Int(4)).unwrap_err();
        assert!(matches!(err, RmError::Deadlock { .. }));
        // The victim is gone; t1 can proceed.
        assert!(matches!(
            rm.write(t2, "a", Value::Int(4)),
            Err(RmError::NotActive { .. })
        ));
        rm.write(t1, "b", Value::Int(3)).unwrap();
        rm.commit(t1).unwrap();
        assert_eq!(rm.stats().2, 1);
    }

    #[test]
    fn prepared_transactions_refuse_new_work_and_survive_crash() {
        let mut rm = acid();
        let tx = rm.begin();
        rm.write(tx, "x", Value::Int(7)).unwrap();
        rm.prepare(tx).unwrap();
        assert!(matches!(
            rm.write(tx, "y", Value::Int(1)),
            Err(RmError::Prepared { .. })
        ));
        assert!(rm.is_prepared(tx));

        rm.crash();
        rm.recover();
        // In doubt: neither visible nor forgotten.
        assert_eq!(rm.read_committed("x"), None);
        assert!(rm.in_doubt().contains(&tx));
        // Coordinator decides commit: the write set was rebuilt.
        rm.commit(tx).unwrap();
        assert_eq!(rm.read_committed("x"), Some(Value::Int(7)));
    }

    #[test]
    fn durable_commits_survive_crash_volatile_do_not() {
        let mut rm = acid();
        let tx = rm.begin();
        rm.write(tx, "x", Value::Int(1)).unwrap();
        rm.commit(tx).unwrap();
        rm.crash();
        rm.recover();
        assert_eq!(rm.read_committed("x"), Some(Value::Int(1)));

        let mut weak = ResourceManager::new("v", TxProfile::best_effort());
        let tx = weak.begin();
        weak.write(tx, "x", Value::Int(1)).unwrap();
        weak.commit(tx).unwrap();
        weak.crash();
        weak.recover();
        assert_eq!(weak.read_committed("x"), None);
    }

    #[test]
    fn unflushed_commit_is_lost_by_crash() {
        // Commit flushes under Durable, so force the scenario through an
        // active transaction instead: its writes must not survive.
        let mut rm = acid();
        let tx = rm.begin();
        rm.write(tx, "x", Value::Int(1)).unwrap();
        rm.crash();
        rm.recover();
        assert_eq!(rm.read_committed("x"), None);
        assert!(rm.in_doubt().is_empty());
    }

    #[test]
    fn operations_on_unknown_tx_fail() {
        let mut rm = acid();
        let ghost = TxId::new(99);
        assert!(matches!(
            rm.read(ghost, "x"),
            Err(RmError::NotActive { .. })
        ));
        assert!(matches!(
            rm.write(ghost, "x", Value::Null),
            Err(RmError::NotActive { .. })
        ));
        assert!(matches!(rm.commit(ghost), Err(RmError::NotActive { .. })));
        assert!(matches!(rm.abort(ghost), Err(RmError::NotActive { .. })));
        assert!(matches!(rm.prepare(ghost), Err(RmError::NotActive { .. })));
    }
}
