//! # rmodp-transactions — the transaction function (§8.2.1)
//!
//! RM-ODP defines a *generalised* transaction function parameterised by
//! the desired degrees of **visibility** (when intermediate effects become
//! observable), **recoverability** (what is undone on failure) and
//! **permanence** (whether completed effects survive failures) — and an
//! **ACID specialisation**, which the paper predicts will be "the only
//! style of transaction mechanism supported by most ODP systems for a
//! number of years".
//!
//! This crate implements both:
//!
//! - [`lock`] — a strict two-phase lock manager with shared/exclusive
//!   modes and waits-for deadlock detection;
//! - [`log`] — a write-ahead log with redo/undo records and
//!   crash-recovery analysis;
//! - [`rm`] — a [`rm::ResourceManager`]: a transactional
//!   store combining locks and the WAL, configurable along the
//!   generalised function's axes, survivable across crashes;
//! - [`twopc`] — distributed atomic commitment: a two-phase-commit
//!   coordinator and participants running as simulator processes, with
//!   retransmission and crash handling.
//!
//! # Example: the ACID profile
//!
//! ```
//! use rmodp_transactions::rm::{ResourceManager, TxProfile};
//! use rmodp_core::value::Value;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rm = ResourceManager::new("bank", TxProfile::acid());
//! let tx = rm.begin();
//! rm.write(tx, "alice", Value::Int(100))?;
//! rm.write(tx, "bob", Value::Int(50))?;
//! rm.commit(tx)?;
//!
//! // A crash destroys volatile state; recovery replays the log.
//! rm.crash();
//! rm.recover();
//! assert_eq!(rm.read_committed("alice"), Some(Value::Int(100)));
//! # Ok(())
//! # }
//! ```

pub mod lock;
pub mod log;
pub mod rm;
pub mod twopc;

pub use lock::{LockManager, LockMode, LockOutcome};
pub use rm::{ResourceManager, RmError, TxProfile};
pub use twopc::{Coordinator, Participant, TxOutcome, TxRequest};
