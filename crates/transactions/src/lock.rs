//! Strict two-phase locking with deadlock detection.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use rmodp_core::id::TxId;

/// The lock mode requested for an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read) — compatible with other shared locks.
    Shared,
    /// Exclusive (write) — compatible with nothing.
    Exclusive,
}

/// The outcome of a lock request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockOutcome {
    /// The lock was granted.
    Granted,
    /// The requester must wait for the given holders.
    Wait {
        /// Transactions currently blocking the request.
        blockers: Vec<TxId>,
    },
    /// Granting would create a waits-for cycle; the requester should
    /// abort.
    Deadlock {
        /// The detected cycle.
        cycle: Vec<TxId>,
    },
}

#[derive(Debug, Default)]
struct ItemLocks {
    holders: BTreeMap<TxId, LockMode>,
    /// FIFO wait queue of (tx, mode).
    waiters: Vec<(TxId, LockMode)>,
}

/// A strict two-phase lock manager: locks are only released en masse at
/// commit/abort ([`release_all`](LockManager::release_all)).
#[derive(Debug, Default)]
pub struct LockManager {
    items: BTreeMap<String, ItemLocks>,
    /// waits_for[a] = set of transactions a is waiting on.
    waits_for: BTreeMap<TxId, BTreeSet<TxId>>,
}

impl fmt::Display for LockManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LockManager({} items, {} waiting txs)",
            self.items.len(),
            self.waits_for.len()
        )
    }
}

impl LockManager {
    /// Creates an empty lock manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a lock. Re-requests by a holder upgrade where possible
    /// (shared → exclusive succeeds only if it is the sole holder).
    pub fn acquire(&mut self, tx: TxId, item: &str, mode: LockMode) -> LockOutcome {
        let locks = self.items.entry(item.to_owned()).or_default();

        // Already holding?
        if let Some(&held) = locks.holders.get(&tx) {
            match (held, mode) {
                (LockMode::Exclusive, _) | (LockMode::Shared, LockMode::Shared) => {
                    return LockOutcome::Granted
                }
                (LockMode::Shared, LockMode::Exclusive) => {
                    if locks.holders.len() == 1 {
                        locks.holders.insert(tx, LockMode::Exclusive);
                        return LockOutcome::Granted;
                    }
                    // Upgrade blocked by other shared holders.
                }
            }
        }

        let compatible = match mode {
            LockMode::Shared => locks
                .holders
                .iter()
                .all(|(t, m)| *t == tx || *m == LockMode::Shared),
            LockMode::Exclusive => locks.holders.keys().all(|t| *t == tx),
        };
        // FIFO fairness: even a compatible request waits behind queued
        // waiters (prevents writer starvation).
        if compatible && locks.waiters.is_empty() {
            locks.holders.insert(tx, mode);
            return LockOutcome::Granted;
        }

        let blockers: Vec<TxId> = locks
            .holders
            .keys()
            .copied()
            .filter(|t| *t != tx)
            .chain(locks.waiters.iter().map(|(t, _)| *t).filter(|t| *t != tx))
            .collect();
        // Record the wait edge, then check for a cycle.
        self.waits_for
            .entry(tx)
            .or_default()
            .extend(blockers.iter().copied());
        if let Some(cycle) = self.find_cycle(tx) {
            // Withdraw the edges we just added; the caller should abort.
            self.waits_for.remove(&tx);
            return LockOutcome::Deadlock { cycle };
        }
        let locks = self.items.get_mut(item).expect("created above");
        if !locks.waiters.iter().any(|(t, m)| *t == tx && *m == mode) {
            locks.waiters.push((tx, mode));
        }
        LockOutcome::Wait { blockers }
    }

    /// Releases every lock held or awaited by a transaction (commit or
    /// abort), granting newly compatible waiters FIFO. Returns the
    /// transactions that acquired locks as a result.
    pub fn release_all(&mut self, tx: TxId) -> Vec<TxId> {
        self.waits_for.remove(&tx);
        for edges in self.waits_for.values_mut() {
            edges.remove(&tx);
        }
        let mut woken = Vec::new();
        for locks in self.items.values_mut() {
            locks.holders.remove(&tx);
            locks.waiters.retain(|(t, _)| *t != tx);
            // Grant from the head of the queue while compatible.
            while let Some(&(waiter, mode)) = locks.waiters.first() {
                // A waiter's own held lock (upgrade case) never conflicts
                // with its request.
                let compatible = match mode {
                    LockMode::Shared => locks
                        .holders
                        .iter()
                        .all(|(t, m)| *t == waiter || *m == LockMode::Shared),
                    LockMode::Exclusive => locks.holders.keys().all(|t| *t == waiter),
                };
                if !compatible {
                    break;
                }
                locks.waiters.remove(0);
                locks.holders.insert(waiter, mode);
                woken.push(waiter);
            }
        }
        for w in &woken {
            self.waits_for.remove(w);
        }
        self.items
            .retain(|_, l| !l.holders.is_empty() || !l.waiters.is_empty());
        woken
    }

    /// Whether the transaction currently holds a lock on the item with at
    /// least the given mode.
    pub fn holds(&self, tx: TxId, item: &str, mode: LockMode) -> bool {
        self.items
            .get(item)
            .and_then(|l| l.holders.get(&tx))
            .is_some_and(|held| match mode {
                LockMode::Shared => true,
                LockMode::Exclusive => *held == LockMode::Exclusive,
            })
    }

    /// Current holders of an item's locks.
    pub fn holders(&self, item: &str) -> Vec<(TxId, LockMode)> {
        self.items
            .get(item)
            .map(|l| l.holders.iter().map(|(t, m)| (*t, *m)).collect())
            .unwrap_or_default()
    }

    fn find_cycle(&self, start: TxId) -> Option<Vec<TxId>> {
        // DFS from start following waits-for edges, looking for a path
        // back to start.
        let mut stack = vec![(start, vec![start])];
        let mut visited = BTreeSet::new();
        while let Some((node, path)) = stack.pop() {
            for &next in self.waits_for.get(&node).into_iter().flatten() {
                if next == start {
                    return Some(path);
                }
                if visited.insert(next) {
                    let mut p = path.clone();
                    p.push(next);
                    stack.push((next, p));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T1: TxId = TxId::new(1);
    const T2: TxId = TxId::new(2);
    const T3: TxId = TxId::new(3);

    #[test]
    fn shared_locks_are_compatible() {
        let mut lm = LockManager::new();
        assert_eq!(lm.acquire(T1, "x", LockMode::Shared), LockOutcome::Granted);
        assert_eq!(lm.acquire(T2, "x", LockMode::Shared), LockOutcome::Granted);
        assert!(lm.holds(T1, "x", LockMode::Shared));
        assert!(!lm.holds(T1, "x", LockMode::Exclusive));
    }

    #[test]
    fn exclusive_conflicts_queue() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.acquire(T1, "x", LockMode::Exclusive),
            LockOutcome::Granted
        );
        match lm.acquire(T2, "x", LockMode::Shared) {
            LockOutcome::Wait { blockers } => assert_eq!(blockers, vec![T1]),
            other => panic!("expected wait, got {other:?}"),
        }
        // Release grants the waiter.
        let woken = lm.release_all(T1);
        assert_eq!(woken, vec![T2]);
        assert!(lm.holds(T2, "x", LockMode::Shared));
    }

    #[test]
    fn reacquire_and_upgrade() {
        let mut lm = LockManager::new();
        assert_eq!(lm.acquire(T1, "x", LockMode::Shared), LockOutcome::Granted);
        assert_eq!(lm.acquire(T1, "x", LockMode::Shared), LockOutcome::Granted);
        // Sole-holder upgrade succeeds.
        assert_eq!(
            lm.acquire(T1, "x", LockMode::Exclusive),
            LockOutcome::Granted
        );
        assert!(lm.holds(T1, "x", LockMode::Exclusive));
        // Exclusive holder may "downgrade-request" shared: still granted.
        assert_eq!(lm.acquire(T1, "x", LockMode::Shared), LockOutcome::Granted);
        assert!(lm.holds(T1, "x", LockMode::Exclusive));
    }

    #[test]
    fn upgrade_with_other_holders_waits() {
        let mut lm = LockManager::new();
        lm.acquire(T1, "x", LockMode::Shared);
        lm.acquire(T2, "x", LockMode::Shared);
        match lm.acquire(T1, "x", LockMode::Exclusive) {
            LockOutcome::Wait { blockers } => assert_eq!(blockers, vec![T2]),
            other => panic!("expected wait, got {other:?}"),
        }
        lm.release_all(T2);
        // T1's queued upgrade is granted on release.
        assert!(lm.holds(T1, "x", LockMode::Exclusive));
    }

    #[test]
    fn deadlock_is_detected() {
        let mut lm = LockManager::new();
        lm.acquire(T1, "x", LockMode::Exclusive);
        lm.acquire(T2, "y", LockMode::Exclusive);
        assert!(matches!(
            lm.acquire(T1, "y", LockMode::Exclusive),
            LockOutcome::Wait { .. }
        ));
        match lm.acquire(T2, "x", LockMode::Exclusive) {
            LockOutcome::Deadlock { cycle } => assert!(cycle.contains(&T2)),
            other => panic!("expected deadlock, got {other:?}"),
        }
        // T2 aborts; T1 proceeds.
        let woken = lm.release_all(T2);
        assert_eq!(woken, vec![T1]);
        assert!(lm.holds(T1, "y", LockMode::Exclusive));
    }

    #[test]
    fn three_party_deadlock() {
        let mut lm = LockManager::new();
        lm.acquire(T1, "a", LockMode::Exclusive);
        lm.acquire(T2, "b", LockMode::Exclusive);
        lm.acquire(T3, "c", LockMode::Exclusive);
        assert!(matches!(
            lm.acquire(T1, "b", LockMode::Exclusive),
            LockOutcome::Wait { .. }
        ));
        assert!(matches!(
            lm.acquire(T2, "c", LockMode::Exclusive),
            LockOutcome::Wait { .. }
        ));
        assert!(matches!(
            lm.acquire(T3, "a", LockMode::Exclusive),
            LockOutcome::Deadlock { .. }
        ));
    }

    #[test]
    fn fifo_prevents_writer_starvation() {
        let mut lm = LockManager::new();
        lm.acquire(T1, "x", LockMode::Shared);
        // Writer queues.
        assert!(matches!(
            lm.acquire(T2, "x", LockMode::Exclusive),
            LockOutcome::Wait { .. }
        ));
        // A later reader must queue behind the writer, not sneak in.
        assert!(matches!(
            lm.acquire(T3, "x", LockMode::Shared),
            LockOutcome::Wait { .. }
        ));
        let woken = lm.release_all(T1);
        assert_eq!(woken, vec![T2]);
        assert!(lm.holds(T2, "x", LockMode::Exclusive));
        let woken = lm.release_all(T2);
        assert_eq!(woken, vec![T3]);
    }

    #[test]
    fn release_all_is_idempotent_and_cleans_up() {
        let mut lm = LockManager::new();
        lm.acquire(T1, "x", LockMode::Exclusive);
        lm.release_all(T1);
        assert!(lm.release_all(T1).is_empty());
        assert!(lm.holders("x").is_empty());
    }
}
