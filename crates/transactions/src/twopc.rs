//! Two-phase commit over the simulated network.
//!
//! The coordinator and participants are simulator processes exchanging
//! PREPARE / VOTE / COMMIT / ABORT / ACK messages, with retransmission on
//! timeout. Participants wrap a [`ResourceManager`]; crash injection uses
//! the simulator's topology plus the manager's `crash`/`recover`.

use std::collections::{BTreeMap, BTreeSet};

use rmodp_core::codec::{syntax_for, SyntaxId};
use rmodp_core::id::TxId;
use rmodp_core::value::Value;
use rmodp_netsim::sim::{Addr, Ctx, Message, Process};
use rmodp_netsim::time::SimDuration;
use rmodp_observe::{bus, event, EventKind, Layer};

use crate::rm::{ResourceManager, TxProfile};

/// One distributed transaction request: writes assigned to participants
/// by index.
#[derive(Debug, Clone, PartialEq)]
pub struct TxRequest {
    /// `(participant index, item, value)` triples.
    pub writes: Vec<(usize, String, Value)>,
}

/// The fate of a distributed transaction as known to the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxOutcome {
    /// Still running the protocol.
    Pending,
    /// All participants voted yes and were told to commit.
    Committed,
    /// Some participant voted no, timed out, or the transaction was
    /// abandoned.
    Aborted,
}

fn encode(v: &Value) -> Vec<u8> {
    syntax_for(SyntaxId::Binary).encode(v)
}

fn decode(bytes: &[u8]) -> Option<Value> {
    syntax_for(SyntaxId::Binary).decode(bytes).ok()
}

fn msg(kind: &str, tx: TxId, extra: Vec<(&str, Value)>) -> Vec<u8> {
    let mut fields = vec![
        ("t", Value::text(kind)),
        ("tx", Value::Int(tx.raw() as i64)),
    ];
    fields.extend(extra);
    encode(&Value::record(fields))
}

fn msg_tx(v: &Value) -> Option<TxId> {
    Some(TxId::new(v.field("tx")?.as_int()? as u64))
}

#[derive(Debug)]
struct TxProgress {
    request: TxRequest,
    votes: BTreeMap<Addr, bool>,
    decided: Option<bool>,
    acked: BTreeSet<Addr>,
    attempts: u32,
    outcome: TxOutcome,
}

/// The two-phase-commit coordinator process.
#[derive(Debug)]
pub struct Coordinator {
    participants: Vec<Addr>,
    retry_after: SimDuration,
    max_attempts: u32,
    transactions: BTreeMap<TxId, TxProgress>,
}

impl Coordinator {
    /// Creates a coordinator for a fixed participant group.
    pub fn new(participants: Vec<Addr>, retry_after: SimDuration, max_attempts: u32) -> Self {
        Self {
            participants,
            retry_after,
            max_attempts,
            transactions: BTreeMap::new(),
        }
    }

    /// The outcome of a transaction, if the coordinator has seen it.
    pub fn outcome(&self, tx: TxId) -> Option<TxOutcome> {
        self.transactions.get(&tx).map(|p| p.outcome)
    }

    /// Serialises a client submission for [`Process::on_message`]; send
    /// this payload to the coordinator's address to start a transaction.
    pub fn submit_payload(tx: TxId, request: &TxRequest) -> Vec<u8> {
        let writes = Value::Seq(
            request
                .writes
                .iter()
                .map(|(p, item, value)| {
                    Value::record([
                        ("p", Value::Int(*p as i64)),
                        ("item", Value::text(item.clone())),
                        ("value", value.clone()),
                    ])
                })
                .collect(),
        );
        msg("submit", tx, vec![("writes", writes)])
    }

    fn writes_for(&self, tx: TxId, participant: usize) -> Value {
        let progress = &self.transactions[&tx];
        Value::record(
            progress
                .request
                .writes
                .iter()
                .filter(|(p, _, _)| *p == participant)
                .map(|(_, item, value)| (item.clone(), value.clone())),
        )
    }

    fn send_prepares(&mut self, ctx: &mut Ctx<'_>, tx: TxId) {
        for (i, addr) in self.participants.clone().iter().enumerate() {
            if self.transactions[&tx].votes.contains_key(addr) {
                continue;
            }
            event(Layer::Transactions, EventKind::TxPrepare)
                .in_context()
                .node(addr.node.0 as u64)
                .port(addr.port as u64)
                .detail(format!("{tx} prepare -> participant {i}"))
                .emit();
            bus::counter_add("transactions.prepares", 1);
            let writes = self.writes_for(tx, i);
            ctx.send(*addr, msg("prepare", tx, vec![("writes", writes)]));
        }
        ctx.set_timer(self.retry_after, tx.raw());
    }

    fn send_decision(&mut self, ctx: &mut Ctx<'_>, tx: TxId, commit: bool) {
        let kind = if commit { "commit" } else { "abort" };
        for addr in self.participants.clone() {
            if self.transactions[&tx].acked.contains(&addr) {
                continue;
            }
            ctx.send(addr, msg(kind, tx, vec![]));
        }
        ctx.set_timer(self.retry_after, tx.raw());
    }

    fn decide(&mut self, ctx: &mut Ctx<'_>, tx: TxId, commit: bool) {
        let progress = self.transactions.get_mut(&tx).expect("known tx");
        if progress.decided.is_some() {
            return;
        }
        progress.decided = Some(commit);
        progress.attempts = 0;
        progress.outcome = if commit {
            TxOutcome::Committed
        } else {
            TxOutcome::Aborted
        };
        let kind = if commit {
            EventKind::TxCommit
        } else {
            EventKind::TxAbort
        };
        let votes = progress.votes.len();
        event(Layer::Transactions, kind)
            .in_context()
            .detail(format!("{tx} decided with {votes} vote(s) in"))
            .emit();
        bus::counter_add(
            if commit {
                "transactions.commits"
            } else {
                "transactions.aborts"
            },
            1,
        );
        ctx.note(format!(
            "{tx} decided {}",
            if commit { "commit" } else { "abort" }
        ));
        self.send_decision(ctx, tx, commit);
    }
}

impl Process for Coordinator {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, m: Message) {
        let Some(v) = decode(&m.payload) else { return };
        let Some(kind) = v.field("t").and_then(Value::as_text).map(str::to_owned) else {
            return;
        };
        let Some(tx) = msg_tx(&v) else { return };
        match kind.as_str() {
            "submit" => {
                if self.transactions.contains_key(&tx) {
                    return;
                }
                let writes = v
                    .field("writes")
                    .and_then(Value::as_seq)
                    .map(|items| {
                        items
                            .iter()
                            .filter_map(|w| {
                                Some((
                                    w.field("p")?.as_int()? as usize,
                                    w.field("item")?.as_text()?.to_owned(),
                                    w.field("value")?.clone(),
                                ))
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                self.transactions.insert(
                    tx,
                    TxProgress {
                        request: TxRequest { writes },
                        votes: BTreeMap::new(),
                        decided: None,
                        acked: BTreeSet::new(),
                        attempts: 0,
                        outcome: TxOutcome::Pending,
                    },
                );
                self.send_prepares(ctx, tx);
            }
            "vote" => {
                let yes = v.field("yes").and_then(Value::as_bool).unwrap_or(false);
                let Some(progress) = self.transactions.get_mut(&tx) else {
                    return;
                };
                if progress.decided.is_some() {
                    return;
                }
                progress.votes.insert(m.src, yes);
                event(Layer::Transactions, EventKind::TxVote)
                    .in_context()
                    .node(m.src.node.0 as u64)
                    .port(m.src.port as u64)
                    .detail(format!("{tx} vote yes={yes}"))
                    .emit();
                bus::counter_add("transactions.votes", 1);
                if !yes {
                    self.decide(ctx, tx, false);
                } else if self
                    .participants
                    .iter()
                    .all(|p| self.transactions[&tx].votes.get(p) == Some(&true))
                {
                    self.decide(ctx, tx, true);
                }
            }
            "ack" => {
                let all = {
                    let Some(progress) = self.transactions.get_mut(&tx) else {
                        return;
                    };
                    progress.acked.insert(m.src);
                    progress.acked.len() >= self.participants.len()
                };
                if all {
                    ctx.note(format!("{tx} fully acknowledged"));
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        let tx = TxId::new(tag);
        let Some(progress) = self.transactions.get_mut(&tx) else {
            return;
        };
        match progress.decided {
            None => {
                progress.attempts += 1;
                if progress.attempts >= self.max_attempts {
                    // Presumed abort after too many silent rounds.
                    self.decide(ctx, tx, false);
                } else {
                    self.send_prepares(ctx, tx);
                }
            }
            Some(commit) => {
                if progress.acked.len() < self.participants.len() {
                    progress.attempts += 1;
                    if progress.attempts < self.max_attempts * 4 {
                        self.send_decision(ctx, tx, commit);
                    }
                    // Past that, give up retransmitting; recovered
                    // participants resolve in-doubt state by asking.
                }
            }
        }
    }
}

/// A two-phase-commit participant wrapping a [`ResourceManager`].
#[derive(Debug)]
pub struct Participant {
    /// The transactional store (public so tests can crash/recover it).
    pub rm: ResourceManager,
    /// Decisions already applied (for idempotent re-acks).
    applied: BTreeMap<TxId, bool>,
}

impl Participant {
    /// Creates a participant with an ACID resource manager.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            rm: ResourceManager::new(name, TxProfile::acid()),
            applied: BTreeMap::new(),
        }
    }
}

impl Process for Participant {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, m: Message) {
        let Some(v) = decode(&m.payload) else { return };
        let Some(kind) = v.field("t").and_then(Value::as_text).map(str::to_owned) else {
            return;
        };
        let Some(tx) = msg_tx(&v) else { return };
        match kind.as_str() {
            "prepare" => {
                if let Some(&committed) = self.applied.get(&tx) {
                    // Already resolved: repeat the (implied) vote.
                    ctx.send(
                        m.src,
                        msg("vote", tx, vec![("yes", Value::Bool(committed))]),
                    );
                    return;
                }
                if self.rm.is_prepared(tx) {
                    ctx.send(m.src, msg("vote", tx, vec![("yes", Value::Bool(true))]));
                    return;
                }
                self.rm.begin_with_id(tx);
                let mut ok = true;
                if let Some(writes) = v.field("writes").and_then(Value::as_record) {
                    for (item, value) in writes {
                        if self.rm.write(tx, item, value.clone()).is_err() {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok && self.rm.prepare(tx).is_ok() {
                    ctx.send(m.src, msg("vote", tx, vec![("yes", Value::Bool(true))]));
                } else {
                    self.rm.abort(tx).ok();
                    self.applied.insert(tx, false);
                    ctx.send(m.src, msg("vote", tx, vec![("yes", Value::Bool(false))]));
                }
            }
            "commit" | "abort" => {
                let commit = kind == "commit";
                if self.applied.insert(tx, commit).is_none() {
                    if commit {
                        self.rm.commit(tx).ok();
                    } else {
                        self.rm.abort(tx).ok();
                    }
                }
                ctx.send(m.src, msg("ack", tx, vec![]));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmodp_netsim::sim::Sim;
    use rmodp_netsim::topology::{LinkConfig, Topology};

    struct Net {
        sim: Sim,
        coord: Addr,
        parts: Vec<Addr>,
    }

    fn build(seed: u64, n: usize, link: LinkConfig) -> Net {
        let mut sim = Sim::with_topology(seed, Topology::full_mesh(link));
        let coord_node = sim.add_node();
        let coord = Addr::new(coord_node, 0);
        let mut parts = Vec::new();
        for i in 0..n {
            let node = sim.add_node();
            let addr = Addr::new(node, 0);
            sim.attach(addr, Participant::new(format!("rm{i}")));
            parts.push(addr);
        }
        sim.attach(
            coord,
            Coordinator::new(parts.clone(), SimDuration::from_millis(20), 5),
        );
        Net { sim, coord, parts }
    }

    fn submit(net: &mut Net, tx: u64, writes: Vec<(usize, &str, i64)>) {
        let request = TxRequest {
            writes: writes
                .into_iter()
                .map(|(p, item, v)| (p, item.to_owned(), Value::Int(v)))
                .collect(),
        };
        let payload = Coordinator::submit_payload(TxId::new(tx), &request);
        net.sim.send_from(Addr::EXTERNAL, net.coord, payload);
    }

    fn outcome(net: &Net, tx: u64) -> TxOutcome {
        net.sim
            .inspect::<Coordinator>(net.coord)
            .unwrap()
            .outcome(TxId::new(tx))
            .unwrap_or(TxOutcome::Pending)
    }

    fn committed(net: &Net, p: usize, item: &str) -> Option<Value> {
        net.sim
            .inspect::<Participant>(net.parts[p])
            .unwrap()
            .rm
            .read_committed(item)
    }

    #[test]
    fn happy_path_commits_everywhere() {
        let mut net = build(1, 3, LinkConfig::with_latency(SimDuration::from_millis(1)));
        submit(&mut net, 1, vec![(0, "x", 10), (1, "y", 20), (2, "z", 30)]);
        net.sim.run_until_idle();
        assert_eq!(outcome(&net, 1), TxOutcome::Committed);
        assert_eq!(committed(&net, 0, "x"), Some(Value::Int(10)));
        assert_eq!(committed(&net, 1, "y"), Some(Value::Int(20)));
        assert_eq!(committed(&net, 2, "z"), Some(Value::Int(30)));
    }

    #[test]
    fn crashed_participant_forces_abort_and_atomicity_holds() {
        let mut net = build(2, 3, LinkConfig::with_latency(SimDuration::from_millis(1)));
        // Participant 2's node is down before the transaction starts.
        net.sim.topology_mut().crash(net.parts[2].node);
        submit(&mut net, 1, vec![(0, "x", 10), (2, "z", 30)]);
        net.sim.run_until_idle();
        assert_eq!(outcome(&net, 1), TxOutcome::Aborted);
        // Atomicity: the reachable participant must not have committed.
        assert_eq!(committed(&net, 0, "x"), None);
    }

    #[test]
    fn message_loss_is_masked_by_retransmission() {
        let link = LinkConfig::with_latency(SimDuration::from_millis(1)).loss(0.4);
        let mut net = build(3, 3, link);
        submit(&mut net, 1, vec![(0, "x", 1), (1, "y", 2), (2, "z", 3)]);
        net.sim.run_until_idle();
        assert_eq!(outcome(&net, 1), TxOutcome::Committed);
        for (p, item, v) in [(0, "x", 1), (1, "y", 2), (2, "z", 3)] {
            assert_eq!(committed(&net, p, item), Some(Value::Int(v)));
        }
    }

    #[test]
    fn participant_crash_after_prepare_is_in_doubt_then_resolved() {
        let mut net = build(4, 2, LinkConfig::with_latency(SimDuration::from_millis(1)));
        submit(&mut net, 1, vec![(0, "x", 10), (1, "y", 20)]);
        net.sim.run_until_idle();
        assert_eq!(outcome(&net, 1), TxOutcome::Committed);

        // Participant 1 crashes and loses volatile state; the stable log
        // survives and recovery restores the committed value.
        let p1 = net.parts[1];
        net.sim.topology_mut().crash(p1.node);
        {
            let part = net.sim.inspect_mut::<Participant>(p1).unwrap();
            part.rm.crash();
            part.rm.recover();
        }
        net.sim.topology_mut().restart(p1.node);
        assert_eq!(committed(&net, 1, "y"), Some(Value::Int(20)));
    }

    #[test]
    fn sequential_transactions_on_same_items() {
        let mut net = build(5, 2, LinkConfig::with_latency(SimDuration::from_millis(1)));
        submit(&mut net, 1, vec![(0, "x", 1), (1, "x", 1)]);
        net.sim.run_until_idle();
        submit(&mut net, 2, vec![(0, "x", 2), (1, "x", 2)]);
        net.sim.run_until_idle();
        assert_eq!(outcome(&net, 1), TxOutcome::Committed);
        assert_eq!(outcome(&net, 2), TxOutcome::Committed);
        assert_eq!(committed(&net, 0, "x"), Some(Value::Int(2)));
        assert_eq!(committed(&net, 1, "x"), Some(Value::Int(2)));
    }

    #[test]
    fn concurrent_conflicting_transactions_one_aborts_or_serialises() {
        let mut net = build(6, 2, LinkConfig::with_latency(SimDuration::from_millis(1)));
        // Both transactions write the same items on both participants.
        submit(&mut net, 1, vec![(0, "x", 1), (1, "y", 1)]);
        submit(&mut net, 2, vec![(0, "x", 2), (1, "y", 2)]);
        net.sim.run_until_idle();
        let o1 = outcome(&net, 1);
        let o2 = outcome(&net, 2);
        // At least one commits; atomicity holds for whatever committed:
        // both participants agree on each transaction's fate.
        assert!(
            o1 == TxOutcome::Committed || o2 == TxOutcome::Committed,
            "{o1:?} {o2:?}"
        );
        let x = committed(&net, 0, "x");
        let y = committed(&net, 1, "y");
        match (o1, o2) {
            (TxOutcome::Committed, TxOutcome::Committed) => {
                // Serialised: final values come from the same transaction.
                assert_eq!(x, y);
            }
            (TxOutcome::Committed, _) => {
                assert_eq!(x, Some(Value::Int(1)));
                assert_eq!(y, Some(Value::Int(1)));
            }
            (_, TxOutcome::Committed) => {
                assert_eq!(x, Some(Value::Int(2)));
                assert_eq!(y, Some(Value::Int(2)));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn deterministic_given_seed() {
        fn run(seed: u64) -> (TxOutcome, Option<Value>) {
            let link = LinkConfig::with_latency(SimDuration::from_millis(1)).loss(0.3);
            let mut net = build(seed, 3, link);
            submit(&mut net, 1, vec![(0, "x", 1), (1, "y", 2), (2, "z", 3)]);
            net.sim.run_until_idle();
            (outcome(&net, 1), committed(&net, 0, "x"))
        }
        assert_eq!(run(42), run(42));
    }
}
