//! Property tests for the transaction function: lock safety, log
//! replayability, conservation under random transactional workloads, and
//! 2PC atomicity under message loss.

use proptest::prelude::*;

use rmodp_core::id::TxId;
use rmodp_core::value::Value;
use rmodp_netsim::sim::{Addr, Sim};
use rmodp_netsim::time::SimDuration;
use rmodp_netsim::topology::{LinkConfig, Topology};
use rmodp_transactions::lock::{LockManager, LockMode};
use rmodp_transactions::rm::{ResourceManager, RmError, TxProfile};
use rmodp_transactions::twopc::{Coordinator, Participant, TxOutcome, TxRequest};

#[derive(Debug, Clone)]
enum LockOp {
    Acquire { tx: u8, item: u8, exclusive: bool },
    Release { tx: u8 },
}

fn arb_lock_ops() -> impl Strategy<Value = Vec<LockOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..6, 0u8..4, any::<bool>()).prop_map(|(tx, item, exclusive)| LockOp::Acquire {
                tx,
                item,
                exclusive
            }),
            (0u8..6).prop_map(|tx| LockOp::Release { tx }),
        ],
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Safety: at no point do two transactions hold conflicting locks.
    #[test]
    fn lock_manager_never_grants_conflicts(ops in arb_lock_ops()) {
        let mut lm = LockManager::new();
        for op in ops {
            match op {
                LockOp::Acquire { tx, item, exclusive } => {
                    let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                    let _ = lm.acquire(TxId::new(tx as u64 + 1), &format!("i{item}"), mode);
                }
                LockOp::Release { tx } => {
                    lm.release_all(TxId::new(tx as u64 + 1));
                }
            }
            for item in 0..4u8 {
                let holders = lm.holders(&format!("i{item}"));
                let exclusives = holders
                    .iter()
                    .filter(|(_, m)| *m == LockMode::Exclusive)
                    .count();
                prop_assert!(exclusives <= 1, "two exclusive holders on i{}", item);
                if exclusives == 1 {
                    prop_assert_eq!(holders.len(), 1, "exclusive shared with others on i{}", item);
                }
            }
        }
    }

    /// Durability: after any sequence of committed/aborted transactions,
    /// crash + recover reproduces exactly the committed state.
    #[test]
    fn recovery_reproduces_committed_state(
        txs in proptest::collection::vec(
            (proptest::collection::vec((0u8..5, -100i64..100), 1..4), any::<bool>()),
            1..20,
        )
    ) {
        let mut rm = ResourceManager::new("p", TxProfile::acid());
        let mut expected = std::collections::BTreeMap::new();
        for (writes, commit) in txs {
            let tx = rm.begin();
            let mut ok = true;
            let mut staged = Vec::new();
            for (key, val) in writes {
                let item = format!("k{key}");
                match rm.write(tx, &item, Value::Int(val)) {
                    Ok(()) => staged.push((item, val)),
                    Err(_) => { ok = false; break; }
                }
            }
            if ok && commit {
                rm.commit(tx).unwrap();
                for (item, val) in staged {
                    expected.insert(item, val);
                }
            } else {
                let _ = rm.abort(tx);
            }
        }
        rm.crash();
        rm.recover();
        for (item, val) in &expected {
            prop_assert_eq!(rm.read_committed(item), Some(Value::Int(*val)), "{}", item);
        }
    }

    /// Isolation + atomicity: random interleaved transfers (some aborted)
    /// conserve the total.
    #[test]
    fn conservation_under_random_transfers(
        transfers in proptest::collection::vec((0u8..4, 0u8..4, 1i64..50, any::<bool>()), 1..30)
    ) {
        let mut rm = ResourceManager::new("bank", TxProfile::acid());
        let seed_tx = rm.begin();
        for i in 0..4u8 {
            rm.write(seed_tx, &format!("a{i}"), Value::Int(250)).unwrap();
        }
        rm.commit(seed_tx).unwrap();

        for (from, to, amount, abort) in transfers {
            if from == to { continue; }
            let tx = rm.begin();
            let run = (|| -> Result<(), RmError> {
                let f = format!("a{from}");
                let t = format!("a{to}");
                let fb = rm.read(tx, &f)?.and_then(|v| v.as_int()).unwrap_or(0);
                let tb = rm.read(tx, &t)?.and_then(|v| v.as_int()).unwrap_or(0);
                if fb < amount {
                    return Err(RmError::NotActive { tx }); // treated as failure
                }
                rm.write(tx, &f, Value::Int(fb - amount))?;
                rm.write(tx, &t, Value::Int(tb + amount))?;
                Ok(())
            })();
            if run.is_ok() && !abort {
                rm.commit(tx).unwrap();
            } else {
                let _ = rm.abort(tx);
            }
        }
        let total: i64 = (0..4u8)
            .map(|i| rm.read_committed(&format!("a{i}")).unwrap().as_int().unwrap())
            .sum();
        prop_assert_eq!(total, 1_000);
    }

    /// 2PC atomicity under random message loss: when the protocol
    /// terminates, either every participant committed the write or none
    /// did.
    #[test]
    fn two_phase_commit_is_atomic_under_loss(
        seed in 0u64..300,
        loss_permille in 0u16..500,
        participants in 2usize..5,
    ) {
        let link = LinkConfig::with_latency(SimDuration::from_millis(1))
            .loss(loss_permille as f64 / 1_000.0);
        let mut sim = Sim::with_topology(seed, Topology::full_mesh(link));
        let coord_node = sim.add_node();
        let coord = Addr::new(coord_node, 0);
        let mut parts = Vec::new();
        for i in 0..participants {
            let node = sim.add_node();
            let addr = Addr::new(node, 0);
            sim.attach(addr, Participant::new(format!("rm{i}")));
            parts.push(addr);
        }
        sim.attach(coord, Coordinator::new(parts.clone(), SimDuration::from_millis(20), 6));
        let request = TxRequest {
            writes: (0..participants).map(|p| (p, "x".to_owned(), Value::Int(7))).collect(),
        };
        let payload = Coordinator::submit_payload(TxId::new(1), &request);
        sim.send_from(Addr::EXTERNAL, coord, payload);
        sim.run_until_idle();

        let outcome = sim
            .inspect::<Coordinator>(coord)
            .unwrap()
            .outcome(TxId::new(1))
            .unwrap_or(TxOutcome::Pending);
        let committed: Vec<bool> = parts
            .iter()
            .map(|p| {
                sim.inspect::<Participant>(*p)
                    .unwrap()
                    .rm
                    .read_committed("x")
                    .is_some()
            })
            .collect();
        match outcome {
            TxOutcome::Committed => {
                // Commit decisions retransmit; with finite retries a
                // participant may be left in doubt, but no participant
                // may have *aborted* the write. Committed-at-some means
                // committed-or-in-doubt at all.
                for (i, p) in parts.iter().enumerate() {
                    let part = sim.inspect::<Participant>(*p).unwrap();
                    prop_assert!(
                        committed[i] || part.rm.is_prepared(TxId::new(1)),
                        "participant {} neither committed nor in doubt after global commit", i
                    );
                }
            }
            TxOutcome::Aborted | TxOutcome::Pending => {
                prop_assert!(
                    committed.iter().all(|c| !c),
                    "a participant committed despite global {:?}", outcome
                );
            }
        }
    }
}
