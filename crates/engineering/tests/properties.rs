//! Property tests for the engineering layer: envelope codec totality,
//! channel-stack inverses, and checkpoint/migration state preservation.

use proptest::prelude::*;

use rmodp_core::codec::{syntax_for, SyntaxId};
use rmodp_core::id::{ChannelId, InterfaceId};
use rmodp_core::value::Value;
use rmodp_engineering::behaviour::CounterBehaviour;
use rmodp_engineering::channel::{ChannelConfig, Stack};
use rmodp_engineering::engine::Engine;
use rmodp_engineering::envelope::Envelope;

fn arb_payload_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Value::Int),
        "[a-z]{0,8}".prop_map(Value::text),
        any::<bool>().prop_map(Value::Bool),
    ];
    leaf.prop_recursive(2, 12, 3, |inner| {
        proptest::collection::btree_map("[a-z]{1,5}", inner, 0..3).prop_map(Value::Record)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn envelope_codec_round_trips(
        channel in any::<u64>(),
        request in any::<u64>(),
        seq in any::<u64>(),
        target in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        text_syntax in any::<bool>(),
    ) {
        let syntax = if text_syntax { SyntaxId::Text } else { SyntaxId::Binary };
        let mut env = Envelope::request(
            ChannelId::new(channel),
            request,
            InterfaceId::new(target),
            syntax,
            payload,
        );
        env.seq = seq;
        let back = Envelope::from_bytes(&env.to_bytes()).unwrap();
        prop_assert_eq!(back, env);
    }

    #[test]
    fn envelope_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = Envelope::from_bytes(&bytes);
    }

    /// A marshalling round trip through any wire syntax preserves the
    /// payload value exactly (access transparency's core guarantee).
    #[test]
    fn stack_marshalling_is_lossless(
        v in arb_payload_value(),
        wire_text in any::<bool>(),
        native_text in any::<bool>(),
        sequence in any::<bool>(),
    ) {
        let wire = if wire_text { SyntaxId::Text } else { SyntaxId::Binary };
        let native = if native_text { SyntaxId::Text } else { SyntaxId::Binary };
        let config = ChannelConfig {
            wire_syntax: wire,
            sequence,
            audit: false,
            retry: None,
            breaker: None,
        };
        let mut out_stack: Stack = config.build_stack(native);
        let mut in_stack: Stack = config.build_stack(native);

        let payload = syntax_for(native).encode(&v);
        let mut env = Envelope::request(
            ChannelId::new(1),
            1,
            InterfaceId::new(1),
            native,
            payload,
        );
        out_stack.outgoing(&mut env).unwrap();
        prop_assert_eq!(env.syntax, wire);
        in_stack.incoming(&mut env).unwrap();
        prop_assert_eq!(env.syntax, native);
        let decoded = syntax_for(env.syntax).decode(&env.payload).unwrap();
        prop_assert_eq!(decoded, v);
    }

    /// Checkpoint → deactivate → reactivate preserves arbitrary object
    /// state exactly, across any pair of node syntaxes.
    #[test]
    fn reactivation_preserves_state(
        adds in proptest::collection::vec(1i64..100, 0..8),
        target_text in any::<bool>(),
    ) {
        let mut engine = Engine::new(9);
        engine.behaviours_mut().register("counter", CounterBehaviour::default);
        let node = engine.add_node(SyntaxId::Binary);
        let capsule = engine.add_capsule(node).unwrap();
        let cluster = engine.add_cluster(node, capsule).unwrap();
        let (_, refs) = engine
            .create_object(node, capsule, cluster, "c", "counter", CounterBehaviour::initial_state(), 1)
            .unwrap();
        let expected: i64 = adds.iter().sum();
        for k in &adds {
            engine
                .invoke_local(node, refs[0].interface, "Add", &Value::record([("k", Value::Int(*k))]))
                .unwrap();
        }
        let target = engine.add_node(if target_text { SyntaxId::Text } else { SyntaxId::Binary });
        let target_capsule = engine.add_capsule(target).unwrap();
        let checkpoint = engine.deactivate_cluster(node, capsule, cluster).unwrap();
        engine.reactivate_cluster(target, target_capsule, &checkpoint).unwrap();
        let t = engine
            .invoke_local(target, refs[0].interface, "Get", &Value::record::<&str, _>([]))
            .unwrap();
        prop_assert_eq!(t.results.field("n"), Some(&Value::Int(expected)));
    }

    /// Remote calls agree with local ground truth for arbitrary add
    /// sequences, whatever the wire syntax.
    #[test]
    fn remote_equals_local_semantics(
        adds in proptest::collection::vec(-50i64..50, 1..10),
        wire_text in any::<bool>(),
    ) {
        let mut engine = Engine::new(10);
        engine.behaviours_mut().register("counter", CounterBehaviour::default);
        let server = engine.add_node(SyntaxId::Binary);
        let client = engine.add_node(SyntaxId::Text);
        let capsule = engine.add_capsule(server).unwrap();
        let cluster = engine.add_cluster(server, capsule).unwrap();
        let (_, refs) = engine
            .create_object(server, capsule, cluster, "c", "counter", CounterBehaviour::initial_state(), 1)
            .unwrap();
        let config = ChannelConfig {
            wire_syntax: if wire_text { SyntaxId::Text } else { SyntaxId::Binary },
            ..ChannelConfig::default()
        };
        let ch = engine.open_channel(client, refs[0].interface, config).unwrap();
        let mut expected = 0i64;
        for k in &adds {
            expected += k;
            let t = engine
                .call(ch, "Add", &Value::record([("k", Value::Int(*k))]))
                .unwrap();
            prop_assert_eq!(t.results.field("n"), Some(&Value::Int(expected)));
        }
    }
}
