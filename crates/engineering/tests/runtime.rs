//! End-to-end tests of the engineering runtime: remote invocation through
//! channels, heterogeneous marshalling, replay protection, retransmission,
//! checkpoint / deactivate / reactivate / migrate, and structure policies.

use rmodp_core::codec::SyntaxId;
use rmodp_core::id::{CapsuleId, ClusterId, NodeId};
use rmodp_core::value::Value;
use rmodp_engineering::channel::{ChannelConfig, RetryPolicy};
use rmodp_engineering::engine::{CallError, EngError, Engine};
use rmodp_engineering::prelude::*;
use rmodp_netsim::time::SimDuration;
use rmodp_netsim::topology::LinkConfig;

fn engine() -> Engine {
    let mut e = Engine::new(7);
    e.behaviours_mut()
        .register("counter", CounterBehaviour::default);
    e.behaviours_mut().register("echo", || EchoBehaviour);
    e
}

/// Sets up one server node (binary-native) with a counter object, and one
/// text-native client node.
fn counter_setup(e: &mut Engine) -> (NodeId, NodeId, CapsuleId, ClusterId, InterfaceRef) {
    let server = e.add_node(SyntaxId::Binary);
    let client = e.add_node(SyntaxId::Text);
    let capsule = e.add_capsule(server).unwrap();
    let cluster = e.add_cluster(server, capsule).unwrap();
    let (_obj, refs) = e
        .create_object(
            server,
            capsule,
            cluster,
            "counter",
            "counter",
            CounterBehaviour::initial_state(),
            1,
        )
        .unwrap();
    (server, client, capsule, cluster, refs[0])
}

fn add_args(k: i64) -> Value {
    Value::record([("k", Value::Int(k))])
}

#[test]
fn remote_interrogation_accumulates_state() {
    let mut e = engine();
    let (_, client, _, _, iref) = counter_setup(&mut e);
    let ch = e
        .open_channel(client, iref.interface, ChannelConfig::default())
        .unwrap();
    for k in 1..=10 {
        let t = e.call(ch, "Add", &add_args(k)).unwrap();
        assert!(t.is_ok(), "{t:?}");
    }
    let t = e.call(ch, "Get", &Value::record::<&str, _>([])).unwrap();
    assert_eq!(t.results.field("n"), Some(&Value::Int(55)));
}

#[test]
fn heterogeneous_nodes_interwork_through_marshalling() {
    // Client is text-native, server binary-native, wire syntax text: every
    // hop forces real conversion (access transparency).
    let mut e = engine();
    let (_, client, _, _, iref) = counter_setup(&mut e);
    let cfg = ChannelConfig {
        wire_syntax: SyntaxId::Text,
        ..ChannelConfig::default()
    };
    let ch = e.open_channel(client, iref.interface, cfg).unwrap();
    let t = e.call(ch, "Add", &add_args(3)).unwrap();
    assert_eq!(t.results.field("n"), Some(&Value::Int(3)));
}

#[test]
fn announcements_are_fire_and_forget() {
    let mut e = engine();
    let (server, client, _, _, iref) = counter_setup(&mut e);
    let ch = e
        .open_channel(client, iref.interface, ChannelConfig::default())
        .unwrap();
    e.announce(ch, "Add", &add_args(5)).unwrap();
    e.announce(ch, "Add", &add_args(6)).unwrap();
    e.run_until_idle();
    let t = e.call(ch, "Get", &Value::record::<&str, _>([])).unwrap();
    assert_eq!(t.results.field("n"), Some(&Value::Int(11)));
    assert_eq!(e.node_stats(server).unwrap().announcements, 2);
}

#[test]
fn flows_drive_on_flow() {
    let mut e = engine();
    let (server, client, _, _, iref) = counter_setup(&mut e);
    let ch = e
        .open_channel(client, iref.interface, ChannelConfig::default())
        .unwrap();
    for k in [1, 2, 3] {
        e.send_flow(ch, "increments", &Value::Int(k)).unwrap();
    }
    e.run_until_idle();
    let t = e.call(ch, "Get", &Value::record::<&str, _>([])).unwrap();
    assert_eq!(t.results.field("n"), Some(&Value::Int(6)));
    assert_eq!(e.node_stats(server).unwrap().flows, 3);
}

#[test]
fn lossy_link_times_out_then_retry_succeeds() {
    let mut e = engine();
    let (server, client, _, _, iref) = counter_setup(&mut e);
    // 100% loss: no retry policy can help; expect Timeout.
    let s = e.sim_node(server).unwrap();
    let c = e.sim_node(client).unwrap();
    e.sim_mut().topology_mut().set_link(
        c,
        s,
        LinkConfig::with_latency(SimDuration::from_millis(1)).loss(1.0),
    );
    let ch = e
        .open_channel(client, iref.interface, ChannelConfig::default())
        .unwrap();
    let err = e.call(ch, "Add", &add_args(1)).unwrap_err();
    assert_eq!(err, CallError::Timeout { attempts: 1 });

    // 60% loss with generous retries: at-least-once delivery succeeds.
    e.sim_mut().topology_mut().set_link(
        c,
        s,
        LinkConfig::with_latency(SimDuration::from_millis(1)).loss(0.6),
    );
    let cfg = ChannelConfig {
        retry: Some(
            RetryPolicy::reliable()
                .with_timeout(SimDuration::from_millis(10))
                .with_retries(20)
                .with_deadline(SimDuration::from_secs(2)),
        ),
        ..ChannelConfig::default()
    };
    let ch2 = e.open_channel(client, iref.interface, cfg).unwrap();
    let t = e.call(ch2, "Get", &Value::record::<&str, _>([])).unwrap();
    assert!(t.is_ok());
}

#[test]
fn sequence_binder_foils_replayed_requests_end_to_end() {
    use rmodp_core::codec::syntax_for;
    use rmodp_engineering::envelope::Envelope;
    use rmodp_netsim::sim::Addr;

    let mut e = engine();
    let (server, client, _, _, iref) = counter_setup(&mut e);
    let cfg = ChannelConfig {
        sequence: true,
        ..ChannelConfig::default()
    };
    let ch = e.open_channel(client, iref.interface, cfg).unwrap();
    // A legitimate call consumes sequence number 1 at the server binder.
    e.call(ch, "Add", &add_args(100)).unwrap();
    assert_eq!(e.node_stats(server).unwrap().requests, 1);

    // An attacker who captured the seq=1 request replays equivalent bytes.
    let payload = syntax_for(SyntaxId::Binary).encode(&Value::record([
        ("op", Value::text("Add")),
        ("args", add_args(100)),
    ]));
    let mut replayed = Envelope::request(ch, 999, iref.interface, SyntaxId::Binary, payload);
    replayed.seq = 1;
    let nucleus = Addr::new(e.sim_node(server).unwrap(), 0);
    e.sim_mut()
        .send_from(Addr::EXTERNAL, nucleus, replayed.to_bytes());
    e.run_until_idle();

    // The binder rejected the replay: no second Add was executed.
    assert_eq!(e.node_stats(server).unwrap().rejected, 1);
    let t = e.call(ch, "Get", &Value::record::<&str, _>([])).unwrap();
    assert_eq!(t.results.field("n"), Some(&Value::Int(100)));
}

#[test]
fn deactivate_then_calls_get_not_here_then_reactivate_restores() {
    let mut e = engine();
    let (server, client, capsule, cluster, iref) = counter_setup(&mut e);
    let ch = e
        .open_channel(client, iref.interface, ChannelConfig::default())
        .unwrap();
    e.call(ch, "Add", &add_args(9)).unwrap();

    let checkpoint = e.deactivate_cluster(server, capsule, cluster).unwrap();
    assert_eq!(e.lookup(iref.interface), None);
    let err = e
        .call(ch, "Get", &Value::record::<&str, _>([]))
        .unwrap_err();
    assert_eq!(
        err,
        CallError::NotHere {
            interface: iref.interface
        }
    );

    let new_cluster = e.reactivate_cluster(server, capsule, &checkpoint).unwrap();
    assert_ne!(new_cluster, cluster);
    let fresh = e.lookup(iref.interface).unwrap();
    assert!(fresh.epoch > iref.epoch);
    e.redirect_channel(ch, fresh).unwrap();
    let t = e.call(ch, "Get", &Value::record::<&str, _>([])).unwrap();
    // State survived deactivation.
    assert_eq!(t.results.field("n"), Some(&Value::Int(9)));
}

#[test]
fn migration_preserves_identity_and_state() {
    let mut e = engine();
    let (server, client, capsule, cluster, iref) = counter_setup(&mut e);
    let ch = e
        .open_channel(client, iref.interface, ChannelConfig::default())
        .unwrap();
    e.call(ch, "Add", &add_args(21)).unwrap();

    // Migrate the cluster to a third node with a different native syntax.
    let third = e.add_node(SyntaxId::Text);
    let target_capsule = e.add_capsule(third).unwrap();
    let new_cluster = e
        .migrate_cluster(server, capsule, cluster, third, target_capsule)
        .unwrap();
    assert_ne!(new_cluster, cluster);

    let fresh = e.lookup(iref.interface).unwrap();
    assert_eq!(fresh.location.node, third);
    assert_eq!(fresh.interface, iref.interface); // identity preserved
    assert!(fresh.epoch > iref.epoch); // epoch bumped

    // The old channel belief is stale: NotHere.
    let err = e
        .call(ch, "Get", &Value::record::<&str, _>([]))
        .unwrap_err();
    assert_eq!(
        err,
        CallError::NotHere {
            interface: iref.interface
        }
    );

    // Redirect (what a relocation-transparent binder automates) and the
    // call succeeds against migrated state.
    e.redirect_channel(ch, fresh).unwrap();
    let t = e.call(ch, "Get", &Value::record::<&str, _>([])).unwrap();
    assert_eq!(t.results.field("n"), Some(&Value::Int(21)));
}

#[test]
fn migrate_to_unknown_node_rolls_back() {
    let mut e = engine();
    let (server, client, capsule, cluster, iref) = counter_setup(&mut e);
    let err = e
        .migrate_cluster(server, capsule, cluster, NodeId::new(99), capsule)
        .unwrap_err();
    assert!(matches!(err, EngError::UnknownNode { .. }));
    // The cluster is back at the source (fresh cluster id, same data).
    let fresh = e.lookup(iref.interface).unwrap();
    assert_eq!(fresh.location.node, server);
    let ch = e
        .open_channel(client, iref.interface, ChannelConfig::default())
        .unwrap();
    let t = e.call(ch, "Get", &Value::record::<&str, _>([])).unwrap();
    assert!(t.is_ok());
}

#[test]
fn structure_policy_restricts_creation() {
    let mut e = Engine::with_policy(1, StructurePolicy::single_object_capsules());
    e.behaviours_mut().register("echo", || EchoBehaviour);
    let node = e.add_node(SyntaxId::Binary);
    let capsule = e.add_capsule(node).unwrap();
    let cluster = e.add_cluster(node, capsule).unwrap();
    // Second cluster in the same capsule violates the policy.
    assert!(matches!(
        e.add_cluster(node, capsule),
        Err(EngError::Policy { .. })
    ));
    e.create_object(
        node,
        capsule,
        cluster,
        "a",
        "echo",
        Value::record::<&str, _>([]),
        1,
    )
    .unwrap();
    // Second object in the same cluster violates the policy.
    assert!(matches!(
        e.create_object(
            node,
            capsule,
            cluster,
            "b",
            "echo",
            Value::record::<&str, _>([]),
            1
        ),
        Err(EngError::Policy { .. })
    ));
    assert!(e.validate_node(node).unwrap().is_empty());
}

#[test]
fn validate_node_passes_for_live_engine() {
    let mut e = engine();
    let (server, _, _, _, _) = counter_setup(&mut e);
    assert_eq!(e.validate_node(server).unwrap(), Vec::<String>::new());
    assert_eq!(e.census(server).unwrap(), (1, 1, 1));
}

#[test]
fn crashed_server_times_out_and_recovers_after_restart() {
    let mut e = engine();
    let (server, client, _, _, iref) = counter_setup(&mut e);
    let ch = e
        .open_channel(client, iref.interface, ChannelConfig::default())
        .unwrap();
    e.call(ch, "Add", &add_args(4)).unwrap();

    let s = e.sim_node(server).unwrap();
    e.sim_mut().topology_mut().crash(s);
    let err = e
        .call(ch, "Get", &Value::record::<&str, _>([]))
        .unwrap_err();
    assert!(matches!(err, CallError::Timeout { .. }));

    e.sim_mut().topology_mut().restart(s);
    let t = e.call(ch, "Get", &Value::record::<&str, _>([])).unwrap();
    assert_eq!(t.results.field("n"), Some(&Value::Int(4)));
}

#[test]
fn invoke_local_bypasses_the_network() {
    let mut e = engine();
    let (server, _, _, _, iref) = counter_setup(&mut e);
    let sent_before = e.sim().metrics().sent;
    let t = e
        .invoke_local(server, iref.interface, "Add", &add_args(2))
        .unwrap();
    assert_eq!(t.results.field("n"), Some(&Value::Int(2)));
    assert_eq!(e.sim().metrics().sent, sent_before);
}

#[test]
fn unknown_entities_error_cleanly() {
    let mut e = engine();
    let (server, client, capsule, _, iref) = counter_setup(&mut e);
    assert!(matches!(
        e.add_capsule(NodeId::new(99)),
        Err(EngError::UnknownNode { .. })
    ));
    assert!(matches!(
        e.add_cluster(server, CapsuleId::new(99)),
        Err(EngError::UnknownCapsule { .. })
    ));
    assert!(matches!(
        e.create_object(
            server,
            capsule,
            ClusterId::new(99),
            "x",
            "counter",
            Value::Null,
            0
        ),
        Err(EngError::UnknownCluster { .. })
    ));
    assert!(matches!(
        e.create_object(
            server,
            capsule,
            ClusterId::new(1),
            "x",
            "ghost",
            Value::Null,
            0
        ),
        Err(EngError::UnknownBehaviour { .. })
    ));
    assert!(matches!(
        e.open_channel(
            client,
            rmodp_core::id::InterfaceId::new(99),
            ChannelConfig::default()
        ),
        Err(EngError::UnknownInterface { .. })
    ));
    let _ = iref;
}

#[test]
fn audit_channel_records_operations_at_server() {
    let mut e = engine();
    let (server, client, _, _, iref) = counter_setup(&mut e);
    let cfg = ChannelConfig {
        audit: true,
        ..ChannelConfig::default()
    };
    let ch = e.open_channel(client, iref.interface, cfg).unwrap();
    e.call(ch, "Add", &add_args(1)).unwrap();
    e.call(ch, "Get", &Value::record::<&str, _>([])).unwrap();
    // The server-side audit stub saw both operations.
    let addr = rmodp_netsim::sim::Addr::new(e.sim_node(server).unwrap(), 0);
    let nucleus = e
        .sim()
        .inspect::<rmodp_engineering::nucleus::NucleusProcess>(addr)
        .unwrap();
    let stack = nucleus.server_channels.get(&ch).unwrap();
    let audit = stack
        .component::<rmodp_engineering::channel::AuditStub>()
        .unwrap();
    let joined = audit.entries().join("\n");
    assert!(joined.contains("Add"), "{joined}");
    assert!(joined.contains("Get"), "{joined}");
}

#[test]
fn same_engine_same_seed_is_deterministic() {
    fn run() -> (u64, Value) {
        let mut e = engine();
        let (_, client, _, _, iref) = counter_setup(&mut e);
        let cfg = ChannelConfig {
            sequence: true,
            wire_syntax: SyntaxId::Text,
            ..ChannelConfig::default()
        };
        let ch = e.open_channel(client, iref.interface, cfg).unwrap();
        for k in 1..20 {
            e.call(ch, "Add", &add_args(k)).unwrap();
        }
        let t = e.call(ch, "Get", &Value::record::<&str, _>([])).unwrap();
        (e.sim().now().as_micros(), t.results.clone())
    }
    assert_eq!(run(), run());
}
