//! # rmodp-engineering — the engineering viewpoint (§6)
//!
//! The engineering language describes the distributed-systems
//! infrastructure: it "is not concerned with the semantics of the ODP
//! application, except to determine its requirements for distribution and
//! distribution transparency".
//!
//! - [`structure`] — node / capsule / cluster / basic engineering object
//!   (Figure 5), checkpoints, structuring rules and policies;
//! - [`channel`] — channels composed of stubs, binders and protocol
//!   objects (Figure 4): marshalling stubs (access transparency), audit
//!   stubs, sequence binders (capture-and-replay protection);
//! - [`envelope`] — the wire format carried by protocol objects;
//! - [`behaviour`] — executable behaviour of basic engineering objects
//!   and the registry used by reactivation/migration;
//! - [`nucleus`] — the per-node kernel run as a simulator process;
//! - [`engine`] — the driver-facing runtime: create nodes/capsules/
//!   clusters/objects, open channels, invoke operations, checkpoint /
//!   deactivate / reactivate / migrate clusters.
//!
//! # Example: a remote interrogation through a real channel
//!
//! ```
//! use rmodp_engineering::prelude::*;
//! use rmodp_core::codec::SyntaxId;
//! use rmodp_core::value::Value;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut engine = Engine::new(42);
//! engine.behaviours_mut().register("counter", CounterBehaviour::default);
//!
//! let server = engine.add_node(SyntaxId::Binary);
//! let client = engine.add_node(SyntaxId::Text); // heterogeneous!
//! let capsule = engine.add_capsule(server)?;
//! let cluster = engine.add_cluster(server, capsule)?;
//! let (_obj, refs) = engine.create_object(
//!     server, capsule, cluster, "counter", "counter",
//!     CounterBehaviour::initial_state(), 1,
//! )?;
//!
//! let channel = engine.open_channel(client, refs[0].interface, ChannelConfig::default())?;
//! let t = engine.call(channel, "Add", &Value::record([("k", Value::Int(5))]))?;
//! assert_eq!(t.results.field("n"), Some(&Value::Int(5)));
//! # Ok(())
//! # }
//! ```

pub mod behaviour;
pub mod channel;
pub mod engine;
pub mod envelope;
pub mod nucleus;
pub mod population;
pub mod structure;

/// Commonly used items.
pub mod prelude {
    pub use crate::behaviour::{
        BehaviourRegistry, CounterBehaviour, EchoBehaviour, ServerBehaviour,
    };
    pub use crate::channel::{BreakerConfig, BreakerPhase, ChannelConfig, RetryPolicy};
    pub use crate::engine::{CallError, EngError, Engine};
    pub use crate::nucleus::{AdmissionConfig, AdmissionPolicy};
    pub use crate::structure::{ClusterCheckpoint, InterfaceRef, Location, StructurePolicy};
}

pub use engine::Engine;
