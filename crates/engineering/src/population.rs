//! Behaviours for the population-scale scenarios (bank branches and
//! trader desks) driven by the sharded kernel.
//!
//! Both behaviours are deliberately **commutative**: the order in which
//! same-object invocations execute never changes the final state, and
//! every reply is a pure function of its own request. These two
//! properties are what make the population benchmark's exported results
//! invariant under re-sharding — the equal-timestamp tie-break order at
//! a server *does* depend on the shard count (cross-shard deposits and
//! local schedules interleave differently), but with commutative state
//! and request-determined replies that order is unobservable.

use rmodp_computational::signature::{Invocation, Termination};
use rmodp_core::value::Value;

use crate::behaviour::ServerBehaviour;

/// A retail bank branch: an account ledger folded into commutative
/// totals.
///
/// - `Deposit {amount}` → `OK {amount}` — adds to the branch total;
/// - `Withdraw {amount}` → `OK {amount}` — subtracts from it;
/// - `Audit {}` → `OK {total, movements}` — reads the folded state
///   (order-sensitive: the sharded driver only audits after quiescence);
/// - anything else → `Error`.
#[derive(Debug, Default)]
pub struct BankBranchBehaviour;

impl BankBranchBehaviour {
    /// The initial state a branch object should be created with.
    pub fn initial_state() -> Value {
        Value::record([("total", Value::Int(0)), ("movements", Value::Int(0))])
    }

    fn apply(state: &mut Value, delta: i64) {
        let total = state.field("total").and_then(Value::as_int).unwrap_or(0);
        let moves = state
            .field("movements")
            .and_then(Value::as_int)
            .unwrap_or(0);
        state.set_field("total", Value::Int(total + delta));
        state.set_field("movements", Value::Int(moves + 1));
    }
}

impl ServerBehaviour for BankBranchBehaviour {
    fn invoke(&mut self, state: &mut Value, invocation: &Invocation) -> Termination {
        let amount = invocation.args.field("amount").and_then(Value::as_int);
        match (invocation.operation.as_str(), amount) {
            ("Deposit", Some(amount)) => {
                Self::apply(state, amount);
                Termination::ok(Value::record([("amount", Value::Int(amount))]))
            }
            ("Withdraw", Some(amount)) => {
                Self::apply(state, -amount);
                Termination::ok(Value::record([("amount", Value::Int(amount))]))
            }
            ("Deposit" | "Withdraw", None) => Termination::error("amount must be an integer"),
            ("Audit", _) => Termination::ok(Value::record([
                (
                    "total",
                    Value::Int(state.field("total").and_then(Value::as_int).unwrap_or(0)),
                ),
                (
                    "movements",
                    Value::Int(
                        state
                            .field("movements")
                            .and_then(Value::as_int)
                            .unwrap_or(0),
                    ),
                ),
            ])),
            (other, _) => Termination::error(format!("unknown operation {other}")),
        }
    }
}

/// A trading desk: price quotes are pure functions of the instrument,
/// bookings fold into commutative volume totals.
///
/// - `Quote {instrument}` → `OK {instrument, price}` — stateless, the
///   price is derived from the instrument id alone;
/// - `Book {instrument, qty}` → `OK {qty}` — adds to the desk's traded
///   volume;
/// - `Audit {}` → `OK {volume, orders}` — reads the folded state;
/// - anything else → `Error`.
#[derive(Debug, Default)]
pub struct TraderDeskBehaviour;

impl TraderDeskBehaviour {
    /// The initial state a desk object should be created with.
    pub fn initial_state() -> Value {
        Value::record([("volume", Value::Int(0)), ("orders", Value::Int(0))])
    }

    /// The quoted price for an instrument: pure, so a quote reply never
    /// leaks execution order.
    pub fn price_of(instrument: i64) -> i64 {
        100 + (instrument.wrapping_mul(0x5DEECE66D).rem_euclid(900))
    }
}

impl ServerBehaviour for TraderDeskBehaviour {
    fn invoke(&mut self, state: &mut Value, invocation: &Invocation) -> Termination {
        match invocation.operation.as_str() {
            "Quote" => {
                let Some(instrument) = invocation.args.field("instrument").and_then(Value::as_int)
                else {
                    return Termination::error("instrument must be an integer");
                };
                Termination::ok(Value::record([
                    ("instrument", Value::Int(instrument)),
                    ("price", Value::Int(Self::price_of(instrument))),
                ]))
            }
            "Book" => {
                let Some(qty) = invocation.args.field("qty").and_then(Value::as_int) else {
                    return Termination::error("qty must be an integer");
                };
                let volume = state.field("volume").and_then(Value::as_int).unwrap_or(0);
                let orders = state.field("orders").and_then(Value::as_int).unwrap_or(0);
                state.set_field("volume", Value::Int(volume + qty));
                state.set_field("orders", Value::Int(orders + 1));
                Termination::ok(Value::record([("qty", Value::Int(qty))]))
            }
            "Audit" => Termination::ok(Value::record([
                (
                    "volume",
                    Value::Int(state.field("volume").and_then(Value::as_int).unwrap_or(0)),
                ),
                (
                    "orders",
                    Value::Int(state.field("orders").and_then(Value::as_int).unwrap_or(0)),
                ),
            ])),
            other => Termination::error(format!("unknown operation {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_branch_totals_commute() {
        let mut b = BankBranchBehaviour;
        let mut forward = BankBranchBehaviour::initial_state();
        let mut reverse = BankBranchBehaviour::initial_state();
        let ops: Vec<(&str, i64)> = vec![("Deposit", 10), ("Withdraw", 4), ("Deposit", 7)];
        for (op, amount) in &ops {
            b.invoke(
                &mut forward,
                &Invocation::new(*op, Value::record([("amount", Value::Int(*amount))])),
            );
        }
        for (op, amount) in ops.iter().rev() {
            b.invoke(
                &mut reverse,
                &Invocation::new(*op, Value::record([("amount", Value::Int(*amount))])),
            );
        }
        assert_eq!(forward, reverse);
        let audit = b.invoke(
            &mut forward,
            &Invocation::new("Audit", Value::record::<&str, _>([])),
        );
        assert_eq!(audit.results.field("total"), Some(&Value::Int(13)));
        assert_eq!(audit.results.field("movements"), Some(&Value::Int(3)));
    }

    #[test]
    fn bank_branch_rejects_bad_requests() {
        let mut b = BankBranchBehaviour;
        let mut state = BankBranchBehaviour::initial_state();
        assert!(!b
            .invoke(
                &mut state,
                &Invocation::new("Deposit", Value::record::<&str, _>([]))
            )
            .is_ok());
        assert!(!b
            .invoke(&mut state, &Invocation::new("Nope", Value::Null))
            .is_ok());
    }

    #[test]
    fn quotes_are_pure_and_bookings_commute() {
        let mut b = TraderDeskBehaviour;
        let mut state = TraderDeskBehaviour::initial_state();
        let quote = |b: &mut TraderDeskBehaviour, state: &mut Value, id: i64| {
            b.invoke(
                state,
                &Invocation::new("Quote", Value::record([("instrument", Value::Int(id))])),
            )
        };
        let q1 = quote(&mut b, &mut state, 17);
        b.invoke(
            &mut state,
            &Invocation::new("Book", Value::record([("qty", Value::Int(5))])),
        );
        let q2 = quote(&mut b, &mut state, 17);
        assert_eq!(q1.results, q2.results, "quotes never leak state order");
        let audit = b.invoke(
            &mut state,
            &Invocation::new("Audit", Value::record::<&str, _>([])),
        );
        assert_eq!(audit.results.field("volume"), Some(&Value::Int(5)));
        assert_eq!(audit.results.field("orders"), Some(&Value::Int(1)));
    }
}
