//! The engineering engine: drives nodes, channels and management
//! operations over the simulator.

use std::collections::BTreeMap;
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmodp_computational::signature::{Invocation, Termination};
use rmodp_core::codec::{syntax_for, SyntaxId};
use rmodp_core::id::{CapsuleId, ChannelId, ClusterId, IdGen, InterfaceId, NodeId, ObjectId};
use rmodp_core::value::Value;
use rmodp_kernel::payload::Payload;
use rmodp_kernel::World;
use rmodp_netsim::sim::{Addr, NodeIdx, Sim};
use rmodp_netsim::time::{SimDuration, SimTime};
use rmodp_observe::{bus, event, EventKind, Layer};

use crate::behaviour::BehaviourRegistry;
use crate::channel::{
    BreakerConfig, BreakerPhase, ChannelConfig, ChannelError, RetryPolicy, Stack,
};
use crate::envelope::{Envelope, ReplyStatus};
use crate::nucleus::{
    AdmissionConfig, DriverProcess, NucleusProcess, NucleusStats, DRIVER_PORT, NUCLEUS_PORT,
};
use crate::structure::{
    BeoRecord, ClusterCheckpoint, InterfaceRef, Location, ObjectCheckpoint, StructurePolicy,
};

/// An engineering-level error.
#[derive(Debug, Clone, PartialEq)]
pub enum EngError {
    /// No such node.
    UnknownNode { node: NodeId },
    /// No such capsule on the node.
    UnknownCapsule { capsule: CapsuleId },
    /// No such cluster in the capsule.
    UnknownCluster { cluster: ClusterId },
    /// No such interface is active anywhere.
    UnknownInterface { interface: InterfaceId },
    /// No such object resides on the node.
    UnknownObject { object: ObjectId },
    /// No such channel.
    UnknownChannel { channel: ChannelId },
    /// The behaviour name is not registered.
    UnknownBehaviour { behaviour: String },
    /// A structure policy constraint was violated.
    Policy { detail: String },
}

impl fmt::Display for EngError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngError::UnknownNode { node } => write!(f, "unknown node {node}"),
            EngError::UnknownCapsule { capsule } => write!(f, "unknown capsule {capsule}"),
            EngError::UnknownCluster { cluster } => write!(f, "unknown cluster {cluster}"),
            EngError::UnknownInterface { interface } => {
                write!(f, "unknown interface {interface}")
            }
            EngError::UnknownObject { object } => write!(f, "unknown object {object}"),
            EngError::UnknownChannel { channel } => write!(f, "unknown channel {channel}"),
            EngError::UnknownBehaviour { behaviour } => {
                write!(f, "behaviour {behaviour:?} is not registered")
            }
            EngError::Policy { detail } => write!(f, "structure policy violation: {detail}"),
        }
    }
}

impl std::error::Error for EngError {}

/// A failure of a remote call.
#[derive(Debug, Clone, PartialEq)]
pub enum CallError {
    /// An engineering-level problem (unknown channel, node…).
    Eng(EngError),
    /// A client-side channel component failed.
    Channel(ChannelError),
    /// No reply within the retry policy (all attempts exhausted).
    Timeout {
        /// How many attempts were made.
        attempts: u32,
    },
    /// The destination node reported the interface is not there (stale
    /// reference — the trigger for relocation transparency, §9.2).
    NotHere {
        /// The interface that was not found.
        interface: InterfaceId,
    },
    /// The channel's circuit breaker is open: the call failed fast
    /// without touching the network (graceful degradation under a
    /// persistent fault).
    CircuitOpen {
        /// When the breaker will next allow a probe.
        until: SimTime,
    },
    /// The server's channel rejected the message (e.g. replay).
    Rejected {
        /// Detail from the server, if any.
        detail: String,
    },
    /// The reply payload could not be decoded as a termination.
    BadReply {
        /// What was wrong with it.
        detail: String,
    },
}

impl fmt::Display for CallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallError::Eng(e) => write!(f, "{e}"),
            CallError::Channel(e) => write!(f, "{e}"),
            CallError::Timeout { attempts } => {
                write!(f, "no reply after {attempts} attempt(s)")
            }
            CallError::NotHere { interface } => {
                write!(f, "interface {interface} is not at the believed location")
            }
            CallError::CircuitOpen { until } => {
                write!(
                    f,
                    "circuit breaker open (next probe at {}us)",
                    until.as_micros()
                )
            }
            CallError::Rejected { detail } => write!(f, "request rejected: {detail}"),
            CallError::BadReply { detail } => write!(f, "bad reply: {detail}"),
        }
    }
}

impl std::error::Error for CallError {}

impl From<EngError> for CallError {
    fn from(e: EngError) -> Self {
        CallError::Eng(e)
    }
}

impl From<ChannelError> for CallError {
    fn from(e: ChannelError) -> Self {
        CallError::Channel(e)
    }
}

#[derive(Debug, Clone, Copy)]
struct NodeHandle {
    sim_node: NodeIdx,
    native: SyntaxId,
}

/// Per-channel circuit-breaker state (see [`BreakerConfig`] for the
/// state machine's rules).
#[derive(Debug, Clone, Copy)]
struct BreakerState {
    config: BreakerConfig,
    phase: BreakerPhase,
    consecutive_failures: u32,
    probe_successes: u32,
    opened_at: SimTime,
}

impl BreakerState {
    fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            phase: BreakerPhase::Closed,
            consecutive_failures: 0,
            probe_successes: 0,
            opened_at: SimTime::ZERO,
        }
    }
}

struct ClientChannel {
    client: NodeId,
    target: InterfaceId,
    stack: Stack,
    config: ChannelConfig,
    retry: RetryPolicy,
    believed: InterfaceRef,
    breaker: Option<BreakerState>,
}

/// The engineering runtime: owns the simulator, the nodes (each with a
/// nucleus), the authoritative interface-location registry, and the
/// client halves of channels.
pub struct Engine {
    sim: Sim,
    registry: BehaviourRegistry,
    policy: StructurePolicy,
    nodes: BTreeMap<NodeId, NodeHandle>,
    /// Authoritative interface locations (what the relocator republishes).
    locations: BTreeMap<InterfaceId, InterfaceRef>,
    /// Epochs survive deactivation so reactivation can bump them.
    epochs: BTreeMap<InterfaceId, u64>,
    channels: BTreeMap<ChannelId, ClientChannel>,
    node_gen: IdGen<NodeId>,
    capsule_gen: IdGen<CapsuleId>,
    cluster_gen: IdGen<ClusterId>,
    object_gen: IdGen<ObjectId>,
    interface_gen: IdGen<InterfaceId>,
    channel_gen: IdGen<ChannelId>,
    next_request: u64,
    /// Call spans of in-flight [`Engine::call_send`] requests, so
    /// [`Engine::take_reply`] can close them with a `CallEnd` event.
    pending_calls: BTreeMap<u64, (u64, String)>,
    /// Deterministic jitter for retransmission backoff; a separate
    /// stream from the simulator's RNG so retry pacing never perturbs
    /// loss/latency draws.
    jitter_rng: StdRng,
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("nodes", &self.nodes.len())
            .field("interfaces", &self.locations.len())
            .field("channels", &self.channels.len())
            .finish()
    }
}

impl Engine {
    /// Creates an engine with an unconstrained structure policy.
    pub fn new(seed: u64) -> Self {
        Self::with_policy(seed, StructurePolicy::default())
    }

    /// Creates an engine with a structure policy (§6.2 constraints).
    pub fn with_policy(seed: u64, policy: StructurePolicy) -> Self {
        Self {
            sim: Sim::new(seed),
            registry: BehaviourRegistry::new(),
            policy,
            nodes: BTreeMap::new(),
            locations: BTreeMap::new(),
            epochs: BTreeMap::new(),
            channels: BTreeMap::new(),
            node_gen: IdGen::new(),
            capsule_gen: IdGen::new(),
            cluster_gen: IdGen::new(),
            object_gen: IdGen::new(),
            interface_gen: IdGen::new(),
            channel_gen: IdGen::new(),
            next_request: 1,
            pending_calls: BTreeMap::new(),
            jitter_rng: StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
        }
    }

    /// The underlying simulator (topology, metrics, clock).
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Mutable access to the simulator (fault injection, clock control).
    pub fn sim_mut(&mut self) -> &mut Sim {
        &mut self.sim
    }

    /// The behaviour registry (register behaviours before creating
    /// objects).
    pub fn behaviours_mut(&mut self) -> &mut BehaviourRegistry {
        &mut self.registry
    }

    /// The structure policy in force.
    pub fn policy(&self) -> StructurePolicy {
        self.policy
    }

    /// All node identities.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.nodes.keys().copied().collect()
    }

    /// The netsim index of a node (for topology manipulation).
    ///
    /// # Errors
    ///
    /// Unknown node.
    pub fn sim_node(&self, node: NodeId) -> Result<NodeIdx, EngError> {
        Ok(self.handle(node)?.sim_node)
    }

    /// A node's native transfer syntax.
    ///
    /// # Errors
    ///
    /// Unknown node.
    pub fn native_syntax(&self, node: NodeId) -> Result<SyntaxId, EngError> {
        Ok(self.handle(node)?.native)
    }

    fn handle(&self, node: NodeId) -> Result<NodeHandle, EngError> {
        self.nodes
            .get(&node)
            .copied()
            .ok_or(EngError::UnknownNode { node })
    }

    fn nucleus_addr(&self, node: NodeId) -> Result<Addr, EngError> {
        Ok(Addr::new(self.handle(node)?.sim_node, NUCLEUS_PORT))
    }

    fn driver_addr(&self, node: NodeId) -> Result<Addr, EngError> {
        Ok(Addr::new(self.handle(node)?.sim_node, DRIVER_PORT))
    }

    fn nucleus_mut(&mut self, node: NodeId) -> Result<&mut NucleusProcess, EngError> {
        let addr = self.nucleus_addr(node)?;
        self.sim
            .inspect_mut::<NucleusProcess>(addr)
            .ok_or(EngError::UnknownNode { node })
    }

    fn nucleus(&self, node: NodeId) -> Result<&NucleusProcess, EngError> {
        let addr = self.nucleus_addr(node)?;
        self.sim
            .inspect::<NucleusProcess>(addr)
            .ok_or(EngError::UnknownNode { node })
    }

    /// Creates a node: a simulator node with a nucleus and a driver
    /// process ("a node has a nucleus object", §6.2).
    pub fn add_node(&mut self, native: SyntaxId) -> NodeId {
        let node = self.node_gen.fresh();
        let sim_node = self.sim.add_node();
        self.sim.attach(
            Addr::new(sim_node, NUCLEUS_PORT),
            NucleusProcess::new(node, native),
        );
        self.sim
            .attach(Addr::new(sim_node, DRIVER_PORT), DriverProcess::default());
        self.nodes.insert(node, NodeHandle { sim_node, native });
        node
    }

    /// Creates a capsule on a node.
    ///
    /// # Errors
    ///
    /// Unknown node, or the capsules-per-node policy limit.
    pub fn add_capsule(&mut self, node: NodeId) -> Result<CapsuleId, EngError> {
        let policy = self.policy;
        let nucleus = self.nucleus_mut(node)?;
        if let Some(max) = policy.max_capsules_per_node {
            if nucleus.structure.capsules.len() >= max {
                return Err(EngError::Policy {
                    detail: format!("{node} already has {max} capsule(s)"),
                });
            }
        }
        let capsule = self.capsule_gen.fresh();
        self.nucleus_mut(node)?.add_capsule(capsule);
        Ok(capsule)
    }

    /// Creates a cluster in a capsule.
    ///
    /// # Errors
    ///
    /// Unknown node/capsule, or the clusters-per-capsule policy limit.
    pub fn add_cluster(&mut self, node: NodeId, capsule: CapsuleId) -> Result<ClusterId, EngError> {
        let policy = self.policy;
        let nucleus = self.nucleus_mut(node)?;
        let Some(c) = nucleus.structure.capsules.get(&capsule) else {
            return Err(EngError::UnknownCapsule { capsule });
        };
        if let Some(max) = policy.max_clusters_per_capsule {
            if c.clusters.len() >= max {
                return Err(EngError::Policy {
                    detail: format!("{capsule} already has {max} cluster(s)"),
                });
            }
        }
        let cluster = self.cluster_gen.fresh();
        self.nucleus_mut(node)?.add_cluster(capsule, cluster);
        Ok(cluster)
    }

    /// Creates a basic engineering object in a cluster, with
    /// `interface_count` fresh interfaces, and registers their locations.
    ///
    /// # Errors
    ///
    /// Unknown node/capsule/cluster/behaviour, or the objects-per-cluster
    /// policy limit.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's creation parameters
    pub fn create_object(
        &mut self,
        node: NodeId,
        capsule: CapsuleId,
        cluster: ClusterId,
        name: impl Into<String>,
        behaviour: &str,
        state: Value,
        interface_count: usize,
    ) -> Result<(ObjectId, Vec<InterfaceRef>), EngError> {
        if !self.registry.contains(behaviour) {
            return Err(EngError::UnknownBehaviour {
                behaviour: behaviour.to_owned(),
            });
        }
        let policy = self.policy;
        {
            let nucleus = self.nucleus(node)?;
            let cl = nucleus
                .structure
                .capsules
                .get(&capsule)
                .ok_or(EngError::UnknownCapsule { capsule })?
                .clusters
                .get(&cluster)
                .ok_or(EngError::UnknownCluster { cluster })?;
            if let Some(max) = policy.max_objects_per_cluster {
                if cl.objects.len() >= max {
                    return Err(EngError::Policy {
                        detail: format!("{cluster} already has {max} object(s)"),
                    });
                }
            }
        }
        let object = self.object_gen.fresh();
        let interfaces: Vec<InterfaceId> = (0..interface_count)
            .map(|_| self.interface_gen.fresh())
            .collect();
        let record = BeoRecord {
            object,
            name: name.into(),
            behaviour: behaviour.to_owned(),
            interfaces: interfaces.clone(),
        };
        let instance = self
            .registry
            .create(behaviour)
            .expect("checked contains above");
        let installed = self
            .nucleus_mut(node)?
            .install_object(capsule, cluster, record, instance, state);
        debug_assert!(installed, "cluster existence checked above");
        let location = Location {
            node,
            capsule,
            cluster,
        };
        let mut refs = Vec::with_capacity(interfaces.len());
        for ifc in interfaces {
            let epoch = self.bump_epoch(ifc);
            let r = InterfaceRef {
                interface: ifc,
                location,
                epoch,
            };
            self.locations.insert(ifc, r);
            refs.push(r);
        }
        Ok((object, refs))
    }

    fn bump_epoch(&mut self, interface: InterfaceId) -> u64 {
        let e = self.epochs.entry(interface).or_insert(0);
        *e += 1;
        *e
    }

    /// The authoritative location of an interface (what feeds the
    /// relocator function). `None` while the owning cluster is
    /// deactivated.
    pub fn lookup(&self, interface: InterfaceId) -> Option<InterfaceRef> {
        self.locations.get(&interface).copied()
    }

    /// Opens a channel from a client node to a target interface,
    /// installing the server half at the interface's current node.
    ///
    /// # Errors
    ///
    /// Unknown node or interface.
    pub fn open_channel(
        &mut self,
        client: NodeId,
        target: InterfaceId,
        config: ChannelConfig,
    ) -> Result<ChannelId, EngError> {
        self.handle(client)?;
        let believed = self
            .lookup(target)
            .ok_or(EngError::UnknownInterface { interface: target })?;
        let channel = self.channel_gen.fresh();
        let client_native = self.handle(client)?.native;
        let server_native = self.handle(believed.location.node)?.native;
        let client_stack = config.build_stack(client_native);
        let server_stack = config.build_stack(server_native);
        self.nucleus_mut(believed.location.node)?
            .server_channels
            .insert(channel, server_stack);
        // `retry: None` means a single attempt (at-most-once), NOT the
        // hardened `RetryPolicy::default()` — retransmission is opt-in
        // per channel.
        let retry = config.retry.unwrap_or_else(RetryPolicy::one_shot);
        let breaker = config.breaker.map(BreakerState::new);
        self.channels.insert(
            channel,
            ClientChannel {
                client,
                target,
                stack: client_stack,
                config,
                retry,
                believed,
                breaker,
            },
        );
        Ok(channel)
    }

    /// The current phase of a channel's circuit breaker, if it has one.
    pub fn breaker_phase(&self, channel: ChannelId) -> Option<BreakerPhase> {
        self.channels
            .get(&channel)
            .and_then(|c| c.breaker.as_ref())
            .map(|b| b.phase)
    }

    /// What the channel currently believes about its target's location.
    pub fn channel_believes(&self, channel: ChannelId) -> Option<InterfaceRef> {
        self.channels.get(&channel).map(|c| c.believed)
    }

    /// Points a channel at a (new) interface location and installs the
    /// server half there — the mechanics a relocation-transparent binder
    /// performs after requerying the relocator (§9.2).
    ///
    /// # Errors
    ///
    /// Unknown channel or node.
    pub fn redirect_channel(
        &mut self,
        channel: ChannelId,
        to: InterfaceRef,
    ) -> Result<(), EngError> {
        let (config, server_node) = {
            let cc = self
                .channels
                .get(&channel)
                .ok_or(EngError::UnknownChannel { channel })?;
            (cc.config.clone(), to.location.node)
        };
        let server_native = self.handle(server_node)?.native;
        let server_stack = config.build_stack(server_native);
        self.nucleus_mut(server_node)?
            .server_channels
            .insert(channel, server_stack);
        let cc = self
            .channels
            .get_mut(&channel)
            .ok_or(EngError::UnknownChannel { channel })?;
        cc.believed = to;
        event(Layer::Engineering, EventKind::Relocate)
            .in_context()
            .channel(channel.raw())
            .capsule(to.location.capsule.raw())
            .detail(format!(
                "channel rebound to {} epoch={}",
                to.location.node, to.epoch
            ))
            .emit();
        bus::counter_add("engineering.relocations", 1);
        Ok(())
    }

    fn encode_invocation(&self, native: SyntaxId, op: &str, args: &Value) -> Vec<u8> {
        let v = Value::record([("op", Value::text(op.to_owned())), ("args", args.clone())]);
        syntax_for(native).encode(&v)
    }

    /// Invokes an interrogation through a channel and runs the simulator
    /// until the reply arrives (or the retry policy is exhausted).
    ///
    /// # Delivery semantics
    ///
    /// With `retry: None` (or [`RetryPolicy::one_shot`]) the request is
    /// transmitted once: **at-most-once** delivery — a timeout leaves it
    /// unknown whether the server executed the operation. With
    /// `retries > 0` the same request id is retransmitted with
    /// exponential backoff and deterministic jitter until a reply
    /// arrives or the policy's total `deadline` passes: at-least-once
    /// *transmission*. The server nucleus keeps a request-id dedup
    /// cache, so a retransmitted request is **executed at most once**
    /// and duplicate arrivals are answered from the cache — effectively
    /// exactly-once while the server's cache holds the entry.
    /// Retransmissions re-enter the channel stack, so sequence binders
    /// stamp them as fresh messages rather than replays.
    ///
    /// If the channel has a [`BreakerConfig`], consecutive timeouts open
    /// the breaker and further calls fail fast with
    /// [`CallError::CircuitOpen`] (no queueing, no network traffic)
    /// until a cooldown elapses and a probe call closes it again.
    ///
    /// # Errors
    ///
    /// Any [`CallError`]; `NotHere` signals a stale location belief.
    pub fn call(
        &mut self,
        channel: ChannelId,
        op: &str,
        args: &Value,
    ) -> Result<Termination, CallError> {
        self.call_inner(channel, op, args, None)
    }

    /// Encodes an invocation once in a client node's native syntax. Pair
    /// with [`Engine::call_prepared`] to fan one invocation out across
    /// many channels (e.g. a replica group) without re-encoding per call.
    ///
    /// # Errors
    ///
    /// Unknown node.
    pub fn prepare_invocation(
        &self,
        client: NodeId,
        op: &str,
        args: &Value,
    ) -> Result<Payload, EngError> {
        let native = self.handle(client)?.native;
        Ok(Payload::new(self.encode_invocation(native, op, args)))
    }

    /// Like [`Engine::call`], but with a payload already encoded by
    /// [`Engine::prepare_invocation`]: the shared bytes are reused
    /// verbatim, so an N-way fan-out marshals once, not N times. The
    /// caller must have prepared the payload on this channel's client
    /// node (the encodings would otherwise disagree).
    ///
    /// # Errors
    ///
    /// Any [`CallError`], as for [`Engine::call`].
    pub fn call_prepared(
        &mut self,
        channel: ChannelId,
        op: &str,
        prepared: &Payload,
    ) -> Result<Termination, CallError> {
        self.call_inner(channel, op, &Value::Null, Some(prepared))
    }

    fn call_inner(
        &mut self,
        channel: ChannelId,
        op: &str,
        args: &Value,
        prepared: Option<&Payload>,
    ) -> Result<Termination, CallError> {
        let span = bus::new_span();
        event(Layer::Engineering, EventKind::CallStart)
            .span(span)
            .parent_from_context()
            .channel(channel.raw())
            .detail(format!("op={op}"))
            .emit();
        let started_us = self.sim.now().as_micros();
        bus::push_context(span);
        let result = match self.breaker_admit(channel) {
            Err(e) => Err(e),
            Ok(()) => {
                let r = self.call_attempts(channel, op, args, prepared, span);
                self.breaker_note(channel, matches!(&r, Err(CallError::Timeout { .. })));
                r
            }
        };
        bus::pop_context();
        bus::counter_add("engineering.calls", 1);
        bus::observe(
            "engineering.call_us",
            self.sim.now().as_micros().saturating_sub(started_us),
        );
        let outcome = match &result {
            Ok(t) => format!("op={op} -> {}", t.name),
            Err(e) => {
                bus::counter_add("engineering.call_errors", 1);
                format!("op={op} -> error: {e}")
            }
        };
        event(Layer::Engineering, EventKind::CallEnd)
            .span(span)
            .channel(channel.raw())
            .detail(outcome)
            .emit();
        result
    }

    /// Gate a call on the channel's circuit breaker: fail fast while
    /// open, move to half-open once the cooldown has elapsed.
    fn breaker_admit(&mut self, channel: ChannelId) -> Result<(), CallError> {
        let now = self.sim.now();
        let Some(cc) = self.channels.get_mut(&channel) else {
            return Ok(()); // unknown channel surfaces in call_attempts
        };
        let Some(b) = cc.breaker.as_mut() else {
            return Ok(());
        };
        if b.phase == BreakerPhase::Open {
            let until = b.opened_at + b.config.cooldown;
            if now < until {
                bus::counter_add("engineering.breaker.fast_fails", 1);
                return Err(CallError::CircuitOpen { until });
            }
            b.phase = BreakerPhase::HalfOpen;
            b.probe_successes = 0;
            Self::emit_breaker_transition(
                channel,
                BreakerPhase::Open,
                BreakerPhase::HalfOpen,
                "cooldown elapsed; probing",
            );
        }
        Ok(())
    }

    /// Feed a call outcome into the breaker's state machine. Only
    /// timeouts count as failures: a reply of any status proves the
    /// server is alive.
    fn breaker_note(&mut self, channel: ChannelId, timed_out: bool) {
        let now = self.sim.now();
        let Some(b) = self
            .channels
            .get_mut(&channel)
            .and_then(|cc| cc.breaker.as_mut())
        else {
            return;
        };
        if timed_out {
            b.consecutive_failures += 1;
            b.probe_successes = 0;
            let trip = match b.phase {
                BreakerPhase::HalfOpen => true,
                BreakerPhase::Closed => b.consecutive_failures >= b.config.failure_threshold,
                BreakerPhase::Open => false,
            };
            if trip {
                let from = b.phase;
                b.phase = BreakerPhase::Open;
                b.opened_at = now;
                let failures = b.consecutive_failures;
                Self::emit_breaker_transition(
                    channel,
                    from,
                    BreakerPhase::Open,
                    &format!("{failures} consecutive timeout(s)"),
                );
            }
        } else {
            match b.phase {
                BreakerPhase::HalfOpen => {
                    b.probe_successes += 1;
                    if b.probe_successes >= b.config.success_to_close {
                        b.phase = BreakerPhase::Closed;
                        b.consecutive_failures = 0;
                        Self::emit_breaker_transition(
                            channel,
                            BreakerPhase::HalfOpen,
                            BreakerPhase::Closed,
                            "probe reply received",
                        );
                    }
                }
                _ => b.consecutive_failures = 0,
            }
        }
    }

    fn emit_breaker_transition(
        channel: ChannelId,
        from: BreakerPhase,
        to: BreakerPhase,
        why: &str,
    ) {
        event(Layer::Engineering, EventKind::BreakerTransition)
            .in_context()
            .channel(channel.raw())
            .detail(format!("{} -> {}: {why}", from.name(), to.name()))
            .emit();
        bus::counter_add("engineering.breaker.transitions", 1);
    }

    fn call_attempts(
        &mut self,
        channel: ChannelId,
        op: &str,
        args: &Value,
        prepared: Option<&Payload>,
        span: u64,
    ) -> Result<Termination, CallError> {
        let (client, target, believed_node, retry) = {
            let cc = self
                .channels
                .get(&channel)
                .ok_or(EngError::UnknownChannel { channel })?;
            (cc.client, cc.target, cc.believed.location.node, cc.retry)
        };
        let client_native = self.handle(client)?.native;
        let driver = self.driver_addr(client)?;
        let dst = self.nucleus_addr(believed_node)?;
        let payload = match prepared {
            Some(p) => p.clone(),
            None => Payload::new(self.encode_invocation(client_native, op, args)),
        };
        let attempts = retry.retries + 1;
        let overall = self.sim.now() + retry.deadline;
        // One request id for the whole call: retransmissions carry the
        // same id so the server's dedup cache can suppress duplicates.
        let request_id = self.next_request;
        self.next_request += 1;
        let mut made = 0u32;

        // Marshal once per call, not once per attempt: the envelope runs
        // the outgoing stack here and the serialised frame is reused for
        // every retransmission. Only components that must restamp (a
        // sequence binder issuing a fresh number) touch it again, via the
        // event-free `Stack::restamp`.
        let mut env = Envelope::request(channel, request_id, target, client_native, payload);
        {
            let cc = self.channels.get_mut(&channel).expect("checked above");
            cc.stack.outgoing(&mut env)?;
        }
        let mut frame = Payload::new(env.to_bytes());

        for attempt in 0..attempts {
            if attempt > 0 {
                // Exponential backoff with deterministic jitter. A late
                // reply landing during the pause is consumed instead of
                // retransmitting.
                let mut pause = retry.backoff_delay(attempt);
                if retry.jitter > SimDuration::ZERO {
                    let extra = self.jitter_rng.gen_range(0..=retry.jitter.as_micros());
                    pause = pause + SimDuration::from_micros(extra);
                }
                let resume = (self.sim.now() + pause).min(overall);
                if let Some(reply) = self.await_reply(driver, request_id, resume) {
                    return self.accept_reply(channel, target, reply);
                }
                if self.sim.now() >= overall {
                    break;
                }
                event(Layer::Engineering, EventKind::Retry)
                    .span(span)
                    .channel(channel.raw())
                    .detail(format!("op={op} attempt={}", attempt + 1))
                    .emit();
                bus::counter_add("engineering.retries", 1);
                let cc = self.channels.get_mut(&channel).expect("checked above");
                if cc.stack.restamp(&mut env) {
                    frame = Payload::new(env.to_bytes());
                }
            }
            made += 1;
            self.sim.send_from(driver, dst, frame.clone());
            let deadline = (self.sim.now() + retry.timeout).min(overall);
            if let Some(reply) = self.await_reply(driver, request_id, deadline) {
                return self.accept_reply(channel, target, reply);
            }
            if self.sim.now() >= overall {
                break;
            }
        }
        Err(CallError::Timeout { attempts: made })
    }

    fn accept_reply(
        &mut self,
        channel: ChannelId,
        target: InterfaceId,
        mut reply: Envelope,
    ) -> Result<Termination, CallError> {
        {
            let cc = self.channels.get_mut(&channel).expect("checked above");
            cc.stack.incoming(&mut reply)?;
        }
        self.interpret_reply(target, reply)
    }

    fn await_reply(
        &mut self,
        driver: Addr,
        request_id: u64,
        deadline: SimTime,
    ) -> Option<Envelope> {
        loop {
            if let Some(d) = self.sim.inspect_mut::<DriverProcess>(driver) {
                if let Some((reply, _arrived)) = d.mailbox.remove(&request_id) {
                    return Some(reply);
                }
            }
            if self.sim.now() > deadline {
                return None;
            }
            if !self.sim.step() {
                // Nothing left to process: idle the clock forward so the
                // timeout consumes virtual time (breaker cooldowns and
                // recovery metrics depend on timeouts not being free).
                self.sim.run_until(deadline);
                return None;
            }
        }
    }

    fn interpret_reply(
        &self,
        target: InterfaceId,
        reply: Envelope,
    ) -> Result<Termination, CallError> {
        match reply.status {
            ReplyStatus::NotHere => Err(CallError::NotHere { interface: target }),
            ReplyStatus::Rejected => {
                let detail = syntax_for(reply.syntax)
                    .decode(&reply.payload)
                    .ok()
                    .and_then(|v| {
                        v.path(&["results", "reason"])
                            .and_then(|r| r.as_text())
                            .map(str::to_owned)
                    })
                    .unwrap_or_else(|| "rejected".to_owned());
                Err(CallError::Rejected { detail })
            }
            ReplyStatus::Ok => {
                let value = syntax_for(reply.syntax)
                    .decode(&reply.payload)
                    .map_err(|e| CallError::BadReply {
                        detail: e.to_string(),
                    })?;
                let name = value
                    .field("name")
                    .and_then(|v| v.as_text())
                    .ok_or_else(|| CallError::BadReply {
                        detail: "termination has no name".into(),
                    })?
                    .to_owned();
                let results = value.field("results").cloned().unwrap_or(Value::Null);
                Ok(Termination::new(name, results))
            }
        }
    }

    /// Sends an announcement (no reply) through a channel. The message is
    /// queued; run the simulator to deliver it.
    ///
    /// # Errors
    ///
    /// Unknown channel/node or a client-side channel failure.
    pub fn announce(
        &mut self,
        channel: ChannelId,
        op: &str,
        args: &Value,
    ) -> Result<(), CallError> {
        let (client, target, believed_node) = {
            let cc = self
                .channels
                .get(&channel)
                .ok_or(EngError::UnknownChannel { channel })?;
            (cc.client, cc.target, cc.believed.location.node)
        };
        let client_native = self.handle(client)?.native;
        let driver = self.driver_addr(client)?;
        let dst = self.nucleus_addr(believed_node)?;
        let payload = self.encode_invocation(client_native, op, args);
        let mut env = Envelope::announce(channel, target, client_native, payload);
        {
            let cc = self.channels.get_mut(&channel).expect("checked above");
            cc.stack.outgoing(&mut env)?;
        }
        self.sim.send_from(driver, dst, env.to_bytes());
        Ok(())
    }

    /// Sends one stream-flow item through a channel (queued; run the
    /// simulator to deliver).
    ///
    /// # Errors
    ///
    /// Unknown channel/node or a client-side channel failure.
    pub fn send_flow(
        &mut self,
        channel: ChannelId,
        flow: &str,
        item: &Value,
    ) -> Result<(), CallError> {
        let (client, target, believed_node) = {
            let cc = self
                .channels
                .get(&channel)
                .ok_or(EngError::UnknownChannel { channel })?;
            (cc.client, cc.target, cc.believed.location.node)
        };
        let client_native = self.handle(client)?.native;
        let driver = self.driver_addr(client)?;
        let dst = self.nucleus_addr(believed_node)?;
        let payload = syntax_for(client_native).encode(item);
        let mut env = Envelope::flow_item(channel, target, flow, client_native, payload);
        {
            let cc = self.channels.get_mut(&channel).expect("checked above");
            cc.stack.outgoing(&mut env)?;
        }
        self.sim.send_from(driver, dst, env.to_bytes());
        Ok(())
    }

    /// Runs the simulator until no events remain.
    pub fn run_until_idle(&mut self) -> u64 {
        self.sim.run_until_idle()
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Checkpoints a cluster without disturbing it (§8.1).
    ///
    /// # Errors
    ///
    /// Unknown node/capsule/cluster.
    pub fn checkpoint_cluster(
        &mut self,
        node: NodeId,
        capsule: CapsuleId,
        cluster: ClusterId,
    ) -> Result<ClusterCheckpoint, EngError> {
        let epoch = self.max_epoch_in(node, capsule, cluster)?;
        let checkpoint = self
            .nucleus(node)?
            .checkpoint_cluster(capsule, cluster, epoch)
            .ok_or(EngError::UnknownCluster { cluster })?;
        event(Layer::Engineering, EventKind::Checkpoint)
            .in_context()
            .capsule(capsule.raw())
            .detail(format!(
                "cluster={} objects={} epoch={epoch}",
                cluster,
                checkpoint.objects.len()
            ))
            .emit();
        bus::counter_add("engineering.checkpoints", 1);
        Ok(checkpoint)
    }

    fn max_epoch_in(
        &self,
        node: NodeId,
        capsule: CapsuleId,
        cluster: ClusterId,
    ) -> Result<u64, EngError> {
        let nucleus = self.nucleus(node)?;
        let cl = nucleus
            .structure
            .capsules
            .get(&capsule)
            .ok_or(EngError::UnknownCapsule { capsule })?
            .clusters
            .get(&cluster)
            .ok_or(EngError::UnknownCluster { cluster })?;
        Ok(cl
            .objects
            .values()
            .flat_map(|r| r.interfaces.iter())
            .filter_map(|i| self.epochs.get(i))
            .copied()
            .max()
            .unwrap_or(0))
    }

    /// Deactivates a cluster: removes it from its node and returns the
    /// checkpoint needed to reactivate it (§8.1). The interfaces become
    /// unresolvable until reactivation.
    ///
    /// # Errors
    ///
    /// Unknown node/capsule/cluster.
    pub fn deactivate_cluster(
        &mut self,
        node: NodeId,
        capsule: CapsuleId,
        cluster: ClusterId,
    ) -> Result<ClusterCheckpoint, EngError> {
        let epoch = self.max_epoch_in(node, capsule, cluster)?;
        let checkpoint = self
            .nucleus_mut(node)?
            .remove_cluster(capsule, cluster, epoch)
            .ok_or(EngError::UnknownCluster { cluster })?;
        for oc in &checkpoint.objects {
            for ifc in &oc.record.interfaces {
                self.locations.remove(ifc);
            }
        }
        event(Layer::Engineering, EventKind::Deactivate)
            .in_context()
            .capsule(capsule.raw())
            .detail(format!(
                "cluster={cluster} objects={}",
                checkpoint.objects.len()
            ))
            .emit();
        Ok(checkpoint)
    }

    /// Reactivates a cluster from a checkpoint into a capsule (possibly on
    /// a different node), preserving object and interface identities and
    /// bumping interface epochs.
    ///
    /// # Errors
    ///
    /// Unknown node/capsule or unregistered behaviour names in the
    /// checkpoint.
    pub fn reactivate_cluster(
        &mut self,
        node: NodeId,
        capsule: CapsuleId,
        checkpoint: &ClusterCheckpoint,
    ) -> Result<ClusterId, EngError> {
        // Validate everything before mutating.
        for oc in &checkpoint.objects {
            if !self.registry.contains(&oc.record.behaviour) {
                return Err(EngError::UnknownBehaviour {
                    behaviour: oc.record.behaviour.clone(),
                });
            }
        }
        {
            let nucleus = self.nucleus(node)?;
            if !nucleus.structure.capsules.contains_key(&capsule) {
                return Err(EngError::UnknownCapsule { capsule });
            }
        }
        let cluster = self.cluster_gen.fresh();
        self.nucleus_mut(node)?.add_cluster(capsule, cluster);
        let location = Location {
            node,
            capsule,
            cluster,
        };
        for oc in &checkpoint.objects {
            let behaviour = self
                .registry
                .create(&oc.record.behaviour)
                .expect("validated above");
            self.nucleus_mut(node)?.install_object(
                capsule,
                cluster,
                oc.record.clone(),
                behaviour,
                oc.state.clone(),
            );
            for ifc in &oc.record.interfaces {
                let epoch = self.bump_epoch(*ifc);
                self.locations.insert(
                    *ifc,
                    InterfaceRef {
                        interface: *ifc,
                        location,
                        epoch,
                    },
                );
            }
        }
        event(Layer::Engineering, EventKind::Reactivate)
            .in_context()
            .capsule(capsule.raw())
            .detail(format!(
                "cluster={cluster} objects={} at {node}",
                checkpoint.objects.len()
            ))
            .emit();
        Ok(cluster)
    }

    /// Migrates a cluster to another node/capsule: checkpoint, destroy,
    /// reactivate (§8.1's migration function). Interface identities are
    /// preserved; epochs are bumped so stale references fail over.
    ///
    /// # Errors
    ///
    /// As the constituent operations; on a validation failure at the
    /// target, the source is restored.
    pub fn migrate_cluster(
        &mut self,
        from_node: NodeId,
        from_capsule: CapsuleId,
        cluster: ClusterId,
        to_node: NodeId,
        to_capsule: CapsuleId,
    ) -> Result<ClusterId, EngError> {
        let span = bus::new_span();
        event(Layer::Engineering, EventKind::MigrateStart)
            .span(span)
            .parent_from_context()
            .capsule(from_capsule.raw())
            .detail(format!("cluster={cluster} {from_node} -> {to_node}"))
            .emit();
        bus::push_context(span);
        let result = (|| {
            let checkpoint = self.deactivate_cluster(from_node, from_capsule, cluster)?;
            match self.reactivate_cluster(to_node, to_capsule, &checkpoint) {
                Ok(new_cluster) => Ok(new_cluster),
                Err(e) => {
                    // Roll back: reactivate at the source.
                    let restored = self.reactivate_cluster(from_node, from_capsule, &checkpoint);
                    debug_assert!(restored.is_ok(), "rollback must succeed");
                    Err(e)
                }
            }
        })();
        bus::pop_context();
        bus::counter_add("engineering.migrations", 1);
        event(Layer::Engineering, EventKind::MigrateEnd)
            .span(span)
            .capsule(to_capsule.raw())
            .detail(match &result {
                Ok(new_cluster) => format!("cluster={cluster} -> {new_cluster} at {to_node}"),
                Err(e) => format!("cluster={cluster} failed: {e} (rolled back)"),
            })
            .emit();
        result
    }

    /// Deletes one object (§8.1's object management), returning its final
    /// checkpoint.
    ///
    /// # Errors
    ///
    /// Unknown node or object.
    pub fn delete_object(
        &mut self,
        node: NodeId,
        object: ObjectId,
    ) -> Result<ObjectCheckpoint, EngError> {
        let checkpoint = self
            .nucleus_mut(node)?
            .remove_object(object)
            .ok_or(EngError::UnknownObject { object })?;
        for ifc in &checkpoint.record.interfaces {
            self.locations.remove(ifc);
        }
        Ok(checkpoint)
    }

    /// Reads an object's current state.
    ///
    /// # Errors
    ///
    /// Unknown node.
    pub fn object_state(&self, node: NodeId, object: ObjectId) -> Result<Option<Value>, EngError> {
        Ok(self.nucleus(node)?.object_state(object).cloned())
    }

    /// Validates a node's structure against the policy (Figure 5's
    /// rules); empty = valid.
    ///
    /// # Errors
    ///
    /// Unknown node.
    pub fn validate_node(&self, node: NodeId) -> Result<Vec<String>, EngError> {
        let nucleus = self.nucleus(node)?;
        Ok(nucleus.structure.validate(&self.policy, &nucleus.routing))
    }

    /// A node's (capsules, clusters, objects) census.
    ///
    /// # Errors
    ///
    /// Unknown node.
    pub fn census(&self, node: NodeId) -> Result<(usize, usize, usize), EngError> {
        Ok(self.nucleus(node)?.structure.census())
    }

    /// A node's nucleus counters.
    ///
    /// # Errors
    ///
    /// Unknown node.
    pub fn node_stats(&self, node: NodeId) -> Result<NucleusStats, EngError> {
        Ok(self.nucleus(node)?.stats)
    }

    /// Overrides a node's request-id dedup cache capacity (default
    /// [`crate::nucleus::DEDUP_CAPACITY`]); shrinking evicts
    /// oldest-first immediately.
    ///
    /// # Errors
    ///
    /// Unknown node.
    pub fn set_dedup_capacity(&mut self, node: NodeId, capacity: usize) -> Result<(), EngError> {
        self.nucleus_mut(node)?.set_dedup_capacity(capacity);
        Ok(())
    }

    /// How many request outcomes a node's dedup cache currently holds.
    ///
    /// # Errors
    ///
    /// Unknown node.
    pub fn dedup_len(&self, node: NodeId) -> Result<usize, EngError> {
        Ok(self.nucleus(node)?.dedup_len())
    }

    /// Sets a node's admission control (bounded invocation queue). The
    /// default is [`crate::nucleus::AdmissionPolicy::Unbounded`], the
    /// historical dispatch-on-delivery behaviour.
    ///
    /// # Errors
    ///
    /// Unknown node.
    pub fn set_admission(&mut self, node: NodeId, config: AdmissionConfig) -> Result<(), EngError> {
        self.nucleus_mut(node)?.set_admission(config);
        event(Layer::Engineering, EventKind::Note)
            .in_context()
            .node(node.raw())
            .detail(format!(
                "admission policy={} capacity={} service={}us",
                config.policy,
                if config.capacity == usize::MAX {
                    "inf".to_owned()
                } else {
                    config.capacity.to_string()
                },
                config.service_time.as_micros()
            ))
            .emit();
        Ok(())
    }

    /// A node's current admission configuration.
    ///
    /// # Errors
    ///
    /// Unknown node.
    pub fn admission(&self, node: NodeId) -> Result<AdmissionConfig, EngError> {
        Ok(self.nucleus(node)?.admission())
    }

    /// How many invocations are parked in a node's admission queue.
    ///
    /// # Errors
    ///
    /// Unknown node.
    pub fn queue_depth(&self, node: NodeId) -> Result<usize, EngError> {
        Ok(self.nucleus(node)?.queue_depth())
    }

    /// Sends an interrogation through a channel *without* waiting for the
    /// reply, returning the request id. The message is queued in the
    /// simulator; run it (e.g. [`Engine::run_until_idle`] or
    /// `sim_mut().run_until`) to make progress, then collect the outcome
    /// with [`Engine::take_reply`].
    ///
    /// This is the open-loop primitive load generators need: many
    /// requests can be in flight at once, so a server's admission queue
    /// actually fills. No retransmission is performed (an unanswered
    /// request simply never produces a reply).
    ///
    /// # Errors
    ///
    /// Unknown channel/node or a client-side channel failure.
    pub fn call_send(
        &mut self,
        channel: ChannelId,
        op: &str,
        args: &Value,
    ) -> Result<u64, CallError> {
        let (client, target, believed_node) = {
            let cc = self
                .channels
                .get(&channel)
                .ok_or(EngError::UnknownChannel { channel })?;
            (cc.client, cc.target, cc.believed.location.node)
        };
        let client_native = self.handle(client)?.native;
        let driver = self.driver_addr(client)?;
        let dst = self.nucleus_addr(believed_node)?;
        let payload = self.encode_invocation(client_native, op, args);
        let request_id = self.next_request;
        self.next_request += 1;
        // Async calls get the same span shape as the blocking path —
        // CallStart here, CallEnd when the reply is collected — so the
        // critical-path profiler sees open-loop invocations too.
        let span = bus::new_span();
        event(Layer::Engineering, EventKind::CallStart)
            .span(span)
            .parent_from_context()
            .channel(channel.raw())
            .detail(format!("op={op} mode=async"))
            .emit();
        let mut env = Envelope::request(channel, request_id, target, client_native, payload);
        bus::push_context(span);
        let sent = {
            let cc = self.channels.get_mut(&channel).expect("checked above");
            cc.stack.outgoing(&mut env)
        };
        if let Err(e) = sent {
            bus::pop_context();
            event(Layer::Engineering, EventKind::CallEnd)
                .span(span)
                .channel(channel.raw())
                .detail(format!("op={op} -> error: {e}"))
                .emit();
            return Err(e.into());
        }
        self.sim.send_from(driver, dst, env.to_bytes());
        bus::pop_context();
        bus::counter_add("engineering.calls_async", 1);
        self.pending_calls.insert(request_id, (span, op.to_owned()));
        Ok(request_id)
    }

    /// Collects the reply to a [`Engine::call_send`] request if it has
    /// arrived: `None` while still in flight, otherwise the arrival time
    /// and the interpreted outcome. Does not advance the simulator.
    ///
    /// # Errors
    ///
    /// Unknown channel.
    #[allow(clippy::type_complexity)] // (arrival, outcome) is the natural shape
    pub fn take_reply(
        &mut self,
        channel: ChannelId,
        request_id: u64,
    ) -> Result<Option<(SimTime, Result<Termination, CallError>)>, EngError> {
        let (client, target) = {
            let cc = self
                .channels
                .get(&channel)
                .ok_or(EngError::UnknownChannel { channel })?;
            (cc.client, cc.target)
        };
        let driver = self.driver_addr(client)?;
        let Some(d) = self.sim.inspect_mut::<DriverProcess>(driver) else {
            return Err(EngError::UnknownNode { node: client });
        };
        let Some((mut reply, arrived)) = d.mailbox.remove(&request_id) else {
            return Ok(None);
        };
        let pending = self.pending_calls.remove(&request_id);
        if let Some((span, _)) = &pending {
            bus::push_context(*span);
        }
        let outcome = {
            let cc = self.channels.get_mut(&channel).expect("checked above");
            match cc.stack.incoming(&mut reply) {
                Err(e) => Err(CallError::Channel(e)),
                Ok(()) => self.interpret_reply(target, reply),
            }
        };
        if pending.is_some() {
            bus::pop_context();
        }
        if let Some((span, op)) = pending {
            let detail = match &outcome {
                Ok(t) => format!("op={op} -> {}", t.name),
                Err(e) => format!("op={op} -> error: {e}"),
            };
            event(Layer::Engineering, EventKind::CallEnd)
                .span(span)
                .channel(channel.raw())
                .detail(detail)
                .emit();
        }
        Ok(Some((arrived, outcome)))
    }

    /// Direct local invocation on a node, bypassing channels (used by
    /// management functions and intra-node optimisation tests).
    ///
    /// # Errors
    ///
    /// Unknown node or interface.
    pub fn invoke_local(
        &mut self,
        node: NodeId,
        interface: InterfaceId,
        op: &str,
        args: &Value,
    ) -> Result<Termination, EngError> {
        let invocation = Invocation::new(op, args.clone());
        self.nucleus_mut(node)?
            .invoke_local(interface, &invocation)
            .ok_or(EngError::UnknownInterface { interface })
    }
}

/// The engine is a kernel [`World`]: load generators and fault injectors
/// run as actors on one scheduler instead of pacing the simulator
/// themselves.
impl World for Engine {
    fn now(&self) -> SimTime {
        self.sim.now()
    }

    fn advance_to(&mut self, at: SimTime) {
        self.sim.run_until(at);
    }

    fn run_until_idle(&mut self) {
        self.sim.run_until_idle();
    }

    fn step(&mut self) -> bool {
        self.sim.step()
    }

    fn queue_len(&self) -> usize {
        World::queue_len(&self.sim)
    }
}
