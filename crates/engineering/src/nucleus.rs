//! The nucleus: the per-node engineering kernel (§6.2).
//!
//! "A node has a nucleus object — an (extended) operating system
//! supporting ODP." Here the nucleus is a [`Process`] attached to a
//! simulator node: it owns the node's capsules, clusters and basic
//! engineering objects, terminates the server halves of channels, and
//! dispatches incoming invocations to object behaviours.

use std::collections::{BTreeMap, VecDeque};

use rmodp_computational::signature::{Invocation, Termination};
use rmodp_core::codec::{syntax_for, SyntaxId};
use rmodp_core::id::{CapsuleId, ChannelId, ClusterId, InterfaceId, NodeId, ObjectId};
use rmodp_core::value::Value;
use rmodp_kernel::payload::Payload;
use rmodp_netsim::sim::{Ctx, Message, Process};
use rmodp_netsim::time::SimDuration;
use rmodp_netsim::time::SimTime;

use crate::behaviour::ServerBehaviour;
use crate::channel::{ChannelError, Stack};
use crate::envelope::{Envelope, EnvelopeKind, ReplyStatus};
use crate::structure::{BeoRecord, Cluster, ClusterCheckpoint, NodeStructure, ObjectCheckpoint};

/// The port a node's nucleus listens on.
pub const NUCLEUS_PORT: u32 = 0;
/// The port a node's driver (client-side reply collector) listens on.
pub const DRIVER_PORT: u32 = 1;

/// Timer tag the nucleus uses for its invocation-service drain.
const SERVICE_TIMER_TAG: u64 = 0xAD_715;

/// How many request outcomes the dedup cache remembers before evicting
/// the oldest (FIFO). Far above any in-flight population the simulator
/// reaches, so retransmissions practically always hit the cache.
/// Override per node with [`NucleusProcess::set_dedup_capacity`].
pub const DEDUP_CAPACITY: usize = 65_536;

/// Remembered outcome of a request, keyed by (channel, request id), so
/// retransmissions are served **at most once** even without a
/// [`crate::channel::SequenceBinder`].
#[derive(Debug, Clone)]
enum DedupEntry {
    /// Admitted but not yet answered (possibly parked in the admission
    /// queue): duplicate arrivals are silently suppressed.
    InFlight,
    /// Answered: the reply status and payload, re-sent verbatim (through
    /// the server stack, so it is stamped as a fresh message) when a
    /// retransmission arrives. The payload is shared bytes: caching and
    /// replaying never deep-copy.
    Done(ReplyStatus, Payload),
}

/// What the nucleus does with a new invocation when its bounded queue is
/// full — the backpressure half of an environment contract (§5.3): the
/// server either honours the contract's latency bound by refusing excess
/// load, or lets latency grow without bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// No queue, no bound: invocations dispatch the instant they arrive.
    /// This is the historical behaviour and the default.
    #[default]
    Unbounded,
    /// Reject the *new* invocation with a `Rejected` reply when the queue
    /// is at capacity.
    Reject,
    /// Shed the *oldest* queued invocation (replying `Rejected` to it) to
    /// make room for the new one.
    ShedOldest,
    /// Never reject: the queue grows without bound and excess load shows
    /// up as latency instead of errors.
    Delay,
}

impl std::fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionPolicy::Unbounded => write!(f, "unbounded"),
            AdmissionPolicy::Reject => write!(f, "reject"),
            AdmissionPolicy::ShedOldest => write!(f, "shed-oldest"),
            AdmissionPolicy::Delay => write!(f, "delay"),
        }
    }
}

/// Admission control for a nucleus: a bounded invocation intake queue
/// drained at a fixed service rate.
///
/// With the default ([`AdmissionPolicy::Unbounded`]) the nucleus behaves
/// exactly as it always has: every request is dispatched synchronously on
/// delivery. Any other policy routes requests through the queue: one
/// request is served every `service_time` of virtual time, the queue
/// depth is capped at `capacity`, and the policy decides who pays when it
/// overflows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// The overflow policy.
    pub policy: AdmissionPolicy,
    /// Queue capacity (ignored by `Unbounded` and `Delay`).
    pub capacity: usize,
    /// Virtual time to serve one queued invocation.
    pub service_time: SimDuration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            policy: AdmissionPolicy::Unbounded,
            capacity: usize::MAX,
            service_time: SimDuration::ZERO,
        }
    }
}

impl AdmissionConfig {
    /// A bounded queue that rejects overflow.
    pub fn reject(capacity: usize, service_time: SimDuration) -> Self {
        Self {
            policy: AdmissionPolicy::Reject,
            capacity,
            service_time,
        }
    }

    /// A bounded queue that sheds its oldest entry on overflow.
    pub fn shed_oldest(capacity: usize, service_time: SimDuration) -> Self {
        Self {
            policy: AdmissionPolicy::ShedOldest,
            capacity,
            service_time,
        }
    }

    /// An unbounded queue: overload turns into queueing delay.
    pub fn delay(service_time: SimDuration) -> Self {
        Self {
            policy: AdmissionPolicy::Delay,
            capacity: usize::MAX,
            service_time,
        }
    }
}

/// A request parked in the nucleus's admission queue.
#[derive(Debug)]
struct QueuedRequest {
    env: Envelope,
    reply_to: rmodp_netsim::sim::Addr,
    enqueued_at: SimTime,
    /// The causal context (the request message's span) captured at
    /// enqueue time. Service happens on a timer, which carries no
    /// context of its own; restoring this around dispatch keeps the
    /// reply causally linked to the request that provoked it.
    context: Option<u64>,
}

/// The per-node engineering kernel, run as a simulator process.
pub struct NucleusProcess {
    /// Which engineering node this nucleus serves.
    pub node: NodeId,
    /// The node's native transfer syntax (its "data representation").
    pub native: SyntaxId,
    /// The capsule/cluster/object tree.
    pub structure: NodeStructure,
    /// Interface → object routing for this node.
    pub routing: BTreeMap<InterfaceId, ObjectId>,
    /// Server-side channel stacks, by channel.
    pub server_channels: BTreeMap<ChannelId, Stack>,
    /// Behaviours of resident objects.
    behaviours: BTreeMap<ObjectId, Box<dyn ServerBehaviour>>,
    /// Durable states of resident objects.
    states: BTreeMap<ObjectId, Value>,
    /// Counters for observability.
    pub stats: NucleusStats,
    /// Admission control for incoming invocations.
    admission: AdmissionConfig,
    /// Requests awaiting service (non-`Unbounded` policies only).
    queue: VecDeque<QueuedRequest>,
    /// Whether a service timer is outstanding.
    draining: bool,
    /// At-most-once execution: remembered request outcomes.
    dedup: BTreeMap<(u64, u64), DedupEntry>,
    /// FIFO eviction order for `dedup`.
    dedup_order: VecDeque<(u64, u64)>,
    /// How many outcomes `dedup` may hold before FIFO eviction.
    dedup_capacity: usize,
}

/// Counters the nucleus maintains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NucleusStats {
    /// Requests dispatched to behaviours.
    pub requests: u64,
    /// Announcements dispatched.
    pub announcements: u64,
    /// Flow items dispatched.
    pub flows: u64,
    /// Requests answered `NotHere`.
    pub not_here: u64,
    /// Messages rejected by channel components or malformed.
    pub rejected: u64,
    /// Requests refused or evicted by the admission policy.
    pub shed: u64,
    /// Deepest the admission queue has been.
    pub peak_queue_depth: u64,
    /// Retransmitted requests suppressed or answered from the dedup
    /// cache instead of being executed again.
    pub dedup_hits: u64,
    /// Requests that *executed* despite an already-recorded outcome — a
    /// duplicate side-effect. The recovery oracle asserts this stays 0.
    pub duplicate_dispatches: u64,
}

impl std::fmt::Debug for NucleusProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (capsules, clusters, objects) = self.structure.census();
        f.debug_struct("NucleusProcess")
            .field("node", &self.node)
            .field("capsules", &capsules)
            .field("clusters", &clusters)
            .field("objects", &objects)
            .finish()
    }
}

impl NucleusProcess {
    /// Creates an empty nucleus for a node.
    pub fn new(node: NodeId, native: SyntaxId) -> Self {
        Self {
            node,
            native,
            structure: NodeStructure::default(),
            routing: BTreeMap::new(),
            server_channels: BTreeMap::new(),
            behaviours: BTreeMap::new(),
            states: BTreeMap::new(),
            stats: NucleusStats::default(),
            admission: AdmissionConfig::default(),
            queue: VecDeque::new(),
            draining: false,
            dedup: BTreeMap::new(),
            dedup_order: VecDeque::new(),
            dedup_capacity: DEDUP_CAPACITY,
        }
    }

    /// Overrides the dedup cache capacity (default [`DEDUP_CAPACITY`]).
    /// Shrinking evicts oldest-first immediately, preserving FIFO order.
    pub fn set_dedup_capacity(&mut self, capacity: usize) {
        self.dedup_capacity = capacity.max(1);
        while self.dedup_order.len() > self.dedup_capacity {
            if let Some(old) = self.dedup_order.pop_front() {
                self.dedup.remove(&old);
            }
        }
    }

    /// How many request outcomes the dedup cache currently remembers.
    pub fn dedup_len(&self) -> usize {
        self.dedup.len()
    }

    /// The dedup key for an envelope, when it can be correlated: the
    /// driver's raw channel-0 sends and requests without ids are exempt.
    fn dedup_key(env: &Envelope) -> Option<(u64, u64)> {
        (env.channel.raw() != 0 && env.request != 0).then(|| (env.channel.raw(), env.request))
    }

    /// Inserts a dedup entry, evicting the oldest beyond capacity.
    fn dedup_insert(&mut self, key: (u64, u64), entry: DedupEntry) {
        if self.dedup.insert(key, entry).is_none() {
            self.dedup_order.push_back(key);
            while self.dedup_order.len() > self.dedup_capacity {
                if let Some(old) = self.dedup_order.pop_front() {
                    self.dedup.remove(&old);
                }
            }
        }
    }

    /// Records a request's final answer so retransmissions can replay it.
    /// Shares the payload's buffer with the reply being sent.
    fn dedup_done(&mut self, env: &Envelope, status: ReplyStatus, payload: &Payload) {
        if let Some(key) = Self::dedup_key(env) {
            self.dedup_insert(key, DedupEntry::Done(status, payload.clone()));
        }
    }

    /// The admission configuration in force.
    pub fn admission(&self) -> AdmissionConfig {
        self.admission
    }

    /// Replaces the admission configuration. Requests already queued stay
    /// queued and drain under the new service time.
    pub fn set_admission(&mut self, config: AdmissionConfig) {
        self.admission = config;
    }

    /// Requests currently parked in the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Adds a capsule.
    pub fn add_capsule(&mut self, capsule: CapsuleId) {
        self.structure.capsules.entry(capsule).or_default();
    }

    /// Adds a cluster to a capsule; `false` if the capsule is unknown.
    pub fn add_cluster(&mut self, capsule: CapsuleId, cluster: ClusterId) -> bool {
        match self.structure.capsules.get_mut(&capsule) {
            Some(c) => {
                c.clusters.entry(cluster).or_insert_with(Cluster::default);
                true
            }
            None => false,
        }
    }

    /// Installs an object (record + behaviour + state) into a cluster and
    /// routes its interfaces; `false` if the cluster is unknown.
    pub fn install_object(
        &mut self,
        capsule: CapsuleId,
        cluster: ClusterId,
        record: BeoRecord,
        behaviour: Box<dyn ServerBehaviour>,
        state: Value,
    ) -> bool {
        let Some(cl) = self
            .structure
            .capsules
            .get_mut(&capsule)
            .and_then(|c| c.clusters.get_mut(&cluster))
        else {
            return false;
        };
        for ifc in &record.interfaces {
            self.routing.insert(*ifc, record.object);
        }
        rmodp_observe::event(
            rmodp_observe::Layer::Engineering,
            rmodp_observe::EventKind::Note,
        )
        .in_context()
        .node(self.node.raw())
        .capsule(capsule.raw())
        .detail(format!(
            "nucleus installed {} in {cluster} ({} interface(s))",
            record.object,
            record.interfaces.len()
        ))
        .emit();
        rmodp_observe::bus::counter_add("engineering.objects_installed", 1);
        self.behaviours.insert(record.object, behaviour);
        self.states.insert(record.object, state.clone());
        cl.objects.insert(record.object, record);
        true
    }

    /// Removes an object entirely; returns its checkpoint if present.
    pub fn remove_object(&mut self, object: ObjectId) -> Option<ObjectCheckpoint> {
        let mut found = None;
        for capsule in self.structure.capsules.values_mut() {
            for cluster in capsule.clusters.values_mut() {
                if let Some(record) = cluster.objects.remove(&object) {
                    found = Some(record);
                    break;
                }
            }
        }
        let record = found?;
        for ifc in &record.interfaces {
            self.routing.remove(ifc);
        }
        self.behaviours.remove(&object);
        let state = self.states.remove(&object).unwrap_or(Value::Null);
        Some(ObjectCheckpoint { record, state })
    }

    /// Snapshots a cluster without disturbing it (§8.1 checkpoint).
    pub fn checkpoint_cluster(
        &self,
        capsule: CapsuleId,
        cluster: ClusterId,
        epoch: u64,
    ) -> Option<ClusterCheckpoint> {
        let cl = self
            .structure
            .capsules
            .get(&capsule)?
            .clusters
            .get(&cluster)?;
        let objects = cl
            .objects
            .values()
            .map(|record| ObjectCheckpoint {
                record: record.clone(),
                state: self
                    .states
                    .get(&record.object)
                    .cloned()
                    .unwrap_or(Value::Null),
            })
            .collect();
        Some(ClusterCheckpoint {
            cluster,
            objects,
            epoch,
        })
    }

    /// Removes a cluster wholesale (deactivation / the destructive half of
    /// migration), returning its checkpoint.
    pub fn remove_cluster(
        &mut self,
        capsule: CapsuleId,
        cluster: ClusterId,
        epoch: u64,
    ) -> Option<ClusterCheckpoint> {
        let checkpoint = self.checkpoint_cluster(capsule, cluster, epoch)?;
        let cl = self
            .structure
            .capsules
            .get_mut(&capsule)?
            .clusters
            .remove(&cluster)?;
        for record in cl.objects.values() {
            for ifc in &record.interfaces {
                self.routing.remove(ifc);
            }
            self.behaviours.remove(&record.object);
            self.states.remove(&record.object);
        }
        Some(checkpoint)
    }

    /// Direct read access to an object's state (used by management
    /// functions and tests).
    pub fn object_state(&self, object: ObjectId) -> Option<&Value> {
        self.states.get(&object)
    }

    /// Direct invocation bypassing the network — the engine uses this for
    /// intra-node calls from management functions.
    pub fn invoke_local(
        &mut self,
        interface: InterfaceId,
        invocation: &Invocation,
    ) -> Option<Termination> {
        let object = *self.routing.get(&interface)?;
        let behaviour = self.behaviours.get_mut(&object)?;
        let state = self.states.get_mut(&object)?;
        self.stats.requests += 1;
        rmodp_observe::event(
            rmodp_observe::Layer::Engineering,
            rmodp_observe::EventKind::Note,
        )
        .in_context()
        .node(self.node.raw())
        .detail(format!(
            "nucleus dispatch {} -> {object} ({interface})",
            invocation.operation
        ))
        .emit();
        rmodp_observe::bus::counter_add("engineering.nucleus_dispatches", 1);
        Some(behaviour.invoke(state, invocation))
    }

    fn decode_invocation(&self, syntax: SyntaxId, payload: &[u8]) -> Option<Invocation> {
        let value = syntax_for(syntax).decode(payload).ok()?;
        let op = value.field("op")?.as_text()?.to_owned();
        let args = value.field("args").cloned().unwrap_or(Value::Null);
        Some(Invocation::new(op, args))
    }

    fn encode_termination(&self, termination: &Termination) -> Vec<u8> {
        let value = Value::record([
            ("name", Value::text(termination.name.clone())),
            ("results", termination.results.clone()),
        ]);
        syntax_for(self.native).encode(&value)
    }

    fn send_reply(
        &mut self,
        ctx: &mut Ctx<'_>,
        req: &Envelope,
        status: ReplyStatus,
        payload: Payload,
        reply_to: rmodp_netsim::sim::Addr,
    ) {
        let mut reply = Envelope::reply_to(req, status, self.native, payload);
        if req.channel.raw() != 0 {
            if let Some(stack) = self.server_channels.get_mut(&req.channel) {
                // A failing outgoing stack would leave the client waiting;
                // components only fail on malformed payloads we produced
                // ourselves, so surface that loudly in debug builds.
                if let Err(e) = stack.outgoing(&mut reply) {
                    debug_assert!(false, "server outgoing stack failed: {e}");
                    return;
                }
            }
        }
        ctx.send(reply_to, reply.to_bytes());
    }

    /// Decodes, routes and executes one admitted request, replying to the
    /// caller.
    fn dispatch_request(&mut self, ctx: &mut Ctx<'_>, src: rmodp_netsim::sim::Addr, env: Envelope) {
        if let Some(key) = Self::dedup_key(&env) {
            if matches!(self.dedup.get(&key), Some(DedupEntry::Done(..))) {
                // Executing a request whose outcome is already recorded
                // would be a duplicate side-effect; `handle_envelope`
                // suppresses these, so this counter must stay 0.
                self.stats.duplicate_dispatches += 1;
                rmodp_observe::bus::counter_add("engineering.dedup.duplicate_dispatches", 1);
            }
        }
        let Some(&object) = self.routing.get(&env.target) else {
            self.stats.not_here += 1;
            let payload = Payload::new(syntax_for(self.native).encode(&Value::Null));
            self.dedup_done(&env, ReplyStatus::NotHere, &payload);
            self.send_reply(ctx, &env, ReplyStatus::NotHere, payload, src);
            return;
        };
        let Some(invocation) = self.decode_invocation(env.syntax, &env.payload) else {
            self.stats.rejected += 1;
            let payload =
                Payload::new(self.encode_termination(&Termination::error("bad invocation")));
            self.dedup_done(&env, ReplyStatus::Rejected, &payload);
            self.send_reply(ctx, &env, ReplyStatus::Rejected, payload, src);
            return;
        };
        self.stats.requests += 1;
        let termination = {
            let behaviour = self.behaviours.get_mut(&object);
            let state = self.states.get_mut(&object);
            match (behaviour, state) {
                (Some(b), Some(s)) => b.invoke(s, &invocation),
                _ => Termination::error("object has no behaviour"),
            }
        };
        let payload = Payload::new(self.encode_termination(&termination));
        self.dedup_done(&env, ReplyStatus::Ok, &payload);
        self.send_reply(ctx, &env, ReplyStatus::Ok, payload, src);
    }

    /// Publishes the current queue depth as a per-node gauge and tracks
    /// the peak.
    fn publish_queue_depth(&mut self) {
        let depth = self.queue.len() as u64;
        self.stats.peak_queue_depth = self.stats.peak_queue_depth.max(depth);
        rmodp_observe::bus::gauge_set(
            &format!("engineering.node{}.queue_depth", self.node.raw()),
            depth as i64,
        );
    }

    /// Replies `Rejected` with a machine-readable reason to a request the
    /// admission policy refused.
    fn refuse(
        &mut self,
        ctx: &mut Ctx<'_>,
        env: &Envelope,
        reply_to: rmodp_netsim::sim::Addr,
        reason: &str,
    ) {
        self.stats.shed += 1;
        rmodp_observe::bus::counter_add("engineering.admission.shed", 1);
        rmodp_observe::event(
            rmodp_observe::Layer::Engineering,
            rmodp_observe::EventKind::Note,
        )
        .in_context()
        .node(self.node.raw())
        .channel(env.channel.raw())
        .detail(format!(
            "admission {reason} (queue at {})",
            self.queue.len()
        ))
        .emit();
        let payload = Payload::new(self.encode_termination(&Termination::error(reason)));
        self.dedup_done(env, ReplyStatus::Rejected, &payload);
        self.send_reply(ctx, env, ReplyStatus::Rejected, payload, reply_to);
    }

    /// Routes a request through the bounded admission queue.
    fn admit_request(&mut self, ctx: &mut Ctx<'_>, src: rmodp_netsim::sim::Addr, env: Envelope) {
        let full = self.queue.len() >= self.admission.capacity;
        if full {
            match self.admission.policy {
                AdmissionPolicy::Reject => {
                    self.refuse(ctx, &env, src, "overload");
                    return;
                }
                AdmissionPolicy::ShedOldest => {
                    if let Some(oldest) = self.queue.pop_front() {
                        self.refuse(ctx, &oldest.env, oldest.reply_to, "shed");
                    }
                }
                // Delay and Unbounded never refuse; Unbounded never gets
                // here.
                AdmissionPolicy::Delay | AdmissionPolicy::Unbounded => {}
            }
        }
        rmodp_observe::bus::counter_add("engineering.admission.enqueued", 1);
        rmodp_observe::event(
            rmodp_observe::Layer::Engineering,
            rmodp_observe::EventKind::AdmissionEnqueue,
        )
        .in_context()
        .node(self.node.raw())
        .channel(env.channel.raw())
        .detail(format!("queue at {}", self.queue.len() + 1))
        .emit();
        self.queue.push_back(QueuedRequest {
            env,
            reply_to: src,
            enqueued_at: ctx.now(),
            context: rmodp_observe::bus::current_context(),
        });
        self.publish_queue_depth();
        if !self.draining {
            self.draining = true;
            ctx.set_timer(self.admission.service_time, SERVICE_TIMER_TAG);
        }
    }

    /// Serves the request at the head of the queue and re-arms the drain
    /// timer while work remains.
    fn serve_next(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(queued) = self.queue.pop_front() {
            self.publish_queue_depth();
            let wait_us = ctx.now().since(queued.enqueued_at).as_micros();
            rmodp_observe::bus::observe("engineering.admission.queue_wait_us", wait_us);
            // The drain timer carries no causal context; restore the
            // one captured at enqueue so the dispatch (and the reply it
            // sends) stays on the request's span.
            if let Some(span) = queued.context {
                rmodp_observe::bus::push_context(span);
            }
            rmodp_observe::event(
                rmodp_observe::Layer::Engineering,
                rmodp_observe::EventKind::AdmissionDispatch,
            )
            .in_context()
            .node(self.node.raw())
            .channel(queued.env.channel.raw())
            .detail(format!("waited {wait_us}us"))
            .emit();
            self.dispatch_request(ctx, queued.reply_to, queued.env);
            if queued.context.is_some() {
                rmodp_observe::bus::pop_context();
            }
        }
        if self.queue.is_empty() {
            self.draining = false;
        } else {
            ctx.set_timer(self.admission.service_time, SERVICE_TIMER_TAG);
        }
    }

    fn handle_envelope(
        &mut self,
        ctx: &mut Ctx<'_>,
        src: rmodp_netsim::sim::Addr,
        mut env: Envelope,
    ) {
        // Run the server half of the channel.
        if env.channel.raw() != 0 {
            if let Some(stack) = self.server_channels.get_mut(&env.channel) {
                match stack.incoming(&mut env) {
                    Ok(()) => {}
                    Err(ChannelError::Replay { seq }) => {
                        self.stats.rejected += 1;
                        ctx.note(format!("replay foiled (seq {seq})"));
                        if env.kind == EnvelopeKind::Request {
                            let payload = Payload::new(
                                self.encode_termination(&Termination::error("replay")),
                            );
                            self.send_reply(ctx, &env, ReplyStatus::Rejected, payload, src);
                        }
                        return;
                    }
                    Err(e) => {
                        self.stats.rejected += 1;
                        ctx.note(format!("channel rejected message: {e}"));
                        return;
                    }
                }
            }
        }
        match env.kind {
            EnvelopeKind::Request => {
                // At-most-once: a request id we have already seen is
                // either still executing (suppress the duplicate) or
                // answered (replay the recorded reply); only a fresh id
                // reaches the admission path.
                if let Some(key) = Self::dedup_key(&env) {
                    match self.dedup.get(&key) {
                        Some(DedupEntry::Done(status, payload)) => {
                            let (status, payload) = (*status, payload.clone());
                            self.stats.dedup_hits += 1;
                            rmodp_observe::bus::counter_add("engineering.dedup.hits", 1);
                            ctx.note(format!(
                                "dedup: replayed {status:?} reply for request {}",
                                env.request
                            ));
                            self.send_reply(ctx, &env, status, payload, src);
                            return;
                        }
                        Some(DedupEntry::InFlight) => {
                            self.stats.dedup_hits += 1;
                            rmodp_observe::bus::counter_add("engineering.dedup.hits", 1);
                            ctx.note(format!(
                                "dedup: suppressed in-flight duplicate of request {}",
                                env.request
                            ));
                            return;
                        }
                        None => self.dedup_insert(key, DedupEntry::InFlight),
                    }
                }
                if self.admission.policy == AdmissionPolicy::Unbounded {
                    self.dispatch_request(ctx, src, env);
                } else {
                    self.admit_request(ctx, src, env);
                }
            }
            EnvelopeKind::Announce => {
                if let Some(&object) = self.routing.get(&env.target) {
                    if let Some(invocation) = self.decode_invocation(env.syntax, &env.payload) {
                        self.stats.announcements += 1;
                        if let (Some(b), Some(s)) = (
                            self.behaviours.get_mut(&object),
                            self.states.get_mut(&object),
                        ) {
                            let _ = b.invoke(s, &invocation);
                        }
                    }
                }
            }
            EnvelopeKind::Flow => {
                if let Some(&object) = self.routing.get(&env.target) {
                    if let Ok(item) = syntax_for(env.syntax).decode(&env.payload) {
                        self.stats.flows += 1;
                        if let (Some(b), Some(s)) = (
                            self.behaviours.get_mut(&object),
                            self.states.get_mut(&object),
                        ) {
                            b.on_flow(s, &env.flow, &item);
                        }
                    }
                }
            }
            EnvelopeKind::Reply => {
                // Replies are addressed to drivers, not nuclei.
                self.stats.rejected += 1;
            }
        }
    }
}

impl Process for NucleusProcess {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        match Envelope::from_payload(&msg.payload) {
            Ok(env) => self.handle_envelope(ctx, msg.src, env),
            Err(e) => {
                self.stats.rejected += 1;
                ctx.note(format!("malformed envelope: {e}"));
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if tag == SERVICE_TIMER_TAG {
            self.serve_next(ctx);
        }
    }
}

/// The client-side reply collector: the engine's `call` sends requests
/// from this address and polls its mailbox for correlated replies.
#[derive(Debug, Default)]
pub struct DriverProcess {
    /// Replies keyed by request id, with their arrival time (so load
    /// generators can measure latency at the instant of delivery rather
    /// than at the instant of polling).
    pub mailbox: BTreeMap<u64, (Envelope, SimTime)>,
}

impl Process for DriverProcess {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        if let Ok(env) = Envelope::from_payload(&msg.payload) {
            if env.kind == EnvelopeKind::Reply {
                // First reply wins; duplicates from retransmission are
                // dropped here.
                self.mailbox.entry(env.request).or_insert((env, ctx.now()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behaviour::CounterBehaviour;

    fn nucleus_with_counter() -> (NucleusProcess, InterfaceId, ObjectId) {
        let mut n = NucleusProcess::new(NodeId::new(1), SyntaxId::Binary);
        n.add_capsule(CapsuleId::new(1));
        assert!(n.add_cluster(CapsuleId::new(1), ClusterId::new(1)));
        let obj = ObjectId::new(1);
        let ifc = InterfaceId::new(10);
        let record = BeoRecord {
            object: obj,
            name: "counter".into(),
            behaviour: "counter".into(),
            interfaces: vec![ifc],
        };
        assert!(n.install_object(
            CapsuleId::new(1),
            ClusterId::new(1),
            record,
            Box::new(CounterBehaviour),
            CounterBehaviour::initial_state(),
        ));
        (n, ifc, obj)
    }

    #[test]
    fn install_routes_interfaces_and_invoke_local_works() {
        let (mut n, ifc, obj) = nucleus_with_counter();
        assert_eq!(n.routing.get(&ifc), Some(&obj));
        let t = n
            .invoke_local(
                ifc,
                &Invocation::new("Add", Value::record([("k", Value::Int(4))])),
            )
            .unwrap();
        assert_eq!(t.results.field("n"), Some(&Value::Int(4)));
        assert_eq!(
            n.object_state(obj).unwrap().field("n"),
            Some(&Value::Int(4))
        );
        assert_eq!(n.stats.requests, 1);
    }

    #[test]
    fn checkpoint_captures_and_remove_cluster_clears() {
        let (mut n, ifc, obj) = nucleus_with_counter();
        n.invoke_local(
            ifc,
            &Invocation::new("Add", Value::record([("k", Value::Int(7))])),
        );
        let cp = n
            .checkpoint_cluster(CapsuleId::new(1), ClusterId::new(1), 3)
            .unwrap();
        assert_eq!(cp.objects.len(), 1);
        assert_eq!(cp.objects[0].state.field("n"), Some(&Value::Int(7)));
        assert_eq!(cp.epoch, 3);
        // Checkpoint is non-destructive.
        assert!(n.object_state(obj).is_some());

        let cp2 = n
            .remove_cluster(CapsuleId::new(1), ClusterId::new(1), 4)
            .unwrap();
        assert_eq!(cp2.objects[0].state.field("n"), Some(&Value::Int(7)));
        assert!(n.object_state(obj).is_none());
        assert!(!n.routing.contains_key(&ifc));
        assert_eq!(n.structure.census(), (1, 0, 0));
    }

    #[test]
    fn remove_object_returns_checkpoint() {
        let (mut n, ifc, obj) = nucleus_with_counter();
        let cp = n.remove_object(obj).unwrap();
        assert_eq!(cp.record.object, obj);
        assert!(n.remove_object(obj).is_none());
        assert!(!n.routing.contains_key(&ifc));
    }

    #[test]
    fn unknown_cluster_operations_fail_gracefully() {
        let (mut n, _, _) = nucleus_with_counter();
        assert!(!n.add_cluster(CapsuleId::new(9), ClusterId::new(2)));
        assert!(n
            .checkpoint_cluster(CapsuleId::new(9), ClusterId::new(1), 0)
            .is_none());
        assert!(n
            .remove_cluster(CapsuleId::new(1), ClusterId::new(9), 0)
            .is_none());
        let record = BeoRecord {
            object: ObjectId::new(5),
            name: "x".into(),
            behaviour: "counter".into(),
            interfaces: vec![],
        };
        assert!(!n.install_object(
            CapsuleId::new(9),
            ClusterId::new(1),
            record,
            Box::new(CounterBehaviour),
            Value::Null,
        ));
    }
}
