//! Engineering structures: node, capsule, cluster, basic engineering
//! object (§6.2, Figure 5), plus checkpoints and structuring-rule
//! validation.

use std::collections::BTreeMap;
use std::fmt;

use rmodp_core::id::{CapsuleId, ClusterId, InterfaceId, NodeId, ObjectId};
use rmodp_core::value::Value;

/// Where an interface lives: the node/capsule/cluster coordinates of its
/// object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Location {
    /// The node (computer system).
    pub node: NodeId,
    /// The capsule within the node.
    pub capsule: CapsuleId,
    /// The cluster within the capsule.
    pub cluster: ClusterId,
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.node, self.capsule, self.cluster)
    }
}

/// An engineering interface reference: identity plus (possibly stale)
/// location knowledge and the epoch at which that knowledge was current.
///
/// Relocation transparency (§9.2) revolves around epochs: when an object
/// migrates, the authoritative epoch is bumped; holders of older epochs
/// get `NotHere` and must requery the relocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterfaceRef {
    /// The interface identity (stable across migration).
    pub interface: InterfaceId,
    /// The believed location.
    pub location: Location,
    /// The epoch of the belief.
    pub epoch: u64,
}

/// A basic engineering object's bookkeeping (the behaviour itself lives in
/// the nucleus process).
#[derive(Debug, Clone, PartialEq)]
pub struct BeoRecord {
    /// The object identity.
    pub object: ObjectId,
    /// A human-oriented name.
    pub name: String,
    /// The behaviour name (resolvable via the behaviour registry).
    pub behaviour: String,
    /// The interfaces this object offers.
    pub interfaces: Vec<InterfaceId>,
}

/// A checkpoint of one object: everything needed to recreate it.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectCheckpoint {
    /// The object's bookkeeping.
    pub record: BeoRecord,
    /// The captured state.
    pub state: Value,
}

/// A checkpoint of a whole cluster (§8.1: the cluster is the unit of
/// checkpointing, deactivation and migration).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterCheckpoint {
    /// The cluster this checkpoints.
    pub cluster: ClusterId,
    /// Checkpoints of every object in the cluster.
    pub objects: Vec<ObjectCheckpoint>,
    /// The epoch at which the checkpoint was taken.
    pub epoch: u64,
}

/// Optional structuring constraints an implementation may impose (§6.2:
/// "an implementation of an ODP system can choose to constrain the
/// structuring, for example, by allowing only one object per cluster /
/// only one cluster per capsule").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StructurePolicy {
    /// Maximum objects per cluster (None = unbounded).
    pub max_objects_per_cluster: Option<usize>,
    /// Maximum clusters per capsule (None = unbounded).
    pub max_clusters_per_capsule: Option<usize>,
    /// Maximum capsules per node (None = unbounded).
    pub max_capsules_per_node: Option<usize>,
}

impl StructurePolicy {
    /// The constrained profile the paper mentions: one object per cluster,
    /// one cluster per capsule.
    pub fn single_object_capsules() -> Self {
        Self {
            max_objects_per_cluster: Some(1),
            max_clusters_per_capsule: Some(1),
            max_capsules_per_node: None,
        }
    }
}

/// The in-memory structure of one node, maintained by its nucleus.
#[derive(Debug, Default)]
pub struct NodeStructure {
    /// Capsules by identity.
    pub capsules: BTreeMap<CapsuleId, Capsule>,
}

/// A capsule: a set of clusters with their managers, plus the capsule
/// manager (represented by the capsule's own management functions).
#[derive(Debug, Default)]
pub struct Capsule {
    /// Clusters by identity.
    pub clusters: BTreeMap<ClusterId, Cluster>,
}

/// A cluster: related basic engineering objects that are always
/// co-located (the unit of migration).
#[derive(Debug, Default)]
pub struct Cluster {
    /// Object records by identity.
    pub objects: BTreeMap<ObjectId, BeoRecord>,
}

impl NodeStructure {
    /// Counts (capsules, clusters, objects).
    pub fn census(&self) -> (usize, usize, usize) {
        let capsules = self.capsules.len();
        let clusters: usize = self.capsules.values().map(|c| c.clusters.len()).sum();
        let objects: usize = self
            .capsules
            .values()
            .flat_map(|c| c.clusters.values())
            .map(|cl| cl.objects.len())
            .sum();
        (capsules, clusters, objects)
    }

    /// Checks the §6.2 structuring rules and any policy constraints,
    /// returning all violations (empty = valid).
    ///
    /// The containment rules (a capsule contains clusters, a cluster
    /// contains objects) hold by construction of the tree; what is checked
    /// here is policy conformance and referential integrity of interface
    /// routing.
    pub fn validate(
        &self,
        policy: &StructurePolicy,
        routing: &BTreeMap<InterfaceId, ObjectId>,
    ) -> Vec<String> {
        let mut violations = Vec::new();
        if let Some(max) = policy.max_capsules_per_node {
            if self.capsules.len() > max {
                violations.push(format!(
                    "node has {} capsules, policy allows {max}",
                    self.capsules.len()
                ));
            }
        }
        for (capsule_id, capsule) in &self.capsules {
            if let Some(max) = policy.max_clusters_per_capsule {
                if capsule.clusters.len() > max {
                    violations.push(format!(
                        "{capsule_id} has {} clusters, policy allows {max}",
                        capsule.clusters.len()
                    ));
                }
            }
            for (cluster_id, cluster) in &capsule.clusters {
                if let Some(max) = policy.max_objects_per_cluster {
                    if cluster.objects.len() > max {
                        violations.push(format!(
                            "{cluster_id} has {} objects, policy allows {max}",
                            cluster.objects.len()
                        ));
                    }
                }
                for (object_id, record) in &cluster.objects {
                    for ifc in &record.interfaces {
                        match routing.get(ifc) {
                            Some(owner) if owner == object_id => {}
                            Some(owner) => violations
                                .push(format!("{ifc} routed to {owner} but owned by {object_id}")),
                            None => violations.push(format!("{ifc} of {object_id} is not routed")),
                        }
                    }
                }
            }
        }
        // Every routed interface must belong to some object in the tree.
        for (ifc, owner) in routing {
            let exists = self
                .capsules
                .values()
                .flat_map(|c| c.clusters.values())
                .any(|cl| cl.objects.contains_key(owner));
            if !exists {
                violations.push(format!("{ifc} routes to non-resident object {owner}"));
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(object: u64, interfaces: Vec<u64>) -> BeoRecord {
        BeoRecord {
            object: ObjectId::new(object),
            name: format!("obj{object}"),
            behaviour: "echo".into(),
            interfaces: interfaces.into_iter().map(InterfaceId::new).collect(),
        }
    }

    fn small_node() -> (NodeStructure, BTreeMap<InterfaceId, ObjectId>) {
        let mut node = NodeStructure::default();
        let mut capsule = Capsule::default();
        let mut cluster = Cluster::default();
        cluster
            .objects
            .insert(ObjectId::new(1), record(1, vec![10]));
        cluster
            .objects
            .insert(ObjectId::new(2), record(2, vec![20, 21]));
        capsule.clusters.insert(ClusterId::new(1), cluster);
        node.capsules.insert(CapsuleId::new(1), capsule);
        let routing: BTreeMap<InterfaceId, ObjectId> = [
            (InterfaceId::new(10), ObjectId::new(1)),
            (InterfaceId::new(20), ObjectId::new(2)),
            (InterfaceId::new(21), ObjectId::new(2)),
        ]
        .into_iter()
        .collect();
        (node, routing)
    }

    #[test]
    fn census_counts_the_tree() {
        let (node, _) = small_node();
        assert_eq!(node.census(), (1, 1, 2));
    }

    #[test]
    fn valid_structure_has_no_violations() {
        let (node, routing) = small_node();
        assert!(node
            .validate(&StructurePolicy::default(), &routing)
            .is_empty());
    }

    #[test]
    fn policy_limits_are_enforced() {
        let (node, routing) = small_node();
        let policy = StructurePolicy::single_object_capsules();
        let violations = node.validate(&policy, &routing);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("2 objects"), "{violations:?}");
    }

    #[test]
    fn unrouted_and_misrouted_interfaces_are_caught() {
        let (node, mut routing) = small_node();
        routing.remove(&InterfaceId::new(21));
        routing.insert(InterfaceId::new(10), ObjectId::new(2));
        let violations = node.validate(&StructurePolicy::default(), &routing);
        assert!(
            violations.iter().any(|v| v.contains("not routed")),
            "{violations:?}"
        );
        assert!(
            violations.iter().any(|v| v.contains("owned by")),
            "{violations:?}"
        );
    }

    #[test]
    fn routing_to_nonresident_object_is_caught() {
        let (node, mut routing) = small_node();
        routing.insert(InterfaceId::new(99), ObjectId::new(42));
        let violations = node.validate(&StructurePolicy::default(), &routing);
        assert!(
            violations.iter().any(|v| v.contains("non-resident")),
            "{violations:?}"
        );
    }

    #[test]
    fn location_and_ref_display() {
        let loc = Location {
            node: NodeId::new(1),
            capsule: CapsuleId::new(2),
            cluster: ClusterId::new(3),
        };
        assert_eq!(loc.to_string(), "node:1/caps:2/clus:3");
    }
}
