//! Channel components: stubs and binders (§6.1, Figure 4).
//!
//! "A channel provides the communication mechanism and contains or
//! controls the transparency functions… composed of stubs, binders, and
//! protocol objects. Stubs are used when the transparency involves some
//! knowledge of the application semantics, e.g., maintaining a log of
//! operations for an audit trail. Binders are used when application
//! semantics are not required… binders could use sequence numbers to foil
//! capture-and-replay attempts."
//!
//! A [`Stack`] composes [`ChannelComponent`]s; the protocol object itself
//! lives in the nucleus (it is the part that talks to the network).

use std::collections::BTreeSet;
use std::fmt;

use rmodp_core::codec::{syntax_for, CodecError, SyntaxId};

use crate::envelope::{Envelope, EnvelopeKind};
use rmodp_netsim::time::SimDuration;

/// A failure inside a channel component.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelError {
    /// Payload could not be re-encoded.
    Codec(CodecError),
    /// A sequence binder detected a duplicate (capture-and-replay).
    Replay {
        /// The duplicated sequence number.
        seq: u64,
    },
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::Codec(e) => write!(f, "channel codec failure: {e}"),
            ChannelError::Replay { seq } => {
                write!(f, "sequence binder rejected replayed message (seq {seq})")
            }
        }
    }
}

impl std::error::Error for ChannelError {}

impl From<CodecError> for ChannelError {
    fn from(e: CodecError) -> Self {
        ChannelError::Codec(e)
    }
}

/// One configurable element of a channel, traversed on the way out and on
/// the way in.
pub trait ChannelComponent: Send + 'static {
    /// A short component name for traces.
    fn name(&self) -> &'static str;

    /// Upcast for [`Stack::component`] downcasting. Implementations
    /// return `self`.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Transforms an envelope leaving the object (towards the network).
    ///
    /// # Errors
    ///
    /// Returns a [`ChannelError`] to abort the send.
    fn on_outgoing(&mut self, env: &mut Envelope) -> Result<(), ChannelError>;

    /// Transforms an envelope arriving from the network.
    ///
    /// # Errors
    ///
    /// Returns a [`ChannelError`] to reject the message.
    fn on_incoming(&mut self, env: &mut Envelope) -> Result<(), ChannelError>;

    /// Adjusts an already-marshalled envelope before a retransmission.
    /// Most components are idempotent across attempts and keep the
    /// default no-op; a [`SequenceBinder`] must stamp a fresh sequence
    /// number so the peer's replay check does not reject the retry.
    /// Returns `true` if the envelope changed (forcing a re-serialise).
    fn on_retransmit(&mut self, env: &mut Envelope) -> bool {
        let _ = env;
        false
    }
}

/// The stub providing **access transparency** (§9.1): marshals payloads
/// between the object's native transfer syntax and the channel's wire
/// syntax.
#[derive(Debug)]
pub struct MarshallingStub {
    /// The owner's native syntax.
    pub native: SyntaxId,
    /// The syntax agreed for the wire.
    pub wire: SyntaxId,
}

impl ChannelComponent for MarshallingStub {
    fn name(&self) -> &'static str {
        "marshalling-stub"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_outgoing(&mut self, env: &mut Envelope) -> Result<(), ChannelError> {
        if env.syntax != self.wire {
            let from = env.syntax;
            let value = syntax_for(env.syntax).decode(&env.payload)?;
            env.payload = syntax_for(self.wire).encode(&value).into();
            env.syntax = self.wire;
            emit_marshal(env, from, self.wire);
        }
        Ok(())
    }

    fn on_incoming(&mut self, env: &mut Envelope) -> Result<(), ChannelError> {
        if env.syntax != self.native {
            let from = env.syntax;
            let value = syntax_for(env.syntax).decode(&env.payload)?;
            env.payload = syntax_for(self.native).encode(&value).into();
            env.syntax = self.native;
            emit_marshal(env, from, self.native);
        }
        Ok(())
    }
}

fn emit_marshal(env: &Envelope, from: SyntaxId, to: SyntaxId) {
    rmodp_observe::event(
        rmodp_observe::Layer::Engineering,
        rmodp_observe::EventKind::Marshal,
    )
    .in_context()
    .channel(env.channel.raw())
    .detail(format!("{from:?} -> {to:?} ({} bytes)", env.payload.len()))
    .emit();
    rmodp_observe::bus::counter_add("engineering.marshals", 1);
}

/// A stub maintaining an operation log for an audit trail — the paper's
/// example of a transparency "involving some knowledge of the application
/// semantics" (§6.1): it decodes payloads to recover operation names.
#[derive(Debug, Default)]
pub struct AuditStub {
    entries: Vec<String>,
}

impl AuditStub {
    /// Creates an empty audit stub.
    pub fn new() -> Self {
        Self::default()
    }

    /// The audit log collected so far.
    pub fn entries(&self) -> &[String] {
        &self.entries
    }
}

impl ChannelComponent for AuditStub {
    fn name(&self) -> &'static str {
        "audit-stub"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_outgoing(&mut self, env: &mut Envelope) -> Result<(), ChannelError> {
        if matches!(env.kind, EnvelopeKind::Request | EnvelopeKind::Announce) {
            let value = syntax_for(env.syntax).decode(&env.payload)?;
            let op = value
                .field("op")
                .and_then(|v| v.as_text())
                .unwrap_or("<unknown>")
                .to_owned();
            self.entries.push(format!("out {:?} {op}", env.kind));
        }
        Ok(())
    }

    fn on_incoming(&mut self, env: &mut Envelope) -> Result<(), ChannelError> {
        match env.kind {
            EnvelopeKind::Request | EnvelopeKind::Announce => {
                let value = syntax_for(env.syntax).decode(&env.payload)?;
                let op = value
                    .field("op")
                    .and_then(|v| v.as_text())
                    .unwrap_or("<unknown>")
                    .to_owned();
                self.entries.push(format!("in {:?} {op}", env.kind));
            }
            EnvelopeKind::Reply => {
                self.entries.push(format!("in reply {:?}", env.status));
            }
            EnvelopeKind::Flow => {}
        }
        Ok(())
    }
}

/// A binder that stamps outgoing messages with sequence numbers and
/// rejects incoming duplicates — foiling capture-and-replay (§6.1).
#[derive(Debug)]
pub struct SequenceBinder {
    next_out: u64,
    seen_in: BTreeSet<u64>,
}

impl SequenceBinder {
    /// Creates a fresh binder.
    pub fn new() -> Self {
        Self {
            next_out: 1,
            seen_in: BTreeSet::new(),
        }
    }
}

impl Default for SequenceBinder {
    fn default() -> Self {
        Self::new()
    }
}

impl ChannelComponent for SequenceBinder {
    fn name(&self) -> &'static str {
        "sequence-binder"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_outgoing(&mut self, env: &mut Envelope) -> Result<(), ChannelError> {
        env.seq = self.next_out;
        self.next_out += 1;
        Ok(())
    }

    fn on_retransmit(&mut self, env: &mut Envelope) -> bool {
        env.seq = self.next_out;
        self.next_out += 1;
        true
    }

    fn on_incoming(&mut self, env: &mut Envelope) -> Result<(), ChannelError> {
        if env.seq == 0 {
            // Peer has no sequence binder; nothing to check.
            return Ok(());
        }
        if !self.seen_in.insert(env.seq) {
            return Err(ChannelError::Replay { seq: env.seq });
        }
        Ok(())
    }
}

/// An ordered stack of channel components. Outgoing envelopes traverse
/// components first-to-last (application-nearest first); incoming
/// envelopes traverse last-to-first.
#[derive(Default)]
pub struct Stack {
    components: Vec<Box<dyn ChannelComponent>>,
}

impl fmt::Debug for Stack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.components.iter().map(|c| c.name()).collect();
        write!(f, "Stack{names:?}")
    }
}

impl Stack {
    /// An empty (pass-through) stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a component (placed closer to the network than previous
    /// components).
    pub fn push(&mut self, component: impl ChannelComponent) -> &mut Self {
        self.components.push(Box::new(component));
        self
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Runs an envelope outwards through the stack.
    ///
    /// # Errors
    ///
    /// Propagates the first component failure.
    pub fn outgoing(&mut self, env: &mut Envelope) -> Result<(), ChannelError> {
        for c in self.components.iter_mut() {
            rmodp_observe::event(
                rmodp_observe::Layer::Engineering,
                rmodp_observe::EventKind::ChannelHop,
            )
            .in_context()
            .channel(env.channel.raw())
            .detail(format!("out:{}", c.name()))
            .emit();
            rmodp_observe::bus::counter_add("engineering.channel_hops", 1);
            c.on_outgoing(env)?;
        }
        Ok(())
    }

    /// Runs an envelope inwards through the stack (reverse order).
    ///
    /// # Errors
    ///
    /// Propagates the first component failure.
    pub fn incoming(&mut self, env: &mut Envelope) -> Result<(), ChannelError> {
        for c in self.components.iter_mut().rev() {
            rmodp_observe::event(
                rmodp_observe::Layer::Engineering,
                rmodp_observe::EventKind::ChannelHop,
            )
            .in_context()
            .channel(env.channel.raw())
            .detail(format!("in:{}", c.name()))
            .emit();
            rmodp_observe::bus::counter_add("engineering.channel_hops", 1);
            c.on_incoming(env)?;
        }
        Ok(())
    }

    /// Prepares an already-marshalled envelope for retransmission,
    /// letting each component restamp what it must (sequence numbers).
    /// Unlike [`Stack::outgoing`] this emits no hop events and performs
    /// no marshalling: the envelope's wire form is reused as-is unless a
    /// component reports a change, in which case the caller re-serialises.
    pub fn restamp(&mut self, env: &mut Envelope) -> bool {
        let mut changed = false;
        for c in self.components.iter_mut() {
            changed |= c.on_retransmit(env);
        }
        changed
    }

    /// Access to a component of a concrete type (e.g. to read an
    /// [`AuditStub`]'s log).
    pub fn component<T: ChannelComponent>(&self) -> Option<&T> {
        self.components
            .iter()
            .find_map(|c| c.as_any().downcast_ref::<T>())
    }
}

/// How many times and how patiently a caller retransmits a request.
///
/// Retransmission pacing is exponential: before retransmission `k`
/// (1-based) the caller pauses `min(backoff_base · 2^(k-1), backoff_cap)`
/// plus a deterministic jitter drawn from the engine's seeded stream in
/// `[0, jitter]`. The whole call — every attempt and every pause — is
/// bounded by `deadline`; once it passes, no further retransmission is
/// made and the call fails with `CallError::Timeout`.
///
/// `RetryPolicy::one_shot()` (a single attempt, no retransmission) gives
/// **at-most-once** delivery. Any policy with `retries > 0` gives
/// at-least-once *transmission*; combined with the nucleus's request-id
/// dedup cache the server still *executes* at most once, so the observed
/// semantics are effectively exactly-once while the server stays
/// reachable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How long to wait for a reply before giving up on an attempt.
    pub timeout: SimDuration,
    /// How many retransmissions (0 = single attempt).
    pub retries: u32,
    /// Pause before the first retransmission; doubles each time.
    pub backoff_base: SimDuration,
    /// Ceiling on the exponential pause.
    pub backoff_cap: SimDuration,
    /// Maximum deterministic jitter added to each pause.
    pub jitter: SimDuration,
    /// Total budget for the call across all attempts and pauses.
    pub deadline: SimDuration,
}

impl RetryPolicy {
    /// A single attempt with no retransmission: at-most-once delivery.
    /// This is what a channel configured with `retry: None` uses.
    pub fn one_shot() -> Self {
        Self {
            timeout: SimDuration::from_millis(50),
            retries: 0,
            backoff_base: SimDuration::ZERO,
            backoff_cap: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            deadline: SimDuration::from_millis(50),
        }
    }

    /// A hardened policy for lossy links: 8 retransmissions with
    /// exponential backoff (2 ms doubling, capped at 40 ms), 1 ms jitter,
    /// all within a 600 ms budget.
    pub fn reliable() -> Self {
        Self {
            timeout: SimDuration::from_millis(25),
            retries: 8,
            backoff_base: SimDuration::from_millis(2),
            backoff_cap: SimDuration::from_millis(40),
            jitter: SimDuration::from_millis(1),
            deadline: SimDuration::from_millis(600),
        }
    }

    /// Sets the per-attempt reply timeout.
    pub fn with_timeout(mut self, timeout: SimDuration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sets the retransmission count.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Sets the exponential backoff base and cap.
    pub fn with_backoff(mut self, base: SimDuration, cap: SimDuration) -> Self {
        self.backoff_base = base;
        self.backoff_cap = cap;
        self
    }

    /// Sets the maximum jitter added to each backoff pause.
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets the total call budget.
    pub fn with_deadline(mut self, deadline: SimDuration) -> Self {
        self.deadline = deadline;
        self
    }

    /// The pause before retransmission `k` (1-based), without jitter.
    pub fn backoff_delay(&self, k: u32) -> SimDuration {
        let micros = self
            .backoff_base
            .as_micros()
            .saturating_mul(1u64.checked_shl(k.saturating_sub(1)).unwrap_or(u64::MAX));
        SimDuration::from_micros(micros.min(self.backoff_cap.as_micros()))
    }
}

impl Default for RetryPolicy {
    /// The default is the hardened [`RetryPolicy::reliable`] policy. For
    /// the old single-attempt behaviour use [`RetryPolicy::one_shot`] or
    /// leave `ChannelConfig::retry` as `None`.
    fn default() -> Self {
        Self::reliable()
    }
}

/// Per-channel circuit breaker configuration. The breaker counts
/// *consecutive timeouts* (replies of any status count as liveness); once
/// `failure_threshold` is reached the breaker opens and calls fail fast
/// with `CallError::CircuitOpen` until `cooldown` has elapsed, after
/// which one probe call is let through (half-open). A probe reply closes
/// the breaker; a probe timeout re-opens it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive timeouts before the breaker opens.
    pub failure_threshold: u32,
    /// How long the breaker stays open before allowing a probe.
    pub cooldown: SimDuration,
    /// Consecutive probe successes required to close again.
    pub success_to_close: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            cooldown: SimDuration::from_millis(200),
            success_to_close: 1,
        }
    }
}

/// The observable state of a channel's circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerPhase {
    /// Calls flow normally; consecutive timeouts are counted.
    Closed,
    /// Calls fail fast until the cooldown elapses.
    Open,
    /// The cooldown elapsed; probe calls are allowed through.
    HalfOpen,
}

impl BreakerPhase {
    /// Stable lower-case name for traces and metrics.
    pub fn name(self) -> &'static str {
        match self {
            BreakerPhase::Closed => "closed",
            BreakerPhase::Open => "open",
            BreakerPhase::HalfOpen => "half-open",
        }
    }
}

/// Declarative channel configuration: which components each side's stack
/// gets (Figure 4's shaded area).
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelConfig {
    /// The transfer syntax agreed for the wire.
    pub wire_syntax: SyntaxId,
    /// Add sequence binders (replay protection).
    pub sequence: bool,
    /// Add audit stubs (operation log).
    pub audit: bool,
    /// Retransmission policy for requests. `None` means a single attempt
    /// per call ([`RetryPolicy::one_shot`]): at-most-once delivery.
    pub retry: Option<RetryPolicy>,
    /// Circuit breaker guarding the invocation path. `None` disables it.
    pub breaker: Option<BreakerConfig>,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        Self {
            wire_syntax: SyntaxId::Binary,
            sequence: false,
            audit: false,
            retry: None,
            breaker: None,
        }
    }
}

impl ChannelConfig {
    /// Builds one side's component stack given that side's native syntax.
    pub fn build_stack(&self, native: SyntaxId) -> Stack {
        let mut stack = Stack::new();
        if self.audit {
            stack.push(AuditStub::new());
        }
        stack.push(MarshallingStub {
            native,
            wire: self.wire_syntax,
        });
        if self.sequence {
            stack.push(SequenceBinder::new());
        }
        stack
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmodp_core::id::{ChannelId, InterfaceId};
    use rmodp_core::value::Value;

    fn invocation_payload(syntax: SyntaxId) -> Vec<u8> {
        let v = Value::record([
            ("op", Value::text("Deposit")),
            ("args", Value::record([("d", Value::Int(100))])),
        ]);
        syntax_for(syntax).encode(&v)
    }

    fn request(syntax: SyntaxId) -> Envelope {
        Envelope::request(
            ChannelId::new(1),
            1,
            InterfaceId::new(1),
            syntax,
            invocation_payload(syntax),
        )
    }

    #[test]
    fn marshalling_stub_converts_between_syntaxes() {
        let mut stub = MarshallingStub {
            native: SyntaxId::Text,
            wire: SyntaxId::Binary,
        };
        let mut env = request(SyntaxId::Text);
        stub.on_outgoing(&mut env).unwrap();
        assert_eq!(env.syntax, SyntaxId::Binary);
        let decoded = syntax_for(SyntaxId::Binary).decode(&env.payload).unwrap();
        assert_eq!(decoded.field("op"), Some(&Value::text("Deposit")));
        stub.on_incoming(&mut env).unwrap();
        assert_eq!(env.syntax, SyntaxId::Text);
    }

    #[test]
    fn marshalling_stub_is_identity_when_syntaxes_agree() {
        let mut stub = MarshallingStub {
            native: SyntaxId::Binary,
            wire: SyntaxId::Binary,
        };
        let mut env = request(SyntaxId::Binary);
        let before = env.payload.clone();
        stub.on_outgoing(&mut env).unwrap();
        assert_eq!(env.payload, before);
    }

    #[test]
    fn sequence_binder_stamps_and_detects_replay() {
        let mut client = SequenceBinder::new();
        let mut server = SequenceBinder::new();
        let mut env = request(SyntaxId::Binary);
        client.on_outgoing(&mut env).unwrap();
        assert_eq!(env.seq, 1);
        server.on_incoming(&mut env).unwrap();
        // A captured copy replayed later is rejected.
        let mut replayed = env.clone();
        let err = server.on_incoming(&mut replayed).unwrap_err();
        assert_eq!(err, ChannelError::Replay { seq: 1 });
        // Fresh messages keep flowing.
        let mut env2 = request(SyntaxId::Binary);
        client.on_outgoing(&mut env2).unwrap();
        assert_eq!(env2.seq, 2);
        server.on_incoming(&mut env2).unwrap();
    }

    #[test]
    fn unstamped_messages_pass_sequence_binder() {
        let mut server = SequenceBinder::new();
        let mut env = request(SyntaxId::Binary);
        assert_eq!(env.seq, 0);
        server.on_incoming(&mut env).unwrap();
        server.on_incoming(&mut env).unwrap();
    }

    #[test]
    fn audit_stub_logs_operations() {
        let mut audit = AuditStub::new();
        let mut env = request(SyntaxId::Binary);
        audit.on_outgoing(&mut env).unwrap();
        audit.on_incoming(&mut env).unwrap();
        assert_eq!(audit.entries().len(), 2);
        assert!(audit.entries()[0].contains("Deposit"));
        assert!(audit.entries()[1].contains("Deposit"));
    }

    #[test]
    fn stack_applies_outgoing_forward_incoming_reverse() {
        // Client native text, wire binary, with sequencing.
        let cfg = ChannelConfig {
            wire_syntax: SyntaxId::Binary,
            sequence: true,
            audit: true,
            retry: None,
            breaker: None,
        };
        let mut client = cfg.build_stack(SyntaxId::Text);
        let mut server = cfg.build_stack(SyntaxId::Binary);
        assert_eq!(client.len(), 3);

        let mut env = request(SyntaxId::Text);
        client.outgoing(&mut env).unwrap();
        assert_eq!(env.syntax, SyntaxId::Binary);
        assert_eq!(env.seq, 1);

        server.incoming(&mut env).unwrap();
        assert_eq!(env.syntax, SyntaxId::Binary); // server native is binary

        // Replay through the server stack is rejected by its binder.
        let mut replay = env.clone();
        // The envelope seq survived; incoming checks happen binder-first.
        replay.syntax = SyntaxId::Binary;
        let err = server.incoming(&mut replay).unwrap_err();
        assert!(matches!(err, ChannelError::Replay { .. }));
    }

    #[test]
    fn empty_stack_is_passthrough() {
        let mut stack = Stack::new();
        assert!(stack.is_empty());
        let mut env = request(SyntaxId::Binary);
        let before = env.clone();
        stack.outgoing(&mut env).unwrap();
        stack.incoming(&mut env).unwrap();
        assert_eq!(env, before);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy::reliable();
        assert_eq!(p.backoff_delay(1), SimDuration::from_millis(2));
        assert_eq!(p.backoff_delay(2), SimDuration::from_millis(4));
        assert_eq!(p.backoff_delay(5), SimDuration::from_millis(32));
        assert_eq!(p.backoff_delay(6), SimDuration::from_millis(40));
        assert_eq!(p.backoff_delay(60), SimDuration::from_millis(40));
        let one = RetryPolicy::one_shot();
        assert_eq!(one.retries, 0);
        assert_eq!(one.backoff_delay(1), SimDuration::ZERO);
    }

    #[test]
    fn restamp_gives_retransmissions_fresh_sequence_numbers() {
        let cfg = ChannelConfig {
            wire_syntax: SyntaxId::Binary,
            sequence: true,
            audit: false,
            retry: None,
            breaker: None,
        };
        let mut client = cfg.build_stack(SyntaxId::Binary);
        let mut server = cfg.build_stack(SyntaxId::Binary);
        let mut env = request(SyntaxId::Binary);
        client.outgoing(&mut env).unwrap();
        assert_eq!(env.seq, 1);
        server.incoming(&mut env).unwrap();
        // A retransmission restamps instead of replaying seq 1.
        assert!(client.restamp(&mut env));
        assert_eq!(env.seq, 2);
        server.incoming(&mut env).unwrap();
        // A stack without binders leaves the wire form untouched.
        let mut plain = ChannelConfig::default().build_stack(SyntaxId::Binary);
        let mut env2 = request(SyntaxId::Binary);
        plain.outgoing(&mut env2).unwrap();
        assert!(!plain.restamp(&mut env2));
    }

    #[test]
    fn corrupt_payload_surfaces_codec_error() {
        let mut stub = MarshallingStub {
            native: SyntaxId::Text,
            wire: SyntaxId::Binary,
        };
        let mut env = request(SyntaxId::Text);
        env.payload = vec![0xff, 0xff].into();
        let err = stub.on_outgoing(&mut env).unwrap_err();
        assert!(matches!(err, ChannelError::Codec(_)));
    }
}
