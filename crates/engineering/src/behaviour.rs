//! Behaviour of basic engineering objects.
//!
//! A basic engineering object (BEO) corresponds to an object in the
//! computational specification (§6). Its durable state is a [`Value`]
//! owned by the cluster (so checkpointing, deactivation and migration are
//! behaviour-independent); the behaviour itself is stateless-by-contract
//! and recreated from a [`BehaviourRegistry`] on reactivation.

use std::collections::BTreeMap;
use std::fmt;

use rmodp_computational::signature::{Invocation, Termination};
use rmodp_core::value::Value;

/// The executable behaviour of a basic engineering object.
///
/// All durable state must live in the `state` value passed to each call —
/// that is what checkpoints capture. Behaviour instances may keep caches,
/// but anything needed to survive deactivation/migration belongs in
/// `state`.
pub trait ServerBehaviour: 'static {
    /// Handles an operation invocation, mutating the object state and
    /// returning a termination.
    fn invoke(&mut self, state: &mut Value, invocation: &Invocation) -> Termination;

    /// Handles one item of an incoming stream flow. Default: ignored.
    fn on_flow(&mut self, state: &mut Value, flow: &str, item: &Value) {
        let _ = (state, flow, item);
    }
}

/// Recreates behaviours by name — used when clusters are instantiated,
/// reactivated or migrated (§8.1's cluster management functions).
pub struct BehaviourRegistry {
    factories: BTreeMap<String, Box<dyn Fn() -> Box<dyn ServerBehaviour>>>,
}

impl fmt::Debug for BehaviourRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&String> = self.factories.keys().collect();
        write!(f, "BehaviourRegistry{names:?}")
    }
}

impl Default for BehaviourRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl BehaviourRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self {
            factories: BTreeMap::new(),
        }
    }

    /// Registers a behaviour factory under a name (replacing any previous
    /// factory with that name).
    pub fn register<F, B>(&mut self, name: impl Into<String>, factory: F)
    where
        F: Fn() -> B + 'static,
        B: ServerBehaviour,
    {
        self.factories
            .insert(name.into(), Box::new(move || Box::new(factory())));
    }

    /// Instantiates a behaviour.
    pub fn create(&self, name: &str) -> Option<Box<dyn ServerBehaviour>> {
        self.factories.get(name).map(|f| f())
    }

    /// Whether a behaviour name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }
}

/// A behaviour that echoes every invocation back as an `OK` termination
/// carrying the arguments — useful for channel and latency tests.
#[derive(Debug, Default)]
pub struct EchoBehaviour;

impl ServerBehaviour for EchoBehaviour {
    fn invoke(&mut self, _state: &mut Value, invocation: &Invocation) -> Termination {
        Termination::ok(Value::record([
            ("op", Value::text(invocation.operation.clone())),
            ("echo", invocation.args.clone()),
        ]))
    }
}

/// A behaviour exposing a counter in its state:
///
/// - `Add {k}` → `OK {n}` — adds `k` and returns the new total;
/// - `Get {}` → `OK {n}`;
/// - any other operation → `Error`.
///
/// Flows named `"increments"` add their integer items to the counter.
#[derive(Debug, Default)]
pub struct CounterBehaviour;

impl CounterBehaviour {
    /// The initial state a counter object should be created with.
    pub fn initial_state() -> Value {
        Value::record([("n", Value::Int(0))])
    }

    fn current(state: &Value) -> i64 {
        state.field("n").and_then(Value::as_int).unwrap_or(0)
    }
}

impl ServerBehaviour for CounterBehaviour {
    fn invoke(&mut self, state: &mut Value, invocation: &Invocation) -> Termination {
        match invocation.operation.as_str() {
            "Add" => {
                let k = invocation.args.field("k").and_then(Value::as_int);
                match k {
                    Some(k) => {
                        let n = Self::current(state) + k;
                        state.set_field("n", Value::Int(n));
                        Termination::ok(Value::record([("n", Value::Int(n))]))
                    }
                    None => Termination::error("Add requires integer parameter k"),
                }
            }
            "Get" => Termination::ok(Value::record([("n", Value::Int(Self::current(state)))])),
            other => Termination::error(format!("unknown operation {other}")),
        }
    }

    fn on_flow(&mut self, state: &mut Value, flow: &str, item: &Value) {
        if flow == "increments" {
            if let Some(k) = item.as_int() {
                let n = Self::current(state) + k;
                state.set_field("n", Value::Int(n));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_returns_arguments() {
        let mut b = EchoBehaviour;
        let mut state = Value::record::<&str, _>([]);
        let inv = Invocation::new("Ping", Value::record([("x", Value::Int(1))]));
        let t = b.invoke(&mut state, &inv);
        assert!(t.is_ok());
        assert_eq!(t.results.path(&["echo", "x"]), Some(&Value::Int(1)));
        assert_eq!(t.results.field("op"), Some(&Value::text("Ping")));
    }

    #[test]
    fn counter_adds_gets_and_rejects() {
        let mut b = CounterBehaviour;
        let mut state = CounterBehaviour::initial_state();
        let t = b.invoke(
            &mut state,
            &Invocation::new("Add", Value::record([("k", Value::Int(5))])),
        );
        assert_eq!(t.results.field("n"), Some(&Value::Int(5)));
        let t = b.invoke(
            &mut state,
            &Invocation::new("Get", Value::record::<&str, _>([])),
        );
        assert_eq!(t.results.field("n"), Some(&Value::Int(5)));
        let t = b.invoke(
            &mut state,
            &Invocation::new("Nope", Value::record::<&str, _>([])),
        );
        assert!(!t.is_ok());
        let t = b.invoke(
            &mut state,
            &Invocation::new("Add", Value::record::<&str, _>([])),
        );
        assert!(!t.is_ok());
    }

    #[test]
    fn counter_consumes_increment_flows() {
        let mut b = CounterBehaviour;
        let mut state = CounterBehaviour::initial_state();
        b.on_flow(&mut state, "increments", &Value::Int(3));
        b.on_flow(&mut state, "increments", &Value::Int(4));
        b.on_flow(&mut state, "other", &Value::Int(100));
        b.on_flow(&mut state, "increments", &Value::text("junk"));
        assert_eq!(state.field("n"), Some(&Value::Int(7)));
    }

    #[test]
    fn registry_creates_by_name() {
        let mut reg = BehaviourRegistry::new();
        reg.register("counter", CounterBehaviour::default);
        reg.register("echo", || EchoBehaviour);
        assert!(reg.contains("counter"));
        assert!(!reg.contains("ghost"));
        let mut b = reg.create("counter").unwrap();
        let mut state = CounterBehaviour::initial_state();
        let t = b.invoke(
            &mut state,
            &Invocation::new("Get", Value::record::<&str, _>([])),
        );
        assert!(t.is_ok());
        assert!(reg.create("ghost").is_none());
    }
}
