//! Behaviour of basic engineering objects.
//!
//! A basic engineering object (BEO) corresponds to an object in the
//! computational specification (§6). Its durable state is a [`Value`]
//! owned by the cluster (so checkpointing, deactivation and migration are
//! behaviour-independent); the behaviour itself is stateless-by-contract
//! and recreated from a [`BehaviourRegistry`] on reactivation.

use std::collections::BTreeMap;
use std::fmt;

use rmodp_computational::signature::{Invocation, Termination};
use rmodp_core::value::Value;

/// The executable behaviour of a basic engineering object.
///
/// All durable state must live in the `state` value passed to each call —
/// that is what checkpoints capture. Behaviour instances may keep caches,
/// but anything needed to survive deactivation/migration belongs in
/// `state`.
pub trait ServerBehaviour: Send + 'static {
    /// Handles an operation invocation, mutating the object state and
    /// returning a termination.
    fn invoke(&mut self, state: &mut Value, invocation: &Invocation) -> Termination;

    /// Handles one item of an incoming stream flow. Default: ignored.
    fn on_flow(&mut self, state: &mut Value, flow: &str, item: &Value) {
        let _ = (state, flow, item);
    }
}

/// Recreates behaviours by name — used when clusters are instantiated,
/// reactivated or migrated (§8.1's cluster management functions).
pub struct BehaviourRegistry {
    factories: BTreeMap<String, Box<dyn Fn() -> Box<dyn ServerBehaviour>>>,
}

impl fmt::Debug for BehaviourRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&String> = self.factories.keys().collect();
        write!(f, "BehaviourRegistry{names:?}")
    }
}

impl Default for BehaviourRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl BehaviourRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self {
            factories: BTreeMap::new(),
        }
    }

    /// Registers a behaviour factory under a name (replacing any previous
    /// factory with that name).
    pub fn register<F, B>(&mut self, name: impl Into<String>, factory: F)
    where
        F: Fn() -> B + 'static,
        B: ServerBehaviour,
    {
        self.factories
            .insert(name.into(), Box::new(move || Box::new(factory())));
    }

    /// Instantiates a behaviour.
    pub fn create(&self, name: &str) -> Option<Box<dyn ServerBehaviour>> {
        self.factories.get(name).map(|f| f())
    }

    /// Whether a behaviour name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }
}

/// A behaviour that echoes every invocation back as an `OK` termination
/// carrying the arguments — useful for channel and latency tests.
#[derive(Debug, Default)]
pub struct EchoBehaviour;

impl ServerBehaviour for EchoBehaviour {
    fn invoke(&mut self, _state: &mut Value, invocation: &Invocation) -> Termination {
        Termination::ok(Value::record([
            ("op", Value::text(invocation.operation.clone())),
            ("echo", invocation.args.clone()),
        ]))
    }
}

/// A behaviour exposing a counter in its state:
///
/// - `Add {k}` → `OK {n}` — adds `k` and returns the new total;
/// - `Get {}` → `OK {n}`;
/// - any other operation → `Error`.
///
/// Flows named `"increments"` add their integer items to the counter.
#[derive(Debug, Default)]
pub struct CounterBehaviour;

impl CounterBehaviour {
    /// The initial state a counter object should be created with.
    pub fn initial_state() -> Value {
        Value::record([("n", Value::Int(0))])
    }

    fn current(state: &Value) -> i64 {
        state.field("n").and_then(Value::as_int).unwrap_or(0)
    }
}

impl ServerBehaviour for CounterBehaviour {
    fn invoke(&mut self, state: &mut Value, invocation: &Invocation) -> Termination {
        match invocation.operation.as_str() {
            "Add" => {
                let k = invocation.args.field("k").and_then(Value::as_int);
                match k {
                    Some(k) => {
                        let n = Self::current(state) + k;
                        state.set_field("n", Value::Int(n));
                        Termination::ok(Value::record([("n", Value::Int(n))]))
                    }
                    None => Termination::error("Add requires integer parameter k"),
                }
            }
            "Get" => Termination::ok(Value::record([("n", Value::Int(Self::current(state)))])),
            other => Termination::error(format!("unknown operation {other}")),
        }
    }

    fn on_flow(&mut self, state: &mut Value, flow: &str, item: &Value) {
        if flow == "increments" {
            if let Some(k) = item.as_int() {
                let n = Self::current(state) + k;
                state.set_field("n", Value::Int(n));
            }
        }
    }
}

/// An epoch-fencing, quorum-replicated counter: the replica-side state
/// machine of the group/replication transparencies (§8.2, §9).
///
/// The state record holds the *committed* value `n`, the committed
/// watermark `commit`, the highest *staged* sequence `applied`, a
/// contiguous staged suffix `staged` (records `{seq, k}` with
/// `commit < seq <= applied`), and the replica's current `epoch`.
///
/// Operations (all carry the caller's epoch; a caller whose epoch is
/// *behind* the replica's is **fenced** with a `Fenced` termination —
/// this is what makes a partitioned stale leader harmless):
///
/// - `NewEpoch {epoch}` — adopt a strictly higher epoch and return
///   `{applied, commit, n, epoch}` as an election acknowledgement;
/// - `Apply {epoch, seq, k, commit}` — stage `{seq, k}` (idempotent at
///   or below `applied`, rejected with `Gap` above `applied + 1` so the
///   staged log stays a gap-free prefix), then fold every staged entry
///   at or below `commit` into `n`;
/// - `Commit {epoch, commit}` — advance the committed watermark alone;
/// - `Sync {epoch, n, commit}` — absolute state transfer for a lagging
///   or rejoining member (discards its staged suffix: anything staged
///   but uncommitted at sync time was never quorum-committed);
/// - `Get {}` — return `{n, commit, epoch, applied}`; **committed state
///   only**, a reader can never observe a staged (uncommitted) update.
#[derive(Debug, Default)]
pub struct QuorumCounterBehaviour;

/// The termination name a replica answers when it fences a stale-epoch
/// write ([`QuorumCounterBehaviour`]).
pub const FENCED: &str = "Fenced";

/// The termination name a replica answers when an `Apply` would leave a
/// hole in its staged log ([`QuorumCounterBehaviour`]).
pub const GAP: &str = "Gap";

impl QuorumCounterBehaviour {
    /// The initial state a quorum counter object should be created with.
    pub fn initial_state() -> Value {
        Value::record([
            ("epoch", Value::Int(0)),
            ("n", Value::Int(0)),
            ("commit", Value::Int(0)),
            ("applied", Value::Int(0)),
            ("staged", Value::Seq(Vec::new())),
        ])
    }

    fn int(state: &Value, field: &str) -> i64 {
        state.field(field).and_then(Value::as_int).unwrap_or(0)
    }

    fn arg(invocation: &Invocation, field: &str) -> Option<i64> {
        invocation.args.field(field).and_then(Value::as_int)
    }

    /// Folds every staged entry with `seq <= through` into `n` and
    /// advances `commit`. `through` is clamped to `applied`.
    fn commit_through(state: &mut Value, through: i64) {
        let through = through.min(Self::int(state, "applied"));
        if through <= Self::int(state, "commit") {
            return;
        }
        let mut n = Self::int(state, "n");
        let staged = state
            .field("staged")
            .and_then(Value::as_seq)
            .map(<[Value]>::to_vec)
            .unwrap_or_default();
        let mut rest = Vec::new();
        for entry in staged {
            let seq = entry.field("seq").and_then(Value::as_int).unwrap_or(0);
            if seq <= through {
                n += entry.field("k").and_then(Value::as_int).unwrap_or(0);
            } else {
                rest.push(entry);
            }
        }
        state.set_field("n", Value::Int(n));
        state.set_field("commit", Value::Int(through));
        state.set_field("staged", Value::Seq(rest));
    }

    /// Epoch admission: fences strictly lower epochs, adopts strictly
    /// higher ones (a follower learning of a new leader). Returns the
    /// fencing termination to answer, if any.
    fn admit_epoch(state: &mut Value, epoch: i64) -> Option<Termination> {
        let mine = Self::int(state, "epoch");
        if epoch < mine {
            return Some(Termination::new(
                FENCED,
                Value::record([("epoch", Value::Int(mine)), ("stale", Value::Int(epoch))]),
            ));
        }
        if epoch > mine {
            state.set_field("epoch", Value::Int(epoch));
        }
        None
    }

    fn ack(state: &Value) -> Termination {
        Termination::ok(Value::record([
            ("applied", Value::Int(Self::int(state, "applied"))),
            ("commit", Value::Int(Self::int(state, "commit"))),
            ("n", Value::Int(Self::int(state, "n"))),
            ("epoch", Value::Int(Self::int(state, "epoch"))),
        ]))
    }
}

impl ServerBehaviour for QuorumCounterBehaviour {
    fn invoke(&mut self, state: &mut Value, invocation: &Invocation) -> Termination {
        match invocation.operation.as_str() {
            "NewEpoch" => {
                let Some(epoch) = Self::arg(invocation, "epoch") else {
                    return Termination::error("NewEpoch requires integer parameter epoch");
                };
                // An election demands a *strictly* higher epoch: equal is
                // as stale as lower (two candidates must never both win).
                if epoch <= Self::int(state, "epoch") {
                    return Termination::new(
                        FENCED,
                        Value::record([
                            ("epoch", Value::Int(Self::int(state, "epoch"))),
                            ("stale", Value::Int(epoch)),
                        ]),
                    );
                }
                state.set_field("epoch", Value::Int(epoch));
                Self::ack(state)
            }
            "Apply" => {
                let (Some(epoch), Some(seq), Some(k)) = (
                    Self::arg(invocation, "epoch"),
                    Self::arg(invocation, "seq"),
                    Self::arg(invocation, "k"),
                ) else {
                    return Termination::error("Apply requires epoch, seq and k");
                };
                if let Some(fenced) = Self::admit_epoch(state, epoch) {
                    return fenced;
                }
                let applied = Self::int(state, "applied");
                if seq == applied + 1 {
                    if let Some(Value::Seq(staged)) = state.field_mut("staged") {
                        staged.push(Value::record([
                            ("seq", Value::Int(seq)),
                            ("k", Value::Int(k)),
                        ]));
                    }
                    state.set_field("applied", Value::Int(seq));
                } else if seq > applied + 1 {
                    return Termination::new(
                        GAP,
                        Value::record([("applied", Value::Int(applied)), ("seq", Value::Int(seq))]),
                    );
                }
                // seq <= applied is an idempotent retransmission.
                if let Some(commit) = Self::arg(invocation, "commit") {
                    Self::commit_through(state, commit);
                }
                Self::ack(state)
            }
            "Commit" => {
                let (Some(epoch), Some(commit)) = (
                    Self::arg(invocation, "epoch"),
                    Self::arg(invocation, "commit"),
                ) else {
                    return Termination::error("Commit requires epoch and commit");
                };
                if let Some(fenced) = Self::admit_epoch(state, epoch) {
                    return fenced;
                }
                Self::commit_through(state, commit);
                Self::ack(state)
            }
            "Sync" => {
                let (Some(epoch), Some(n), Some(commit)) = (
                    Self::arg(invocation, "epoch"),
                    Self::arg(invocation, "n"),
                    Self::arg(invocation, "commit"),
                ) else {
                    return Termination::error("Sync requires epoch, n and commit");
                };
                if let Some(fenced) = Self::admit_epoch(state, epoch) {
                    return fenced;
                }
                if commit >= Self::int(state, "commit") {
                    state.set_field("n", Value::Int(n));
                    state.set_field("commit", Value::Int(commit));
                    state.set_field("applied", Value::Int(commit));
                    state.set_field("staged", Value::Seq(Vec::new()));
                }
                Self::ack(state)
            }
            "Get" => Self::ack(state),
            other => Termination::error(format!("unknown operation {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_returns_arguments() {
        let mut b = EchoBehaviour;
        let mut state = Value::record::<&str, _>([]);
        let inv = Invocation::new("Ping", Value::record([("x", Value::Int(1))]));
        let t = b.invoke(&mut state, &inv);
        assert!(t.is_ok());
        assert_eq!(t.results.path(&["echo", "x"]), Some(&Value::Int(1)));
        assert_eq!(t.results.field("op"), Some(&Value::text("Ping")));
    }

    #[test]
    fn counter_adds_gets_and_rejects() {
        let mut b = CounterBehaviour;
        let mut state = CounterBehaviour::initial_state();
        let t = b.invoke(
            &mut state,
            &Invocation::new("Add", Value::record([("k", Value::Int(5))])),
        );
        assert_eq!(t.results.field("n"), Some(&Value::Int(5)));
        let t = b.invoke(
            &mut state,
            &Invocation::new("Get", Value::record::<&str, _>([])),
        );
        assert_eq!(t.results.field("n"), Some(&Value::Int(5)));
        let t = b.invoke(
            &mut state,
            &Invocation::new("Nope", Value::record::<&str, _>([])),
        );
        assert!(!t.is_ok());
        let t = b.invoke(
            &mut state,
            &Invocation::new("Add", Value::record::<&str, _>([])),
        );
        assert!(!t.is_ok());
    }

    #[test]
    fn counter_consumes_increment_flows() {
        let mut b = CounterBehaviour;
        let mut state = CounterBehaviour::initial_state();
        b.on_flow(&mut state, "increments", &Value::Int(3));
        b.on_flow(&mut state, "increments", &Value::Int(4));
        b.on_flow(&mut state, "other", &Value::Int(100));
        b.on_flow(&mut state, "increments", &Value::text("junk"));
        assert_eq!(state.field("n"), Some(&Value::Int(7)));
    }

    fn apply(epoch: i64, seq: i64, k: i64, commit: i64) -> Invocation {
        Invocation::new(
            "Apply",
            Value::record([
                ("epoch", Value::Int(epoch)),
                ("seq", Value::Int(seq)),
                ("k", Value::Int(k)),
                ("commit", Value::Int(commit)),
            ]),
        )
    }

    #[test]
    fn quorum_counter_stages_then_commits() {
        let mut b = QuorumCounterBehaviour;
        let mut state = QuorumCounterBehaviour::initial_state();
        // Stage two entries; nothing is committed yet, so Get shows 0.
        assert!(b.invoke(&mut state, &apply(1, 1, 5, 0)).is_ok());
        assert!(b.invoke(&mut state, &apply(1, 2, 7, 0)).is_ok());
        let t = b.invoke(
            &mut state,
            &Invocation::new("Get", Value::record::<&str, _>([])),
        );
        assert_eq!(t.results.field("n"), Some(&Value::Int(0)));
        assert_eq!(t.results.field("applied"), Some(&Value::Int(2)));
        // Committing through 2 folds both staged entries into n.
        let t = b.invoke(
            &mut state,
            &Invocation::new(
                "Commit",
                Value::record([("epoch", Value::Int(1)), ("commit", Value::Int(2))]),
            ),
        );
        assert_eq!(t.results.field("n"), Some(&Value::Int(12)));
        assert_eq!(t.results.field("commit"), Some(&Value::Int(2)));
    }

    #[test]
    fn quorum_counter_fences_stale_epochs() {
        let mut b = QuorumCounterBehaviour;
        let mut state = QuorumCounterBehaviour::initial_state();
        assert!(b.invoke(&mut state, &apply(3, 1, 1, 1)).is_ok());
        // A leader still at epoch 2 is fenced; nothing changes.
        let t = b.invoke(&mut state, &apply(2, 2, 9, 2));
        assert_eq!(t.name, FENCED);
        let t = b.invoke(
            &mut state,
            &Invocation::new("Get", Value::record::<&str, _>([])),
        );
        assert_eq!(t.results.field("n"), Some(&Value::Int(1)));
        assert_eq!(t.results.field("applied"), Some(&Value::Int(1)));
        // NewEpoch at an equal epoch is just as stale.
        let t = b.invoke(
            &mut state,
            &Invocation::new("NewEpoch", Value::record([("epoch", Value::Int(3))])),
        );
        assert_eq!(t.name, FENCED);
        // A strictly higher epoch wins and acks the applied watermark.
        let t = b.invoke(
            &mut state,
            &Invocation::new("NewEpoch", Value::record([("epoch", Value::Int(4))])),
        );
        assert!(t.is_ok());
        assert_eq!(t.results.field("applied"), Some(&Value::Int(1)));
    }

    #[test]
    fn quorum_counter_rejects_gaps_and_dedups_retransmits() {
        let mut b = QuorumCounterBehaviour;
        let mut state = QuorumCounterBehaviour::initial_state();
        assert!(b.invoke(&mut state, &apply(1, 1, 5, 0)).is_ok());
        // A hole is refused, so the staged log stays a contiguous prefix.
        let t = b.invoke(&mut state, &apply(1, 3, 9, 0));
        assert_eq!(t.name, GAP);
        // Retransmitting seq 1 is idempotent.
        assert!(b.invoke(&mut state, &apply(1, 1, 5, 0)).is_ok());
        let t = b.invoke(&mut state, &apply(1, 2, 2, 2));
        assert_eq!(t.results.field("n"), Some(&Value::Int(7)));
        assert_eq!(t.results.field("applied"), Some(&Value::Int(2)));
    }

    #[test]
    fn quorum_counter_sync_overwrites_lagging_state() {
        let mut b = QuorumCounterBehaviour;
        let mut state = QuorumCounterBehaviour::initial_state();
        assert!(b.invoke(&mut state, &apply(1, 1, 5, 0)).is_ok());
        // Seq 1 was staged but never committed: the new leader's sync
        // (which continues the history from its own committed prefix)
        // replaces it wholesale.
        let t = b.invoke(
            &mut state,
            &Invocation::new(
                "Sync",
                Value::record([
                    ("epoch", Value::Int(2)),
                    ("n", Value::Int(40)),
                    ("commit", Value::Int(6)),
                ]),
            ),
        );
        assert!(t.is_ok());
        let t = b.invoke(
            &mut state,
            &Invocation::new("Get", Value::record::<&str, _>([])),
        );
        assert_eq!(t.results.field("n"), Some(&Value::Int(40)));
        assert_eq!(t.results.field("commit"), Some(&Value::Int(6)));
        assert_eq!(t.results.field("applied"), Some(&Value::Int(6)));
        assert_eq!(t.results.field("epoch"), Some(&Value::Int(2)));
        // The leader continues at seq 7 under the new epoch.
        let t = b.invoke(&mut state, &apply(2, 7, 2, 7));
        assert_eq!(t.results.field("n"), Some(&Value::Int(42)));
    }

    #[test]
    fn registry_creates_by_name() {
        let mut reg = BehaviourRegistry::new();
        reg.register("counter", CounterBehaviour::default);
        reg.register("echo", || EchoBehaviour);
        assert!(reg.contains("counter"));
        assert!(!reg.contains("ghost"));
        let mut b = reg.create("counter").unwrap();
        let mut state = CounterBehaviour::initial_state();
        let t = b.invoke(
            &mut state,
            &Invocation::new("Get", Value::record::<&str, _>([])),
        );
        assert!(t.is_ok());
        assert!(reg.create("ghost").is_none());
    }
}
