//! The engineering wire format: envelopes exchanged between protocol
//! objects over the communications interface (§6.1).

use bytes::{Buf, BufMut};
use rmodp_core::codec::SyntaxId;
use rmodp_core::id::{ChannelId, InterfaceId};
use rmodp_kernel::payload::Payload;
use std::fmt;

/// What an envelope carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvelopeKind {
    /// An interrogation: a reply is expected.
    Request,
    /// The reply to an interrogation.
    Reply,
    /// An announcement: no reply.
    Announce,
    /// One item of a stream flow.
    Flow,
}

/// Transport-level status of a reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyStatus {
    /// The payload is the operation's termination.
    Ok,
    /// The target interface is not at this node (stale interface
    /// reference; triggers relocation transparency, §9.2).
    NotHere,
    /// The channel rejected the message (e.g. replay detected by a
    /// sequence binder, §6.1).
    Rejected,
}

/// A message travelling through a channel: produced by stubs, transformed
/// by binders, carried by protocol objects.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// The envelope kind.
    pub kind: EnvelopeKind,
    /// Which channel this envelope belongs to (0 = the ephemeral default
    /// channel).
    pub channel: ChannelId,
    /// Correlates a reply with its request.
    pub request: u64,
    /// Sequence number stamped by a sequence binder (0 = unstamped).
    pub seq: u64,
    /// The target interface (requests, announcements and flows).
    pub target: InterfaceId,
    /// Reply status (replies only).
    pub status: ReplyStatus,
    /// The transfer syntax the payload is currently encoded in.
    pub syntax: SyntaxId,
    /// The encoded payload (an invocation or termination record, or a
    /// flow item). Shared bytes: cloning an envelope, caching a reply,
    /// or retransmitting shares one buffer.
    pub payload: Payload,
    /// The flow name (flows only; empty otherwise).
    pub flow: String,
}

impl Envelope {
    /// Creates a request envelope.
    pub fn request(
        channel: ChannelId,
        request: u64,
        target: InterfaceId,
        syntax: SyntaxId,
        payload: impl Into<Payload>,
    ) -> Self {
        Self {
            kind: EnvelopeKind::Request,
            channel,
            request,
            seq: 0,
            target,
            status: ReplyStatus::Ok,
            syntax,
            payload: payload.into(),
            flow: String::new(),
        }
    }

    /// Creates the reply to a request envelope.
    pub fn reply_to(
        req: &Envelope,
        status: ReplyStatus,
        syntax: SyntaxId,
        payload: impl Into<Payload>,
    ) -> Self {
        Self {
            kind: EnvelopeKind::Reply,
            channel: req.channel,
            request: req.request,
            seq: 0,
            target: req.target,
            status,
            syntax,
            payload: payload.into(),
            flow: String::new(),
        }
    }

    /// Creates an announcement envelope.
    pub fn announce(
        channel: ChannelId,
        target: InterfaceId,
        syntax: SyntaxId,
        payload: impl Into<Payload>,
    ) -> Self {
        Self {
            kind: EnvelopeKind::Announce,
            channel,
            request: 0,
            seq: 0,
            target,
            status: ReplyStatus::Ok,
            syntax,
            payload: payload.into(),
            flow: String::new(),
        }
    }

    /// Creates a flow-item envelope.
    pub fn flow_item(
        channel: ChannelId,
        target: InterfaceId,
        flow: impl Into<String>,
        syntax: SyntaxId,
        payload: impl Into<Payload>,
    ) -> Self {
        Self {
            kind: EnvelopeKind::Flow,
            channel,
            request: 0,
            seq: 0,
            target,
            status: ReplyStatus::Ok,
            syntax,
            payload: payload.into(),
            flow: flow.into(),
        }
    }

    /// Serialises the envelope for the network.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(40 + self.payload.len() + self.flow.len());
        out.put_u8(match self.kind {
            EnvelopeKind::Request => 0,
            EnvelopeKind::Reply => 1,
            EnvelopeKind::Announce => 2,
            EnvelopeKind::Flow => 3,
        });
        out.put_u8(match self.status {
            ReplyStatus::Ok => 0,
            ReplyStatus::NotHere => 1,
            ReplyStatus::Rejected => 2,
        });
        out.put_u8(match self.syntax {
            SyntaxId::Binary => 0,
            SyntaxId::Text => 1,
        });
        out.put_u64_le(self.channel.raw());
        out.put_u64_le(self.request);
        out.put_u64_le(self.seq);
        out.put_u64_le(self.target.raw());
        out.put_u32_le(self.flow.len() as u32);
        out.put_slice(self.flow.as_bytes());
        out.put_u32_le(self.payload.len() as u32);
        out.put_slice(&self.payload);
        out
    }

    /// Deserialises an envelope from borrowed bytes, deep-copying the
    /// payload. Hot paths that hold the frame as a [`Payload`] should
    /// use [`Envelope::from_payload`], which slices instead of copying.
    ///
    /// # Errors
    ///
    /// Returns an [`EnvelopeError`] on truncation or bad discriminants.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, EnvelopeError> {
        let (mut env, off, len) = Self::parse_frame(bytes)?;
        env.payload = Payload::copy_of(&bytes[off..off + len]);
        Ok(env)
    }

    /// Deserialises an envelope from a shared frame: the returned
    /// envelope's payload is a zero-copy slice of `frame`'s buffer.
    ///
    /// # Errors
    ///
    /// Returns an [`EnvelopeError`] on truncation or bad discriminants.
    pub fn from_payload(frame: &Payload) -> Result<Self, EnvelopeError> {
        let (mut env, off, len) = Self::parse_frame(frame)?;
        env.payload = frame.slice(off, off + len);
        Ok(env)
    }

    /// Parses everything but the payload bytes, returning the envelope
    /// (payload empty) plus the payload's offset and length in `full`.
    fn parse_frame(full: &[u8]) -> Result<(Self, usize, usize), EnvelopeError> {
        let mut bytes = full;
        let need = |b: &&[u8], n: usize| -> Result<(), EnvelopeError> {
            if b.remaining() < n {
                Err(EnvelopeError {
                    message: format!("truncated envelope: need {n} more bytes"),
                })
            } else {
                Ok(())
            }
        };
        need(&bytes, 3)?;
        let kind = match bytes.get_u8() {
            0 => EnvelopeKind::Request,
            1 => EnvelopeKind::Reply,
            2 => EnvelopeKind::Announce,
            3 => EnvelopeKind::Flow,
            k => {
                return Err(EnvelopeError {
                    message: format!("bad envelope kind {k}"),
                })
            }
        };
        let status = match bytes.get_u8() {
            0 => ReplyStatus::Ok,
            1 => ReplyStatus::NotHere,
            2 => ReplyStatus::Rejected,
            s => {
                return Err(EnvelopeError {
                    message: format!("bad reply status {s}"),
                })
            }
        };
        let syntax = match bytes.get_u8() {
            0 => SyntaxId::Binary,
            1 => SyntaxId::Text,
            s => {
                return Err(EnvelopeError {
                    message: format!("bad syntax id {s}"),
                })
            }
        };
        need(&bytes, 32)?;
        let channel = ChannelId::new(bytes.get_u64_le());
        let request = bytes.get_u64_le();
        let seq = bytes.get_u64_le();
        let target = InterfaceId::new(bytes.get_u64_le());
        need(&bytes, 4)?;
        let flow_len = bytes.get_u32_le() as usize;
        need(&bytes, flow_len)?;
        let flow = String::from_utf8(bytes[..flow_len].to_vec()).map_err(|_| EnvelopeError {
            message: "flow name is not utf-8".into(),
        })?;
        bytes.advance(flow_len);
        need(&bytes, 4)?;
        let payload_len = bytes.get_u32_le() as usize;
        need(&bytes, payload_len)?;
        let payload_off = full.len() - bytes.remaining();
        bytes.advance(payload_len);
        if bytes.has_remaining() {
            return Err(EnvelopeError {
                message: "trailing bytes after envelope".into(),
            });
        }
        Ok((
            Self {
                kind,
                channel,
                request,
                seq,
                target,
                status,
                syntax,
                payload: Payload::empty(),
                flow,
            },
            payload_off,
            payload_len,
        ))
    }
}

/// A malformed envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvelopeError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "envelope error: {}", self.message)
    }
}

impl std::error::Error for EnvelopeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Envelope {
        let mut e = Envelope::request(
            ChannelId::new(7),
            42,
            InterfaceId::new(9),
            SyntaxId::Binary,
            vec![1, 2, 3],
        );
        e.seq = 5;
        e
    }

    #[test]
    fn round_trips_all_kinds() {
        let req = sample();
        let reply = Envelope::reply_to(&req, ReplyStatus::NotHere, SyntaxId::Text, vec![9]);
        let ann = Envelope::announce(
            ChannelId::new(1),
            InterfaceId::new(2),
            SyntaxId::Text,
            vec![],
        );
        let flow = Envelope::flow_item(
            ChannelId::new(1),
            InterfaceId::new(2),
            "audio",
            SyntaxId::Binary,
            vec![0; 100],
        );
        for e in [req, reply, ann, flow] {
            let bytes = e.to_bytes();
            assert_eq!(Envelope::from_bytes(&bytes).unwrap(), e);
        }
    }

    #[test]
    fn reply_correlates_with_request() {
        let req = sample();
        let reply = Envelope::reply_to(&req, ReplyStatus::Ok, SyntaxId::Binary, vec![]);
        assert_eq!(reply.request, req.request);
        assert_eq!(reply.channel, req.channel);
        assert_eq!(reply.kind, EnvelopeKind::Reply);
    }

    #[test]
    fn truncation_is_rejected_everywhere() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(Envelope::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bad_discriminants_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = 9;
        assert!(Envelope::from_bytes(&bytes)
            .unwrap_err()
            .message
            .contains("kind"));
        let mut bytes = sample().to_bytes();
        bytes[1] = 9;
        assert!(Envelope::from_bytes(&bytes)
            .unwrap_err()
            .message
            .contains("status"));
        let mut bytes = sample().to_bytes();
        bytes[2] = 9;
        assert!(Envelope::from_bytes(&bytes)
            .unwrap_err()
            .message
            .contains("syntax"));
    }

    #[test]
    fn from_payload_slices_without_copying() {
        rmodp_observe::bus::reset();
        let frame = Payload::new(sample().to_bytes());
        let env = Envelope::from_payload(&frame).unwrap();
        assert_eq!(env, sample());
        assert!(env.payload.shares_buffer_with(&frame));
        assert_eq!(rmodp_observe::bus::counter("kernel.payload.copies"), 0);
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert!(Envelope::from_bytes(&bytes)
            .unwrap_err()
            .message
            .contains("trailing"));
    }
}
