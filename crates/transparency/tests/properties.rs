//! Property tests for the transparency layer: arbitrary interleavings of
//! banking traffic and migrations are fully masked; persistence
//! round-trips arbitrary states; transparent transactions always conserve
//! money.

use proptest::prelude::*;

use rmodp_core::codec::SyntaxId;
use rmodp_core::value::Value;
use rmodp_engineering::behaviour::CounterBehaviour;
use rmodp_engineering::engine::Engine;
use rmodp_functions::storage::StorageFunction;
use rmodp_transactions::rm::{ResourceManager, TxProfile};
use rmodp_transparency::persistence::{decode_checkpoint, encode_checkpoint, PersistenceManager};
use rmodp_transparency::proxy::{migrate_transparently, OdpInfra};
use rmodp_transparency::transaction::transfer;
use rmodp_transparency::{Transparency, TransparencySet, TransparentProxy};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any interleaving of adds and migrations yields the exactly-once
    /// total on a loss-free network: migration is fully masked.
    #[test]
    fn migrations_never_lose_or_duplicate_work(
        schedule in proptest::collection::vec((any::<bool>(), 1i64..50), 1..25),
    ) {
        let mut engine = Engine::new(99);
        engine.behaviours_mut().register("counter", CounterBehaviour::default);
        let node = engine.add_node(SyntaxId::Binary);
        let client = engine.add_node(SyntaxId::Text);
        let capsule = engine.add_capsule(node).unwrap();
        let cluster = engine.add_cluster(node, capsule).unwrap();
        let (_, refs) = engine
            .create_object(node, capsule, cluster, "c", "counter", CounterBehaviour::initial_state(), 1)
            .unwrap();
        let interface = refs[0].interface;
        let mut infra = OdpInfra::new();
        infra.publish(&engine, interface).unwrap();
        let mut proxy = TransparentProxy::new(
            client,
            interface,
            TransparencySet::none().with(Transparency::Migration),
        );
        let mut home = (node, capsule, cluster);
        let mut expected = 0i64;
        for (migrate, k) in schedule {
            if migrate {
                let n = engine.add_node(SyntaxId::Binary);
                let c = engine.add_capsule(n).unwrap();
                let new_cluster =
                    migrate_transparently(&mut engine, &mut infra, home, (n, c), &[interface])
                        .unwrap();
                home = (n, c, new_cluster);
            } else {
                expected += k;
                let t = proxy
                    .call(&mut engine, &mut infra, "Add", &Value::record([("k", Value::Int(k))]))
                    .unwrap();
                prop_assert_eq!(t.results.field("n"), Some(&Value::Int(expected)));
            }
        }
        let t = proxy
            .call(&mut engine, &mut infra, "Get", &Value::record::<&str, _>([]))
            .unwrap();
        prop_assert_eq!(t.results.field("n"), Some(&Value::Int(expected)));
    }

    /// Deactivate-to-storage / restore round-trips arbitrary counter
    /// states byte-exactly.
    #[test]
    fn persistence_round_trips_any_state(adds in proptest::collection::vec(1i64..500, 0..10)) {
        let mut engine = Engine::new(100);
        engine.behaviours_mut().register("counter", CounterBehaviour::default);
        let node = engine.add_node(SyntaxId::Binary);
        let capsule = engine.add_capsule(node).unwrap();
        let cluster = engine.add_cluster(node, capsule).unwrap();
        let (_, refs) = engine
            .create_object(node, capsule, cluster, "c", "counter", CounterBehaviour::initial_state(), 1)
            .unwrap();
        let total: i64 = adds.iter().sum();
        for k in &adds {
            engine
                .invoke_local(node, refs[0].interface, "Add", &Value::record([("k", Value::Int(*k))]))
                .unwrap();
        }
        let mut storage = StorageFunction::new();
        let mut pm = PersistenceManager::new();
        pm.deactivate_to_storage(&mut engine, &mut storage, "x", node, capsule, cluster)
            .unwrap();
        pm.restore(&mut engine, &storage, "x").unwrap();
        let t = engine
            .invoke_local(node, refs[0].interface, "Get", &Value::record::<&str, _>([]))
            .unwrap();
        prop_assert_eq!(t.results.field("n"), Some(&Value::Int(total)));
    }

    /// The checkpoint codec round-trips whatever the engine produces.
    #[test]
    fn checkpoint_codec_round_trips_engine_output(adds in proptest::collection::vec(1i64..100, 0..6)) {
        let mut engine = Engine::new(101);
        engine.behaviours_mut().register("counter", CounterBehaviour::default);
        let node = engine.add_node(SyntaxId::Binary);
        let capsule = engine.add_capsule(node).unwrap();
        let cluster = engine.add_cluster(node, capsule).unwrap();
        let (_, refs) = engine
            .create_object(node, capsule, cluster, "c", "counter", CounterBehaviour::initial_state(), 2)
            .unwrap();
        for k in &adds {
            engine
                .invoke_local(node, refs[0].interface, "Add", &Value::record([("k", Value::Int(*k))]))
                .unwrap();
        }
        let cp = engine.checkpoint_cluster(node, capsule, cluster).unwrap();
        let back = decode_checkpoint(&encode_checkpoint(&cp)).unwrap();
        prop_assert_eq!(back, cp);
    }

    /// Transparent transfers conserve money whatever the schedule.
    #[test]
    fn transparent_transfers_conserve(
        schedule in proptest::collection::vec((any::<bool>(), 1i64..200), 1..30),
    ) {
        let mut rm = ResourceManager::new("bank", TxProfile::acid());
        let tx = rm.begin();
        rm.write(tx, "a", Value::Int(400)).unwrap();
        rm.write(tx, "b", Value::Int(600)).unwrap();
        rm.commit(tx).unwrap();
        for (direction, amount) in schedule {
            let (from, to) = if direction { ("a", "b") } else { ("b", "a") };
            let _ = transfer(&mut rm, from, to, amount);
            let total = rm.read_committed("a").unwrap().as_int().unwrap()
                + rm.read_committed("b").unwrap().as_int().unwrap();
            prop_assert_eq!(total, 1_000);
        }
    }
}
