//! Durable failure transparency: recovery that loses nothing committed.
//!
//! The plain [`FailureGuard`](crate::failure::FailureGuard) restores the
//! *last checkpoint* — everything after it is dropped, and the
//! `failure.lost_updates` counter measures exactly how much. The
//! [`DurableGuard`] closes that window by pairing the checkpoint with a
//! write-ahead **operation log** kept in a [`PersistentStore`]:
//!
//! 1. every state-changing operation is logged ([`DurableGuard::log_op`])
//!    *before* it is issued — if the store is a
//!    [`StoreEngine`](rmodp_store::StoreEngine), the log entry is synced
//!    to stable media before the operation runs;
//! 2. a checkpoint ([`DurableGuard::checkpoint_now`]) persists the
//!    cluster image and prunes the ops it covers (log compaction at the
//!    transparency layer, mirroring the store's own WAL compaction);
//! 3. recovery ([`DurableGuard::recover`]) reactivates the persisted
//!    checkpoint on the backup and **replays the logged tail** through
//!    ordinary channels — the recovered cluster reaches exactly the
//!    committed pre-crash state, and `failure.lost_updates` records 0.
//!
//! The replay is deterministic: ops are keyed `guard/<label>/op/<seq>`
//! with zero-padded sequence numbers, so the store's sorted key order is
//! the original execution order.

use std::collections::BTreeMap;
use std::fmt;

use rmodp_core::codec::{syntax_for, SyntaxId};
use rmodp_core::id::{CapsuleId, ClusterId, InterfaceId, NodeId};
use rmodp_core::value::Value;
use rmodp_engineering::channel::ChannelConfig;
use rmodp_engineering::engine::{CallError, EngError, Engine};
use rmodp_observe::{bus, event, EventKind, Layer};
use rmodp_store::PersistentStore;

use crate::persistence::{decode_checkpoint, encode_checkpoint};
use crate::proxy::OdpInfra;

/// A durable-guard failure.
#[derive(Debug, Clone, PartialEq)]
pub enum DurableError {
    /// Engineering failure.
    Eng(EngError),
    /// A replayed operation failed.
    Call(CallError),
    /// No checkpoint has been persisted yet.
    NoCheckpoint,
    /// The home node is still alive; nothing to recover from.
    NotFailed,
    /// Every backup in the pool is dead (or the pool is empty).
    NoBackup,
    /// Persisted bytes could not be decoded.
    Corrupt { key: String, detail: String },
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Eng(e) => write!(f, "{e}"),
            DurableError::Call(e) => write!(f, "replay failed: {e}"),
            DurableError::NoCheckpoint => write!(f, "no persisted checkpoint"),
            DurableError::NotFailed => write!(f, "home node has not failed"),
            DurableError::NoBackup => write!(f, "no live backup remains in the pool"),
            DurableError::Corrupt { key, detail } => write!(f, "{key} is corrupt: {detail}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<EngError> for DurableError {
    fn from(e: EngError) -> Self {
        DurableError::Eng(e)
    }
}

impl From<CallError> for DurableError {
    fn from(e: CallError) -> Self {
        DurableError::Call(e)
    }
}

/// Guards one cluster with persisted checkpoints plus a write-ahead
/// operation log, so recovery replays the tail instead of dropping it.
#[derive(Debug)]
pub struct DurableGuard {
    label: String,
    home: (NodeId, CapsuleId, ClusterId),
    backups: std::collections::VecDeque<(NodeId, CapsuleId)>,
    interfaces: Vec<InterfaceId>,
    /// Sequence number of the next logged op (reset by checkpoints).
    next_op: u64,
    recoveries: u64,
    replayed: u64,
}

impl DurableGuard {
    /// Creates a guard; `label` namespaces its keys in the store and
    /// `backup` seeds the automatic-failover pool
    /// ([`push_backup`](Self::push_backup) extends it).
    pub fn new(
        label: impl Into<String>,
        home: (NodeId, CapsuleId, ClusterId),
        backup: (NodeId, CapsuleId),
        interfaces: Vec<InterfaceId>,
    ) -> Self {
        Self {
            label: label.into(),
            home,
            backups: std::collections::VecDeque::from([backup]),
            interfaces,
            next_op: 0,
            recoveries: 0,
            replayed: 0,
        }
    }

    /// Appends a backup location to the failover pool (targets are
    /// taken in pool order, skipping dead nodes).
    pub fn push_backup(&mut self, backup: (NodeId, CapsuleId)) {
        self.backups.push_back(backup);
    }

    /// The backup locations still available, in selection order.
    pub fn backup_pool(&self) -> impl Iterator<Item = (NodeId, CapsuleId)> + '_ {
        self.backups.iter().copied()
    }

    /// The cluster's current home.
    pub fn home(&self) -> (NodeId, CapsuleId, ClusterId) {
        self.home
    }

    /// How many recoveries this guard has performed.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Operations replayed across all recoveries.
    pub fn replayed(&self) -> u64 {
        self.replayed
    }

    /// Ops logged since the last checkpoint.
    pub fn pending_ops(&self) -> u64 {
        self.next_op
    }

    fn checkpoint_key(&self) -> String {
        format!("guard/{}/checkpoint", self.label)
    }

    fn op_key(&self, seq: u64) -> String {
        format!("guard/{}/op/{seq:08}", self.label)
    }

    fn op_prefix(&self) -> String {
        format!("guard/{}/op/", self.label)
    }

    /// Logs one state-changing operation write-ahead. Call this *before*
    /// issuing the operation; the durable store syncs the entry before
    /// returning, so a crash at any later instant finds it in the log.
    pub fn log_op<S: PersistentStore>(
        &mut self,
        store: &mut S,
        interface: InterfaceId,
        op: &str,
        args: &Value,
    ) {
        let entry = Value::record([
            ("interface", Value::Int(interface.raw() as i64)),
            ("op", Value::text(op)),
            ("args", args.clone()),
        ]);
        let key = self.op_key(self.next_op);
        self.next_op += 1;
        store.persist(&key, syntax_for(SyntaxId::Binary).encode(&entry));
    }

    /// Checkpoints the guarded cluster into the store and prunes the op
    /// log it covers.
    ///
    /// # Errors
    ///
    /// Engineering failures (the previous checkpoint + ops remain the
    /// recovery point).
    pub fn checkpoint_now<S: PersistentStore>(
        &mut self,
        engine: &mut Engine,
        store: &mut S,
    ) -> Result<(), DurableError> {
        let (node, capsule, cluster) = self.home;
        let cp = engine.checkpoint_cluster(node, capsule, cluster)?;
        store.persist(&self.checkpoint_key(), encode_checkpoint(&cp));
        let prefix = self.op_prefix();
        for key in store.stored_keys() {
            if key.starts_with(&prefix) {
                store.remove(&key);
            }
        }
        self.next_op = 0;
        Ok(())
    }

    /// Whether the home node is currently crashed.
    pub fn home_failed(&self, engine: &Engine) -> bool {
        engine
            .sim_node(self.home.0)
            .map(|idx| engine.sim().topology().is_crashed(idx))
            .unwrap_or(true)
    }

    /// Recovers the cluster onto the backup: reactivate the persisted
    /// checkpoint, republish locations, then replay the logged operation
    /// tail in order. Afterwards the recovered state equals the
    /// committed pre-crash state — `failure.lost_updates` records zero —
    /// and a fresh checkpoint is persisted so the op log starts empty.
    ///
    /// # Errors
    ///
    /// [`DurableError::NotFailed`] when the home is alive,
    /// [`DurableError::NoCheckpoint`] without a persisted checkpoint,
    /// [`DurableError::NoBackup`] when no pool entry is alive,
    /// corrupt store entries, or engineering/replay failures.
    pub fn recover<S: PersistentStore>(
        &mut self,
        engine: &mut Engine,
        infra: &mut OdpInfra,
        store: &mut S,
    ) -> Result<ClusterId, DurableError> {
        if !self.home_failed(engine) {
            return Err(DurableError::NotFailed);
        }
        let cp_key = self.checkpoint_key();
        let bytes = store.fetch(&cp_key).ok_or(DurableError::NoCheckpoint)?;
        let cp = decode_checkpoint(&bytes).map_err(|detail| DurableError::Corrupt {
            key: cp_key,
            detail,
        })?;
        let (backup_node, backup_capsule) =
            crate::failure::FailureGuard::take_live_backup(&mut self.backups, engine)
                .map_err(|_| DurableError::NoBackup)?;
        let span = bus::new_span();
        event(Layer::Transparency, EventKind::RecoveryStart)
            .span(span)
            .parent_from_context()
            .capsule(backup_capsule.raw())
            .detail(format!(
                "durable cluster={} {} -> {backup_node} pending_ops={}",
                self.home.2, self.home.0, self.next_op
            ))
            .emit();
        bus::push_context(span);
        let recovered = self.recover_inner(engine, infra, store, &cp, backup_node, backup_capsule);
        bus::pop_context();
        let (new_cluster, replayed) = recovered?;
        self.home = (backup_node, backup_capsule, new_cluster);
        self.recoveries += 1;
        self.replayed += replayed;
        // The tail was replayed, not dropped: the loss window is zero.
        // Recording the zero materialises the counter for the gates.
        bus::counter_add("failure.lost_updates", 0);
        bus::counter_add("transparency.recoveries", 1);
        bus::counter_add("transparency.replayed_ops", replayed);
        event(Layer::Transparency, EventKind::RecoveryEnd)
            .span(span)
            .capsule(backup_capsule.raw())
            .detail(format!(
                "durable cluster={new_cluster} recovery #{} replayed={replayed} lost=0",
                self.recoveries
            ))
            .emit();
        // Fold the replayed tail into a fresh persisted checkpoint.
        self.checkpoint_now(engine, store)?;
        Ok(new_cluster)
    }

    fn recover_inner<S: PersistentStore>(
        &mut self,
        engine: &mut Engine,
        infra: &mut OdpInfra,
        store: &S,
        cp: &rmodp_engineering::structure::ClusterCheckpoint,
        backup_node: NodeId,
        backup_capsule: CapsuleId,
    ) -> Result<(ClusterId, u64), DurableError> {
        let new_cluster = engine.reactivate_cluster(backup_node, backup_capsule, cp)?;
        for ifc in &self.interfaces {
            infra.publish(engine, *ifc)?;
        }
        // Replay the logged tail in sequence order (sorted keys).
        let prefix = self.op_prefix();
        let mut channels: BTreeMap<u64, _> = BTreeMap::new();
        let mut replayed = 0u64;
        for key in store.stored_keys() {
            if !key.starts_with(&prefix) {
                continue;
            }
            let bytes = store.fetch(&key).expect("listed key is fetchable");
            let entry =
                syntax_for(SyntaxId::Binary)
                    .decode(&bytes)
                    .map_err(|e| DurableError::Corrupt {
                        key: key.clone(),
                        detail: e.to_string(),
                    })?;
            let interface = entry
                .field("interface")
                .and_then(Value::as_int)
                .ok_or_else(|| DurableError::Corrupt {
                    key: key.clone(),
                    detail: "op without interface".to_owned(),
                })? as u64;
            let op = entry
                .field("op")
                .and_then(Value::as_text)
                .ok_or_else(|| DurableError::Corrupt {
                    key: key.clone(),
                    detail: "op without name".to_owned(),
                })?
                .to_owned();
            let args = entry
                .field("args")
                .cloned()
                .ok_or_else(|| DurableError::Corrupt {
                    key: key.clone(),
                    detail: "op without args".to_owned(),
                })?;
            let channel = match channels.get(&interface) {
                Some(ch) => *ch,
                None => {
                    let ch = engine.open_channel(
                        backup_node,
                        InterfaceId::new(interface),
                        ChannelConfig::default(),
                    )?;
                    channels.insert(interface, ch);
                    ch
                }
            };
            engine.call(channel, &op, &args)?;
            replayed += 1;
        }
        Ok((new_cluster, replayed))
    }

    /// Designates the *next* backup location, jumping the pool queue.
    #[deprecated(note = "failover target selection is automatic from the backup pool; \
                use push_backup to extend the pool instead")]
    pub fn set_backup(&mut self, backup: (NodeId, CapsuleId)) {
        self.backups.push_front(backup);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proxy::TransparentProxy;
    use crate::selection::{Transparency, TransparencySet};
    use rmodp_engineering::behaviour::CounterBehaviour;
    use rmodp_store::{MemMedia, StableMedia, StoreConfig, StoreEngine};

    struct World {
        engine: Engine,
        infra: OdpInfra,
        guard: DurableGuard,
        store: StoreEngine<MemMedia>,
        client: NodeId,
        interface: InterfaceId,
    }

    fn world() -> World {
        let mut engine = Engine::new(47);
        engine
            .behaviours_mut()
            .register("counter", CounterBehaviour::default);
        let home = engine.add_node(rmodp_core::codec::SyntaxId::Binary);
        let backup = engine.add_node(rmodp_core::codec::SyntaxId::Binary);
        let client = engine.add_node(rmodp_core::codec::SyntaxId::Binary);
        let home_capsule = engine.add_capsule(home).unwrap();
        let backup_capsule = engine.add_capsule(backup).unwrap();
        let cluster = engine.add_cluster(home, home_capsule).unwrap();
        let (_, refs) = engine
            .create_object(
                home,
                home_capsule,
                cluster,
                "c",
                "counter",
                CounterBehaviour::initial_state(),
                1,
            )
            .unwrap();
        let mut infra = OdpInfra::new();
        infra.publish(&engine, refs[0].interface).unwrap();
        let guard = DurableGuard::new(
            "acct",
            (home, home_capsule, cluster),
            (backup, backup_capsule),
            vec![refs[0].interface],
        );
        let store = StoreEngine::open(MemMedia::new(), StoreConfig::default()).unwrap();
        World {
            engine,
            infra,
            guard,
            store,
            client,
            interface: refs[0].interface,
        }
    }

    fn add(k: i64) -> Value {
        Value::record([("k", Value::Int(k))])
    }

    /// A logged call: write-ahead into the store, then issue.
    fn logged_call(w: &mut World, proxy: &mut TransparentProxy, k: i64) {
        w.guard.log_op(&mut w.store, w.interface, "Add", &add(k));
        proxy
            .call(&mut w.engine, &mut w.infra, "Add", &add(k))
            .unwrap();
    }

    #[test]
    fn recovery_replays_the_tail_and_loses_nothing() {
        let mut w = world();
        let mut proxy = TransparentProxy::new(
            w.client,
            w.interface,
            TransparencySet::none().with(Transparency::Relocation),
        );
        logged_call(&mut w, &mut proxy, 10);
        w.guard.checkpoint_now(&mut w.engine, &mut w.store).unwrap();
        // Post-checkpoint work — the window the plain guard would lose.
        logged_call(&mut w, &mut proxy, 5);
        logged_call(&mut w, &mut proxy, 7);
        assert_eq!(w.guard.pending_ops(), 2);

        let idx = w.engine.sim_node(w.guard.home().0).unwrap();
        w.engine.sim_mut().topology_mut().crash(idx);

        w.guard
            .recover(&mut w.engine, &mut w.infra, &mut w.store)
            .unwrap();
        assert_eq!(w.guard.recoveries(), 1);
        assert_eq!(w.guard.replayed(), 2);
        assert_eq!(bus::counter("failure.lost_updates"), 0);
        assert_eq!(w.guard.pending_ops(), 0, "recovery folded the tail");

        let t = proxy
            .call(
                &mut w.engine,
                &mut w.infra,
                "Get",
                &Value::record::<&str, _>([]),
            )
            .unwrap();
        assert_eq!(
            t.results.field("n"),
            Some(&Value::Int(22)),
            "10 + 5 + 7: nothing lost"
        );
    }

    #[test]
    fn op_log_survives_a_store_crash() {
        let mut w = world();
        let mut proxy = TransparentProxy::new(
            w.client,
            w.interface,
            TransparencySet::none().with(Transparency::Relocation),
        );
        logged_call(&mut w, &mut proxy, 3);
        w.guard.checkpoint_now(&mut w.engine, &mut w.store).unwrap();
        logged_call(&mut w, &mut proxy, 4);
        // The store's medium crashes too: every logged op was synced
        // write-ahead, so the tail survives in the WAL.
        let mut media = w.store.into_media();
        media.crash();
        w.store = StoreEngine::open(media, StoreConfig::default()).unwrap();

        let idx = w.engine.sim_node(w.guard.home().0).unwrap();
        w.engine.sim_mut().topology_mut().crash(idx);
        w.guard
            .recover(&mut w.engine, &mut w.infra, &mut w.store)
            .unwrap();
        let t = proxy
            .call(
                &mut w.engine,
                &mut w.infra,
                "Get",
                &Value::record::<&str, _>([]),
            )
            .unwrap();
        assert_eq!(t.results.field("n"), Some(&Value::Int(7)));
    }

    #[test]
    fn recover_requires_failure_and_a_checkpoint() {
        let mut w = world();
        let mut store = StoreEngine::open(MemMedia::new(), StoreConfig::default()).unwrap();
        assert!(matches!(
            w.guard.recover(&mut w.engine, &mut w.infra, &mut store),
            Err(DurableError::NotFailed)
        ));
        let idx = w.engine.sim_node(w.guard.home().0).unwrap();
        w.engine.sim_mut().topology_mut().crash(idx);
        assert!(matches!(
            w.guard.recover(&mut w.engine, &mut w.infra, &mut store),
            Err(DurableError::NoCheckpoint)
        ));
    }
}
