//! Persistence transparency: masking deactivation and reactivation.
//!
//! Cluster checkpoints are serialised through a [`PersistentStore`]; a
//! [`PersistenceManager`] remembers where each persistent cluster lives so
//! it can be deactivated to storage and restored on demand — including
//! transparently, when a proxy finds the target gone.
//!
//! The manager is generic over the store: the in-memory
//! [`StorageFunction`](rmodp_functions::storage::StorageFunction) gives
//! the classic behaviour (checkpoints live as long as the process), and
//! [`StoreEngine`](rmodp_store::StoreEngine) write-ahead-logs every
//! checkpoint so deactivated state survives a capsule kill and restart.

use std::collections::BTreeMap;
use std::fmt;

use rmodp_core::codec::{syntax_for, SyntaxId};
use rmodp_core::id::{CapsuleId, ClusterId, InterfaceId, NodeId, ObjectId};
use rmodp_core::value::Value;
use rmodp_engineering::engine::{EngError, Engine};
use rmodp_engineering::structure::{BeoRecord, ClusterCheckpoint, ObjectCheckpoint};
use rmodp_store::PersistentStore;

/// A persistence failure.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistenceError {
    /// Engineering failure during deactivate/reactivate.
    Eng(EngError),
    /// Nothing stored under this name.
    NotStored { name: String },
    /// Stored bytes could not be decoded as a checkpoint.
    Corrupt { name: String, detail: String },
}

impl fmt::Display for PersistenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistenceError::Eng(e) => write!(f, "{e}"),
            PersistenceError::NotStored { name } => write!(f, "no checkpoint stored as {name}"),
            PersistenceError::Corrupt { name, detail } => {
                write!(f, "checkpoint {name} is corrupt: {detail}")
            }
        }
    }
}

impl std::error::Error for PersistenceError {}

impl From<EngError> for PersistenceError {
    fn from(e: EngError) -> Self {
        PersistenceError::Eng(e)
    }
}

/// Serialises a cluster checkpoint with the binary transfer syntax.
pub fn encode_checkpoint(cp: &ClusterCheckpoint) -> Vec<u8> {
    let objects = Value::Seq(
        cp.objects
            .iter()
            .map(|o| {
                Value::record([
                    ("object", Value::Int(o.record.object.raw() as i64)),
                    ("name", Value::text(o.record.name.clone())),
                    ("behaviour", Value::text(o.record.behaviour.clone())),
                    (
                        "interfaces",
                        Value::Seq(
                            o.record
                                .interfaces
                                .iter()
                                .map(|i| Value::Int(i.raw() as i64))
                                .collect(),
                        ),
                    ),
                    ("state", o.state.clone()),
                ])
            })
            .collect(),
    );
    let v = Value::record([
        ("cluster", Value::Int(cp.cluster.raw() as i64)),
        ("epoch", Value::Int(cp.epoch as i64)),
        ("objects", objects),
    ]);
    syntax_for(SyntaxId::Binary).encode(&v)
}

/// Deserialises a cluster checkpoint.
///
/// # Errors
///
/// Returns a description of the first structural problem found.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<ClusterCheckpoint, String> {
    let v = syntax_for(SyntaxId::Binary)
        .decode(bytes)
        .map_err(|e| e.to_string())?;
    let cluster = v
        .field("cluster")
        .and_then(Value::as_int)
        .ok_or("missing cluster id")?;
    let epoch = v
        .field("epoch")
        .and_then(Value::as_int)
        .ok_or("missing epoch")?;
    let mut objects = Vec::new();
    for o in v
        .field("objects")
        .and_then(Value::as_seq)
        .ok_or("missing objects")?
    {
        let record = BeoRecord {
            object: ObjectId::new(
                o.field("object")
                    .and_then(Value::as_int)
                    .ok_or("missing object id")? as u64,
            ),
            name: o
                .field("name")
                .and_then(Value::as_text)
                .ok_or("missing object name")?
                .to_owned(),
            behaviour: o
                .field("behaviour")
                .and_then(Value::as_text)
                .ok_or("missing behaviour")?
                .to_owned(),
            interfaces: o
                .field("interfaces")
                .and_then(Value::as_seq)
                .ok_or("missing interfaces")?
                .iter()
                .filter_map(Value::as_int)
                .map(|i| InterfaceId::new(i as u64))
                .collect(),
        };
        let state = o.field("state").cloned().ok_or("missing state")?;
        objects.push(ObjectCheckpoint { record, state });
    }
    Ok(ClusterCheckpoint {
        cluster: ClusterId::new(cluster as u64),
        objects,
        epoch: epoch as u64,
    })
}

#[derive(Debug, Clone, Copy)]
struct Home {
    node: NodeId,
    capsule: CapsuleId,
}

/// Manages persistent clusters: deactivation to the storage function and
/// (transparent) reactivation from it.
#[derive(Debug, Default)]
pub struct PersistenceManager {
    homes: BTreeMap<String, Home>,
    /// Which persistent cluster each interface belongs to (so a proxy can
    /// restore by interface).
    interface_index: BTreeMap<InterfaceId, String>,
}

impl PersistenceManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deactivates a cluster to storage under a label, remembering its
    /// home so it can be restored there.
    ///
    /// # Errors
    ///
    /// Engineering failures.
    pub fn deactivate_to_storage<S: PersistentStore>(
        &mut self,
        engine: &mut Engine,
        storage: &mut S,
        label: &str,
        node: NodeId,
        capsule: CapsuleId,
        cluster: ClusterId,
    ) -> Result<(), PersistenceError> {
        let cp = engine.deactivate_cluster(node, capsule, cluster)?;
        storage.persist(&format!("persistent/{label}"), encode_checkpoint(&cp));
        self.homes.insert(label.to_owned(), Home { node, capsule });
        for o in &cp.objects {
            for ifc in &o.record.interfaces {
                self.interface_index.insert(*ifc, label.to_owned());
            }
        }
        rmodp_observe::event(
            rmodp_observe::Layer::Transparency,
            rmodp_observe::EventKind::Persist,
        )
        .in_context()
        .capsule(capsule.raw())
        .detail(format!("stored label={label} objects={}", cp.objects.len()))
        .emit();
        rmodp_observe::bus::counter_add("transparency.persists", 1);
        Ok(())
    }

    /// Restores a cluster from storage at its remembered home; returns the
    /// fresh cluster id.
    ///
    /// # Errors
    ///
    /// Missing/corrupt checkpoints or engineering failures.
    pub fn restore<S: PersistentStore>(
        &mut self,
        engine: &mut Engine,
        storage: &S,
        label: &str,
    ) -> Result<ClusterId, PersistenceError> {
        let home = self
            .homes
            .get(label)
            .copied()
            .ok_or_else(|| PersistenceError::NotStored {
                name: label.to_owned(),
            })?;
        let bytes = storage
            .fetch(&format!("persistent/{label}"))
            .ok_or_else(|| PersistenceError::NotStored {
                name: label.to_owned(),
            })?;
        let cp = decode_checkpoint(&bytes).map_err(|detail| PersistenceError::Corrupt {
            name: label.to_owned(),
            detail,
        })?;
        rmodp_observe::event(
            rmodp_observe::Layer::Transparency,
            rmodp_observe::EventKind::Persist,
        )
        .in_context()
        .capsule(home.capsule.raw())
        .detail(format!(
            "restored label={label} objects={}",
            cp.objects.len()
        ))
        .emit();
        rmodp_observe::bus::counter_add("transparency.restores", 1);
        Ok(engine.reactivate_cluster(home.node, home.capsule, &cp)?)
    }

    /// The persistent label covering an interface, if any.
    pub fn label_for(&self, interface: InterfaceId) -> Option<&str> {
        self.interface_index.get(&interface).map(String::as_str)
    }

    /// Labels of all persistent clusters.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.homes.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmodp_engineering::behaviour::CounterBehaviour;
    use rmodp_engineering::channel::ChannelConfig;
    use rmodp_functions::storage::StorageFunction;
    use rmodp_store::{MemMedia, StableMedia, StoreConfig, StoreEngine};

    fn checkpoint_sample() -> ClusterCheckpoint {
        ClusterCheckpoint {
            cluster: ClusterId::new(3),
            epoch: 7,
            objects: vec![ObjectCheckpoint {
                record: BeoRecord {
                    object: ObjectId::new(1),
                    name: "counter".into(),
                    behaviour: "counter".into(),
                    interfaces: vec![InterfaceId::new(10), InterfaceId::new(11)],
                },
                state: Value::record([("n", Value::Int(42))]),
            }],
        }
    }

    #[test]
    fn checkpoint_codec_round_trips() {
        let cp = checkpoint_sample();
        let bytes = encode_checkpoint(&cp);
        let back = decode_checkpoint(&bytes).unwrap();
        assert_eq!(back, cp);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_checkpoint(&[1, 2, 3]).is_err());
        let not_a_checkpoint = syntax_for(SyntaxId::Binary).encode(&Value::Int(5));
        assert!(decode_checkpoint(&not_a_checkpoint).is_err());
    }

    #[test]
    fn deactivate_then_restore_preserves_state() {
        let mut engine = Engine::new(11);
        engine
            .behaviours_mut()
            .register("counter", CounterBehaviour::default);
        let node = engine.add_node(SyntaxId::Binary);
        let client = engine.add_node(SyntaxId::Binary);
        let capsule = engine.add_capsule(node).unwrap();
        let cluster = engine.add_cluster(node, capsule).unwrap();
        let (_, refs) = engine
            .create_object(
                node,
                capsule,
                cluster,
                "c",
                "counter",
                CounterBehaviour::initial_state(),
                1,
            )
            .unwrap();
        let ch = engine
            .open_channel(client, refs[0].interface, ChannelConfig::default())
            .unwrap();
        engine
            .call(ch, "Add", &Value::record([("k", Value::Int(33))]))
            .unwrap();

        let mut storage = StorageFunction::new();
        let mut pm = PersistenceManager::new();
        pm.deactivate_to_storage(&mut engine, &mut storage, "acct", node, capsule, cluster)
            .unwrap();
        assert_eq!(engine.lookup(refs[0].interface), None);
        assert_eq!(pm.label_for(refs[0].interface), Some("acct"));

        pm.restore(&mut engine, &storage, "acct").unwrap();
        let fresh = engine.lookup(refs[0].interface).unwrap();
        engine.redirect_channel(ch, fresh).unwrap();
        let t = engine
            .call(ch, "Get", &Value::record::<&str, _>([]))
            .unwrap();
        assert_eq!(t.results.field("n"), Some(&Value::Int(33)));
    }

    #[test]
    fn deactivate_to_durable_store_survives_a_crash_of_the_medium() {
        let mut engine = Engine::new(12);
        engine
            .behaviours_mut()
            .register("counter", CounterBehaviour::default);
        let node = engine.add_node(SyntaxId::Binary);
        let capsule = engine.add_capsule(node).unwrap();
        let cluster = engine.add_cluster(node, capsule).unwrap();
        let (_, refs) = engine
            .create_object(
                node,
                capsule,
                cluster,
                "c",
                "counter",
                CounterBehaviour::initial_state(),
                1,
            )
            .unwrap();

        let mut store = StoreEngine::open(MemMedia::new(), StoreConfig::default()).unwrap();
        let mut pm = PersistenceManager::new();
        pm.deactivate_to_storage(&mut engine, &mut store, "acct", node, capsule, cluster)
            .unwrap();

        // The medium crashes; the WAL replays the checkpoint intact.
        let mut media = store.into_media();
        media.crash();
        let store = StoreEngine::open(media, StoreConfig::default()).unwrap();
        let restored = pm.restore(&mut engine, &store, "acct").unwrap();
        assert!(engine.lookup(refs[0].interface).is_some());
        assert_ne!(restored.raw(), 0);
    }

    #[test]
    fn restore_of_unknown_label_fails() {
        let mut engine = Engine::new(1);
        let storage = StorageFunction::new();
        let mut pm = PersistenceManager::new();
        assert!(matches!(
            pm.restore(&mut engine, &storage, "ghost"),
            Err(PersistenceError::NotStored { .. })
        ));
    }
}
