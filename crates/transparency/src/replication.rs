//! Replication transparency: a group of replicas behind one interface.
//!
//! "Replication transparency maintains consistency of a group of replica
//! objects with a common interface" (§9). A [`ReplicatedService`] fronts a
//! replica group: updates are disseminated to the group per its policy
//! (active replication sends to everyone; primary-copy sends to the
//! primary and re-syncs the others), reads are served by any replica, and
//! a failed replica can be dropped from the view without clients noticing.

use std::collections::BTreeMap;
use std::fmt;

use rmodp_computational::signature::Termination;
use rmodp_core::codec::SyntaxId;
use rmodp_core::id::{ChannelId, GroupId, InterfaceId, NodeId};
use rmodp_core::value::Value;
use rmodp_engineering::channel::ChannelConfig;
use rmodp_engineering::engine::{CallError, Engine};
use rmodp_functions::group::{GroupError, ReplicationPolicy};
use rmodp_kernel::payload::Payload;
use rmodp_observe::{bus, event, EventKind, Layer};

use crate::proxy::OdpInfra;

/// A replication failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplicationError {
    /// Group bookkeeping failed.
    Group(GroupError),
    /// An update could not reach a required replica.
    UpdateFailed { replica: InterfaceId, error: String },
    /// The group has no members left.
    Exhausted,
}

impl fmt::Display for ReplicationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicationError::Group(e) => write!(f, "{e}"),
            ReplicationError::UpdateFailed { replica, error } => {
                write!(f, "update failed at {replica}: {error}")
            }
            ReplicationError::Exhausted => write!(f, "no replicas remain"),
        }
    }
}

impl std::error::Error for ReplicationError {}

impl From<GroupError> for ReplicationError {
    fn from(e: GroupError) -> Self {
        ReplicationError::Group(e)
    }
}

/// A client-side front for a replica group.
#[derive(Debug)]
pub struct ReplicatedService {
    client: NodeId,
    group: GroupId,
    channels: BTreeMap<InterfaceId, ChannelId>,
    reads: u64,
}

impl ReplicatedService {
    /// Creates the front and a group containing the given replicas.
    pub fn new(
        engine: &mut Engine,
        infra: &mut OdpInfra,
        client: NodeId,
        policy: ReplicationPolicy,
        replicas: Vec<InterfaceId>,
    ) -> Result<Self, ReplicationError> {
        let group = infra.groups.create(policy, replicas.clone());
        let mut channels = BTreeMap::new();
        for r in replicas {
            let ch = engine
                .open_channel(client, r, ChannelConfig::default())
                .map_err(|e| ReplicationError::UpdateFailed {
                    replica: r,
                    error: e.to_string(),
                })?;
            channels.insert(r, ch);
        }
        Ok(Self {
            client,
            group,
            channels,
            reads: 0,
        })
    }

    /// The backing group.
    pub fn group(&self) -> GroupId {
        self.group
    }

    fn channel_for(
        &mut self,
        engine: &mut Engine,
        replica: InterfaceId,
    ) -> Result<ChannelId, CallError> {
        match self.channels.get(&replica) {
            Some(ch) => Ok(*ch),
            None => {
                let ch = engine.open_channel(self.client, replica, ChannelConfig::default())?;
                self.channels.insert(replica, ch);
                Ok(ch)
            }
        }
    }

    fn call_replica(
        &mut self,
        engine: &mut Engine,
        replica: InterfaceId,
        op: &str,
        args: &Value,
    ) -> Result<Termination, CallError> {
        let ch = self.channel_for(engine, replica)?;
        engine.call(ch, op, args)
    }

    /// Dispatches an already-marshalled invocation to one replica. The
    /// prepared [`Payload`] is shared (`Arc` clone) across the fan-out,
    /// so the arguments are encoded once per update, not once per
    /// replica.
    fn call_replica_prepared(
        &mut self,
        engine: &mut Engine,
        replica: InterfaceId,
        op: &str,
        prepared: &Payload,
    ) -> Result<Termination, CallError> {
        let ch = self.channel_for(engine, replica)?;
        engine.call_prepared(ch, op, prepared)
    }

    /// Applies an update to the group per its policy. Under
    /// [`ReplicationPolicy::Active`] every member must succeed; under
    /// [`ReplicationPolicy::PrimaryCopy`] the primary applies it and the
    /// update is then propagated to the other members (synchronously, so
    /// the group stays consistent).
    ///
    /// # Errors
    ///
    /// The first replica failure; callers typically drop the failed
    /// replica via [`drop_replica`](Self::drop_replica) and retry.
    pub fn update(
        &mut self,
        engine: &mut Engine,
        infra: &mut OdpInfra,
        op: &str,
        args: &Value,
    ) -> Result<Termination, ReplicationError> {
        let view = infra.groups.view(self.group)?;
        if view.members.is_empty() {
            return Err(ReplicationError::Exhausted);
        }
        let policy = infra.groups.policy(self.group)?;
        let order: Vec<InterfaceId> = match policy {
            ReplicationPolicy::Active => view.members.clone(),
            ReplicationPolicy::PrimaryCopy => {
                let primary = view.primary.expect("non-empty view has a primary");
                // Primary first, then the rest (state propagation).
                std::iter::once(primary)
                    .chain(view.members.iter().copied().filter(|m| *m != primary))
                    .collect()
            }
        };
        let span = bus::new_span();
        event(Layer::Transparency, EventKind::ReplicaUpdate)
            .span(span)
            .parent_from_context()
            .detail(format!(
                "group={} op={op} fanout={}",
                self.group,
                order.len()
            ))
            .emit();
        bus::counter_add("transparency.replica_updates", 1);
        // Marshal the invocation once; every replica shares the same
        // encoded arguments (all channels originate at `self.client`, so
        // the per-replica encodings would be byte-identical anyway).
        let prepared = engine
            .prepare_invocation(self.client, op, args)
            .map_err(|e| ReplicationError::UpdateFailed {
                replica: order[0],
                error: e.to_string(),
            })?;
        bus::push_context(span);
        let mut first: Option<Termination> = None;
        for replica in order {
            match self.call_replica_prepared(engine, replica, op, &prepared) {
                Ok(t) => {
                    event(Layer::Transparency, EventKind::ReplicaVote)
                        .span(span)
                        .detail(format!("replica={replica} applied {op}"))
                        .emit();
                    if first.is_none() {
                        first = Some(t);
                    }
                }
                Err(e) => {
                    bus::pop_context();
                    return Err(ReplicationError::UpdateFailed {
                        replica,
                        error: e.to_string(),
                    });
                }
            }
        }
        bus::pop_context();
        Ok(first.expect("non-empty order produced a termination"))
    }

    /// Serves a read from one replica (round-robin over the view).
    ///
    /// # Errors
    ///
    /// Group errors, exhaustion, or the chosen replica's failure.
    pub fn read(
        &mut self,
        engine: &mut Engine,
        infra: &mut OdpInfra,
        op: &str,
        args: &Value,
    ) -> Result<Termination, ReplicationError> {
        let n = self.reads;
        self.reads += 1;
        let target = infra
            .groups
            .read_target(self.group, n)?
            .ok_or(ReplicationError::Exhausted)?;
        event(Layer::Transparency, EventKind::ReplicaRead)
            .in_context()
            .detail(format!("group={} op={op} replica={target}", self.group))
            .emit();
        bus::counter_add("transparency.replica_reads", 1);
        self.call_replica(engine, target, op, args)
            .map_err(|e| ReplicationError::UpdateFailed {
                replica: target,
                error: e.to_string(),
            })
    }

    /// Reads from *every* replica — a consistency probe used by tests and
    /// benchmarks.
    ///
    /// # Errors
    ///
    /// Group errors or any replica failure.
    pub fn read_all(
        &mut self,
        engine: &mut Engine,
        infra: &mut OdpInfra,
        op: &str,
        args: &Value,
    ) -> Result<Vec<Termination>, ReplicationError> {
        let view = infra.groups.view(self.group)?;
        let mut out = Vec::with_capacity(view.members.len());
        for replica in view.members {
            let t = self.call_replica(engine, replica, op, args).map_err(|e| {
                ReplicationError::UpdateFailed {
                    replica,
                    error: e.to_string(),
                }
            })?;
            out.push(t);
        }
        Ok(out)
    }

    /// Drops a (failed) replica from the group view.
    ///
    /// # Errors
    ///
    /// Group errors.
    pub fn drop_replica(
        &mut self,
        infra: &mut OdpInfra,
        replica: InterfaceId,
    ) -> Result<(), ReplicationError> {
        infra.groups.leave(self.group, replica)?;
        self.channels.remove(&replica);
        event(Layer::Transparency, EventKind::ReplicaVote)
            .in_context()
            .detail(format!("group={} dropped replica={replica}", self.group))
            .emit();
        bus::counter_add("transparency.replica_drops", 1);
        Ok(())
    }
}

/// Convenience: build `n` counter replicas spread over fresh nodes and a
/// replicated front for them. Returns the service and the replica
/// interfaces.
pub fn replicated_counters(
    engine: &mut Engine,
    infra: &mut OdpInfra,
    client: NodeId,
    policy: ReplicationPolicy,
    n: usize,
) -> Result<(ReplicatedService, Vec<InterfaceId>), ReplicationError> {
    use rmodp_engineering::behaviour::CounterBehaviour;
    let mut replicas = Vec::with_capacity(n);
    for _ in 0..n {
        let node = engine.add_node(SyntaxId::Binary);
        let capsule = engine
            .add_capsule(node)
            .map_err(|e| ReplicationError::UpdateFailed {
                replica: InterfaceId::new(0),
                error: e.to_string(),
            })?;
        let cluster =
            engine
                .add_cluster(node, capsule)
                .map_err(|e| ReplicationError::UpdateFailed {
                    replica: InterfaceId::new(0),
                    error: e.to_string(),
                })?;
        let (_, refs) = engine
            .create_object(
                node,
                capsule,
                cluster,
                "replica",
                "counter",
                CounterBehaviour::initial_state(),
                1,
            )
            .map_err(|e| ReplicationError::UpdateFailed {
                replica: InterfaceId::new(0),
                error: e.to_string(),
            })?;
        let _ = infra.publish(engine, refs[0].interface);
        replicas.push(refs[0].interface);
    }
    let service = ReplicatedService::new(engine, infra, client, policy, replicas.clone())?;
    Ok((service, replicas))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmodp_engineering::behaviour::CounterBehaviour;

    fn world(
        policy: ReplicationPolicy,
        n: usize,
    ) -> (Engine, OdpInfra, ReplicatedService, Vec<InterfaceId>) {
        let mut engine = Engine::new(41);
        engine
            .behaviours_mut()
            .register("counter", CounterBehaviour::default);
        let client = engine.add_node(SyntaxId::Binary);
        let mut infra = OdpInfra::new();
        let (service, replicas) =
            replicated_counters(&mut engine, &mut infra, client, policy, n).unwrap();
        (engine, infra, service, replicas)
    }

    fn add(k: i64) -> Value {
        Value::record([("k", Value::Int(k))])
    }

    fn get() -> Value {
        Value::record::<&str, _>([])
    }

    #[test]
    fn active_replication_keeps_all_replicas_identical() {
        let (mut e, mut infra, mut svc, _) = world(ReplicationPolicy::Active, 3);
        svc.update(&mut e, &mut infra, "Add", &add(5)).unwrap();
        svc.update(&mut e, &mut infra, "Add", &add(7)).unwrap();
        let all = svc.read_all(&mut e, &mut infra, "Get", &get()).unwrap();
        assert_eq!(all.len(), 3);
        for t in all {
            assert_eq!(t.results.field("n"), Some(&Value::Int(12)));
        }
    }

    #[test]
    fn primary_copy_propagates_to_backups() {
        let (mut e, mut infra, mut svc, _) = world(ReplicationPolicy::PrimaryCopy, 3);
        svc.update(&mut e, &mut infra, "Add", &add(9)).unwrap();
        let all = svc.read_all(&mut e, &mut infra, "Get", &get()).unwrap();
        for t in all {
            assert_eq!(t.results.field("n"), Some(&Value::Int(9)));
        }
    }

    #[test]
    fn reads_round_robin_over_replicas() {
        let (mut e, mut infra, mut svc, _) = world(ReplicationPolicy::Active, 2);
        svc.update(&mut e, &mut infra, "Add", &add(1)).unwrap();
        for _ in 0..4 {
            let t = svc.read(&mut e, &mut infra, "Get", &get()).unwrap();
            assert_eq!(t.results.field("n"), Some(&Value::Int(1)));
        }
        // Round robin: 4 reads over 2 replicas touched both (server
        // request counters: 1 update + 2 reads each).
        let nodes = e.nodes();
        let mut request_counts = Vec::new();
        for n in nodes {
            if let Ok(stats) = e.node_stats(n) {
                if stats.requests > 0 {
                    request_counts.push(stats.requests);
                }
            }
        }
        assert_eq!(request_counts, vec![3, 3]);
    }

    #[test]
    fn failed_replica_is_dropped_and_service_continues() {
        let (mut e, mut infra, mut svc, replicas) = world(ReplicationPolicy::Active, 3);
        svc.update(&mut e, &mut infra, "Add", &add(2)).unwrap();
        // Crash replica 1's node.
        let loc = e.lookup(replicas[1]).unwrap().location.node;
        let idx = e.sim_node(loc).unwrap();
        e.sim_mut().topology_mut().crash(idx);
        // The update fails naming the dead replica…
        let err = svc.update(&mut e, &mut infra, "Add", &add(3)).unwrap_err();
        match err {
            ReplicationError::UpdateFailed { replica, .. } => {
                assert_eq!(replica, replicas[1]);
                svc.drop_replica(&mut infra, replica).unwrap();
            }
            other => panic!("unexpected {other:?}"),
        }
        // …and after the view change everything proceeds.
        svc.update(&mut e, &mut infra, "Add", &add(3)).unwrap();
        let all = svc.read_all(&mut e, &mut infra, "Get", &get()).unwrap();
        assert_eq!(all.len(), 2);
        // At-least-once semantics under non-idempotent updates: the failed
        // round reached r0 (members are updated in view order) before r1's
        // failure aborted it, so r0 = 2+3+3 = 8 while r2 = 2+3 = 5. Making
        // retried updates safe requires idempotent operations or an update
        // log — exactly the trade-off the benchmark ablation quantifies.
        let views: Vec<_> = all.iter().map(|t| t.results.field("n").cloned()).collect();
        assert_eq!(views, vec![Some(Value::Int(8)), Some(Value::Int(5))]);
    }

    #[test]
    fn empty_group_is_exhausted() {
        let (mut e, mut infra, mut svc, replicas) = world(ReplicationPolicy::Active, 1);
        svc.drop_replica(&mut infra, replicas[0]).unwrap();
        assert!(matches!(
            svc.update(&mut e, &mut infra, "Add", &add(1)),
            Err(ReplicationError::Exhausted)
        ));
        assert!(matches!(
            svc.read(&mut e, &mut infra, "Get", &get()),
            Err(ReplicationError::Exhausted)
        ));
    }
}
