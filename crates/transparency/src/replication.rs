//! Replication transparency: a group of replicas behind one interface.
//!
//! "Replication transparency maintains consistency of a group of replica
//! objects with a common interface" (§9). A [`ReplicatedService`] fronts a
//! replica group: updates are disseminated to the group per its policy
//! (active replication sends to everyone; primary-copy sends to the
//! primary and re-syncs the others), reads are served by any replica, and
//! a failed replica can be dropped from the view without clients noticing.

use std::collections::BTreeMap;
use std::fmt;

use rmodp_computational::signature::Termination;
use rmodp_core::codec::SyntaxId;
use rmodp_core::id::{ChannelId, GroupId, InterfaceId, NodeId};
use rmodp_core::value::Value;
use rmodp_engineering::channel::ChannelConfig;
use rmodp_engineering::engine::{CallError, Engine};
use rmodp_functions::group::{GroupError, ReplicationPolicy};
use rmodp_kernel::payload::Payload;
use rmodp_observe::{bus, event, EventKind, Layer};

use crate::proxy::OdpInfra;

/// A replication failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplicationError {
    /// Group bookkeeping failed.
    Group(GroupError),
    /// An update could not reach a required replica.
    UpdateFailed { replica: InterfaceId, error: String },
    /// The group has no members left.
    Exhausted,
    /// A replica fenced this front: a newer epoch exists, so this
    /// front's writes are void and it must re-elect or stand down.
    Fenced { epoch: u64, newer: u64 },
    /// Fewer than a majority of the roster acknowledged, so the update
    /// did **not** commit (retrying after failover is safe: the
    /// sequence number is not advanced and replicas stage idempotently).
    QuorumLost { acks: usize, needed: usize },
    /// A quorum operation was attempted before any epoch was elected.
    NoLeader,
}

impl fmt::Display for ReplicationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicationError::Group(e) => write!(f, "{e}"),
            ReplicationError::UpdateFailed { replica, error } => {
                write!(f, "update failed at {replica}: {error}")
            }
            ReplicationError::Exhausted => write!(f, "no replicas remain"),
            ReplicationError::Fenced { epoch, newer } => {
                write!(f, "fenced: epoch {epoch} superseded by {newer}")
            }
            ReplicationError::QuorumLost { acks, needed } => {
                write!(f, "quorum lost: {acks} acks of {needed} needed")
            }
            ReplicationError::NoLeader => write!(f, "no epoch has been elected"),
        }
    }
}

impl std::error::Error for ReplicationError {}

impl From<GroupError> for ReplicationError {
    fn from(e: GroupError) -> Self {
        ReplicationError::Group(e)
    }
}

/// A client-side front for a replica group.
///
/// Two families of methods coexist:
///
/// - the original policy-driven dissemination ([`update`]/[`read`]),
///   which fans writes out with no quorum — kept for the ablation it
///   enables (its test documents the lost-update anomaly);
/// - the **quorum** path ([`quorum_update`]/[`quorum_read`]/
///   [`fail_over`]) over replicas running the epoch-fencing
///   [`QuorumCounterBehaviour`] state machine, where an update commits
///   only when a majority of the *full roster* acknowledges it under
///   this front's epoch.
///
/// The safety argument, in one paragraph: an epoch is installed only
/// after a majority of the roster acknowledged `NewEpoch`
/// ([`GroupManager::install_view`] refuses otherwise), and an update
/// commits only on a majority of `Apply` acks at its epoch. Any two
/// majorities of one roster intersect, so a front whose epoch has been
/// superseded always meets at least one replica that already adopted
/// the newer epoch — which answers `Fenced` instead of acking — and
/// since replicas ack only epochs at or above their own, a fenced
/// response and a majority of acks are mutually exclusive. A
/// partitioned stale leader therefore cannot commit anything, ever: no
/// split-brain by construction, not by timing.
///
/// [`update`]: Self::update
/// [`read`]: Self::read
/// [`quorum_update`]: Self::quorum_update
/// [`quorum_read`]: Self::quorum_read
/// [`fail_over`]: Self::fail_over
/// [`QuorumCounterBehaviour`]: rmodp_engineering::behaviour::QuorumCounterBehaviour
/// [`GroupManager::install_view`]: rmodp_functions::group::GroupManager::install_view
#[derive(Debug)]
pub struct ReplicatedService {
    client: NodeId,
    group: GroupId,
    channels: BTreeMap<InterfaceId, ChannelId>,
    reads: u64,
    /// The fencing epoch this front believes it holds. Deliberately a
    /// *cached* copy, not a live read of the shared [`GroupManager`]:
    /// the cache going stale is exactly what the replicas' fencing
    /// protects against.
    ///
    /// [`GroupManager`]: rmodp_functions::group::GroupManager
    epoch: u64,
    /// Highest sequence number staged by this front (quorum path).
    seq: u64,
    /// Highest sequence number known committed (majority-acked).
    committed: u64,
    /// The committed fold (counter value) at `committed` — what `Sync`
    /// sends when repairing a lagging replica.
    value: i64,
}

impl ReplicatedService {
    /// Creates the front and a group containing the given replicas.
    pub fn new(
        engine: &mut Engine,
        infra: &mut OdpInfra,
        client: NodeId,
        policy: ReplicationPolicy,
        replicas: Vec<InterfaceId>,
    ) -> Result<Self, ReplicationError> {
        let group = infra.groups.create(policy, replicas.clone());
        let mut channels = BTreeMap::new();
        for r in replicas {
            let ch = engine
                .open_channel(client, r, ChannelConfig::default())
                .map_err(|e| ReplicationError::UpdateFailed {
                    replica: r,
                    error: e.to_string(),
                })?;
            channels.insert(r, ch);
        }
        Ok(Self {
            client,
            group,
            channels,
            reads: 0,
            epoch: 0,
            seq: 0,
            committed: 0,
            value: 0,
        })
    }

    /// Creates a quorum-replicated front: an [`ReplicationPolicy::Active`]
    /// group over `replicas` (which must run the quorum state machine,
    /// e.g. via [`quorum_counters`]), with epoch 1 elected immediately —
    /// the constructor fails with [`ReplicationError::QuorumLost`] if a
    /// majority of the roster is not reachable at birth.
    pub fn quorum(
        engine: &mut Engine,
        infra: &mut OdpInfra,
        client: NodeId,
        replicas: Vec<InterfaceId>,
    ) -> Result<Self, ReplicationError> {
        let mut svc = Self::new(engine, infra, client, ReplicationPolicy::Active, replicas)?;
        svc.fail_over(engine, infra)?;
        Ok(svc)
    }

    /// Opens a *second* front onto an existing quorum group — the
    /// takeover path: a fresh front may not write under the old epoch
    /// (its state cache would be cold and its seq allocation would
    /// collide), so attaching **elects a new epoch** before returning.
    /// The old front keeps running with its now-stale cached epoch; its
    /// next quorum write is fenced.
    pub fn attach(
        engine: &mut Engine,
        infra: &mut OdpInfra,
        client: NodeId,
        group: GroupId,
    ) -> Result<Self, ReplicationError> {
        let view = infra.groups.view(group)?;
        let mut channels = BTreeMap::new();
        for r in &view.members {
            if let Ok(ch) = engine.open_channel(client, *r, ChannelConfig::default()) {
                channels.insert(*r, ch);
            }
        }
        let mut svc = Self {
            client,
            group,
            channels,
            reads: 0,
            epoch: 0,
            seq: 0,
            committed: 0,
            value: 0,
        };
        svc.fail_over(engine, infra)?;
        Ok(svc)
    }

    /// The backing group.
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// The fencing epoch this front currently holds (0 before any
    /// election).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The highest sequence number this front knows to be committed.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    fn channel_for(
        &mut self,
        engine: &mut Engine,
        replica: InterfaceId,
    ) -> Result<ChannelId, CallError> {
        match self.channels.get(&replica) {
            Some(ch) => Ok(*ch),
            None => {
                let ch = engine.open_channel(self.client, replica, ChannelConfig::default())?;
                self.channels.insert(replica, ch);
                Ok(ch)
            }
        }
    }

    fn call_replica(
        &mut self,
        engine: &mut Engine,
        replica: InterfaceId,
        op: &str,
        args: &Value,
    ) -> Result<Termination, CallError> {
        let ch = self.channel_for(engine, replica)?;
        engine.call(ch, op, args)
    }

    /// Dispatches an already-marshalled invocation to one replica. The
    /// prepared [`Payload`] is shared (`Arc` clone) across the fan-out,
    /// so the arguments are encoded once per update, not once per
    /// replica.
    fn call_replica_prepared(
        &mut self,
        engine: &mut Engine,
        replica: InterfaceId,
        op: &str,
        prepared: &Payload,
    ) -> Result<Termination, CallError> {
        let ch = self.channel_for(engine, replica)?;
        engine.call_prepared(ch, op, prepared)
    }

    /// Applies an update to the group per its policy. Under
    /// [`ReplicationPolicy::Active`] every member must succeed; under
    /// [`ReplicationPolicy::PrimaryCopy`] the primary applies it and the
    /// update is then propagated to the other members (synchronously, so
    /// the group stays consistent).
    ///
    /// # Errors
    ///
    /// The first replica failure; callers typically drop the failed
    /// replica via [`drop_replica`](Self::drop_replica) and retry.
    pub fn update(
        &mut self,
        engine: &mut Engine,
        infra: &mut OdpInfra,
        op: &str,
        args: &Value,
    ) -> Result<Termination, ReplicationError> {
        let view = infra.groups.view(self.group)?;
        if view.members.is_empty() {
            return Err(ReplicationError::Exhausted);
        }
        let policy = infra.groups.policy(self.group)?;
        let order: Vec<InterfaceId> = match policy {
            ReplicationPolicy::Active => view.members.clone(),
            ReplicationPolicy::PrimaryCopy => {
                let primary = view.primary.expect("non-empty view has a primary");
                // Primary first, then the rest (state propagation).
                std::iter::once(primary)
                    .chain(view.members.iter().copied().filter(|m| *m != primary))
                    .collect()
            }
        };
        let span = bus::new_span();
        event(Layer::Transparency, EventKind::ReplicaUpdate)
            .span(span)
            .parent_from_context()
            .detail(format!(
                "group={} op={op} fanout={}",
                self.group,
                order.len()
            ))
            .emit();
        bus::counter_add("transparency.replica_updates", 1);
        // Marshal the invocation once; every replica shares the same
        // encoded arguments (all channels originate at `self.client`, so
        // the per-replica encodings would be byte-identical anyway).
        let prepared = engine
            .prepare_invocation(self.client, op, args)
            .map_err(|e| ReplicationError::UpdateFailed {
                replica: order[0],
                error: e.to_string(),
            })?;
        bus::push_context(span);
        let mut first: Option<Termination> = None;
        for replica in order {
            match self.call_replica_prepared(engine, replica, op, &prepared) {
                Ok(t) => {
                    event(Layer::Transparency, EventKind::ReplicaVote)
                        .span(span)
                        .detail(format!("replica={replica} applied {op}"))
                        .emit();
                    if first.is_none() {
                        first = Some(t);
                    }
                }
                Err(e) => {
                    bus::pop_context();
                    return Err(ReplicationError::UpdateFailed {
                        replica,
                        error: e.to_string(),
                    });
                }
            }
        }
        bus::pop_context();
        Ok(first.expect("non-empty order produced a termination"))
    }

    /// Serves a read from one replica (round-robin over the view).
    ///
    /// # Errors
    ///
    /// Group errors, exhaustion, or the chosen replica's failure.
    pub fn read(
        &mut self,
        engine: &mut Engine,
        infra: &mut OdpInfra,
        op: &str,
        args: &Value,
    ) -> Result<Termination, ReplicationError> {
        let n = self.reads;
        self.reads += 1;
        let target = infra
            .groups
            .read_target(self.group, n)?
            .ok_or(ReplicationError::Exhausted)?;
        event(Layer::Transparency, EventKind::ReplicaRead)
            .in_context()
            .detail(format!("group={} op={op} replica={target}", self.group))
            .emit();
        bus::counter_add("transparency.replica_reads", 1);
        self.call_replica(engine, target, op, args)
            .map_err(|e| ReplicationError::UpdateFailed {
                replica: target,
                error: e.to_string(),
            })
    }

    /// Reads from *every* replica — a consistency probe used by tests and
    /// benchmarks.
    ///
    /// # Errors
    ///
    /// Group errors or any replica failure.
    pub fn read_all(
        &mut self,
        engine: &mut Engine,
        infra: &mut OdpInfra,
        op: &str,
        args: &Value,
    ) -> Result<Vec<Termination>, ReplicationError> {
        let view = infra.groups.view(self.group)?;
        let mut out = Vec::with_capacity(view.members.len());
        for replica in view.members {
            let t = self.call_replica(engine, replica, op, args).map_err(|e| {
                ReplicationError::UpdateFailed {
                    replica,
                    error: e.to_string(),
                }
            })?;
            out.push(t);
        }
        Ok(out)
    }

    /// Drops a (failed) replica from the group view.
    ///
    /// # Errors
    ///
    /// Group errors.
    pub fn drop_replica(
        &mut self,
        infra: &mut OdpInfra,
        replica: InterfaceId,
    ) -> Result<(), ReplicationError> {
        infra.groups.leave(self.group, replica)?;
        self.channels.remove(&replica);
        event(Layer::Transparency, EventKind::ReplicaVote)
            .in_context()
            .detail(format!("group={} dropped replica={replica}", self.group))
            .emit();
        bus::counter_add("transparency.replica_drops", 1);
        Ok(())
    }

    // ---- quorum path -------------------------------------------------

    fn ack_field(t: &Termination, field: &str) -> i64 {
        t.results.field(field).and_then(Value::as_int).unwrap_or(0)
    }

    /// Repairs a replica that answered `Gap` (it is missing part of the
    /// committed prefix — typically a healed partition or a restarted
    /// node): transfer the committed state absolutely, after which the
    /// pending `Apply` lands on `applied + 1` again.
    fn sync_replica(&mut self, engine: &mut Engine, replica: InterfaceId) -> bool {
        let args = Value::record([
            ("epoch", Value::Int(self.epoch as i64)),
            ("n", Value::Int(self.value)),
            ("commit", Value::Int(self.committed as i64)),
        ]);
        bus::counter_add("replication.sync_repairs", 1);
        matches!(
            self.call_replica(engine, replica, "Sync", &args),
            Ok(t) if t.is_ok()
        )
    }

    /// Applies `k` to the group under this front's epoch, committing
    /// **only** on a majority of the full roster. On success the commit
    /// watermark is advanced and pushed to every reachable replica (so
    /// reads observe it immediately); a minority of acks leaves the
    /// update durably *uncommitted* ([`ReplicationError::QuorumLost`] —
    /// retrying the same front re-uses the sequence number, which
    /// replicas stage idempotently). A [`ReplicationError::Fenced`]
    /// answer means a newer epoch exists and this front must stand down.
    pub fn quorum_update(
        &mut self,
        engine: &mut Engine,
        infra: &mut OdpInfra,
        k: i64,
    ) -> Result<Termination, ReplicationError> {
        if self.epoch == 0 {
            return Err(ReplicationError::NoLeader);
        }
        let view = infra.groups.view(self.group)?;
        if view.members.is_empty() {
            return Err(ReplicationError::Exhausted);
        }
        let seq = self.seq + 1;
        let needed = view.majority();
        let span = bus::new_span();
        event(Layer::Transparency, EventKind::ReplicaUpdate)
            .span(span)
            .parent_from_context()
            .detail(format!(
                "group={} epoch={} seq={seq} k={k} fanout={}",
                self.group.raw(),
                self.epoch,
                view.members.len()
            ))
            .emit();
        bus::counter_add("transparency.replica_updates", 1);
        let args = Value::record([
            ("epoch", Value::Int(self.epoch as i64)),
            ("seq", Value::Int(seq as i64)),
            ("k", Value::Int(k)),
            ("commit", Value::Int(self.committed as i64)),
        ]);
        let prepared = engine
            .prepare_invocation(self.client, "Apply", &args)
            .map_err(|e| ReplicationError::UpdateFailed {
                replica: view.members[0],
                error: e.to_string(),
            })?;
        bus::push_context(span);
        let mut acks = 0usize;
        let mut fenced_by: Option<u64> = None;
        for replica in &view.members {
            let mut answer = self.call_replica_prepared(engine, *replica, "Apply", &prepared);
            if matches!(&answer, Ok(t) if t.name == rmodp_engineering::behaviour::GAP) {
                // Laggard: state-transfer the committed prefix, retry once.
                if self.sync_replica(engine, *replica) {
                    answer = self.call_replica_prepared(engine, *replica, "Apply", &prepared);
                }
            }
            match answer {
                Ok(t) if t.is_ok() => {
                    acks += 1;
                    event(Layer::Transparency, EventKind::ReplicaVote)
                        .span(span)
                        .detail(format!("replica={} acked seq={seq}", replica.raw()))
                        .emit();
                }
                Ok(t) if t.name == rmodp_engineering::behaviour::FENCED => {
                    fenced_by = Some(Self::ack_field(&t, "epoch") as u64);
                }
                _ => {}
            }
        }
        if let Some(newer) = fenced_by {
            bus::pop_context();
            bus::counter_add("replication.fenced_writes", 1);
            event(Layer::Transparency, EventKind::FencedWrite)
                .span(span)
                .detail(format!(
                    "group={} epoch={} newer={newer} seq={seq}",
                    self.group.raw(),
                    self.epoch
                ))
                .emit();
            return Err(ReplicationError::Fenced {
                epoch: self.epoch,
                newer,
            });
        }
        if acks < needed {
            bus::pop_context();
            bus::counter_add("replication.quorum_losses", 1);
            return Err(ReplicationError::QuorumLost { acks, needed });
        }
        // Committed. Advance the watermark and push it out so reads on
        // any replica observe the new state immediately.
        self.seq = seq;
        self.committed = seq;
        bus::counter_add("replication.quorum_commits", 1);
        event(Layer::Transparency, EventKind::QuorumCommit)
            .span(span)
            .detail(format!(
                "group={} epoch={} seq={seq} acks={acks}",
                self.group.raw(),
                self.epoch
            ))
            .emit();
        let commit_args = Value::record([
            ("epoch", Value::Int(self.epoch as i64)),
            ("commit", Value::Int(seq as i64)),
        ]);
        let mut folded: Option<Termination> = None;
        for replica in &view.members {
            if let Ok(t) = self.call_replica(engine, *replica, "Commit", &commit_args) {
                if t.is_ok() && folded.is_none() {
                    self.value = Self::ack_field(&t, "n");
                    folded = Some(t);
                }
            }
        }
        bus::pop_context();
        folded.ok_or(ReplicationError::QuorumLost { acks: 0, needed })
    }

    /// Serves a linearizable read from the current leader under this
    /// front's epoch. Only **committed** state is ever returned (the
    /// replica state machine keeps staged updates out of `Get`), and a
    /// leader that moved on to a newer epoch fences the read.
    pub fn quorum_read(
        &mut self,
        engine: &mut Engine,
        infra: &mut OdpInfra,
    ) -> Result<Termination, ReplicationError> {
        if self.epoch == 0 {
            return Err(ReplicationError::NoLeader);
        }
        let view = infra.groups.view(self.group)?;
        let leader = view.leader.ok_or(ReplicationError::NoLeader)?;
        let t = self
            .call_replica(engine, leader, "Get", &Value::record::<&str, _>([]))
            .map_err(|e| ReplicationError::UpdateFailed {
                replica: leader,
                error: e.to_string(),
            })?;
        let replica_epoch = Self::ack_field(&t, "epoch") as u64;
        if replica_epoch > self.epoch {
            bus::counter_add("replication.fenced_writes", 1);
            event(Layer::Transparency, EventKind::FencedWrite)
                .in_context()
                .detail(format!(
                    "group={} epoch={} newer={replica_epoch} read",
                    self.group.raw(),
                    self.epoch
                ))
                .emit();
            return Err(ReplicationError::Fenced {
                epoch: self.epoch,
                newer: replica_epoch,
            });
        }
        bus::counter_add("transparency.replica_reads", 1);
        event(Layer::Transparency, EventKind::ReplicaRead)
            .in_context()
            .detail(format!(
                "group={} epoch={} commit={} n={} replica={}",
                self.group.raw(),
                self.epoch,
                Self::ack_field(&t, "commit"),
                Self::ack_field(&t, "n"),
                leader.raw()
            ))
            .emit();
        Ok(t)
    }

    /// Elects a fresh epoch: asks every roster member to adopt
    /// `max(known epochs) + 1`, and — given a majority of acks — makes
    /// the **maximum-applied acker** the leader. Because every replica
    /// refuses `Apply` gaps, each member's staged log is a contiguous
    /// prefix, and any committed sequence number was staged on a
    /// majority; the majority of election acks intersects it, so the
    /// max-applied acker provably holds every committed update. Its
    /// staged prefix is folded (committed through), every other acker is
    /// state-transferred, and the view is installed in the shared
    /// [`GroupManager`] — which re-checks the quorum arithmetic and
    /// emits the `view_change` event the consistency oracle audits.
    ///
    /// Entries that were staged on the new leader but never
    /// majority-acked are committed by the takeover — the documented
    /// at-least-once edge for clients whose `quorum_update` errored
    /// mid-flight (same contract as any consensus system's "retry an
    /// uncertain write" rule).
    ///
    /// [`GroupManager`]: rmodp_functions::group::GroupManager
    pub fn fail_over(
        &mut self,
        engine: &mut Engine,
        infra: &mut OdpInfra,
    ) -> Result<rmodp_functions::group::View, ReplicationError> {
        let view = infra.groups.view(self.group)?;
        if view.members.is_empty() {
            return Err(ReplicationError::Exhausted);
        }
        let epoch = view.epoch.max(self.epoch) + 1;
        let span = bus::new_span();
        event(Layer::Transparency, EventKind::Note)
            .span(span)
            .parent_from_context()
            .detail(format!(
                "election group={} epoch={epoch} roster={}",
                self.group.raw(),
                view.members.len()
            ))
            .emit();
        bus::push_context(span);
        let ballot = Value::record([("epoch", Value::Int(epoch as i64))]);
        let mut acks: Vec<(InterfaceId, i64, i64)> = Vec::new();
        for member in &view.members {
            if let Ok(t) = self.call_replica(engine, *member, "NewEpoch", &ballot) {
                if t.is_ok() {
                    acks.push((
                        *member,
                        Self::ack_field(&t, "applied"),
                        Self::ack_field(&t, "commit"),
                    ));
                }
            }
        }
        let needed = view.majority();
        if acks.len() < needed {
            bus::pop_context();
            return Err(ReplicationError::Group(GroupError::NoQuorum {
                acks: acks.len(),
                needed,
            }));
        }
        // Leader = max applied; ties break to roster order (acks are
        // collected in roster order, and strict `>` keeps the first).
        let (leader, leader_applied, _) = acks
            .iter()
            .copied()
            .fold(None::<(InterfaceId, i64, i64)>, |best, a| match best {
                Some(b) if b.1 >= a.1 => Some(b),
                _ => Some(a),
            })
            .expect("non-empty acks");
        // Fold the leader's whole staged prefix into committed state…
        let fold = self
            .call_replica(
                engine,
                leader,
                "Commit",
                &Value::record([
                    ("epoch", Value::Int(epoch as i64)),
                    ("commit", Value::Int(leader_applied)),
                ]),
            )
            .map_err(|e| ReplicationError::UpdateFailed {
                replica: leader,
                error: e.to_string(),
            })?;
        let value = Self::ack_field(&fold, "n");
        // …and bring every other acker to exactly that state.
        let sync_args = Value::record([
            ("epoch", Value::Int(epoch as i64)),
            ("n", Value::Int(value)),
            ("commit", Value::Int(leader_applied)),
        ]);
        for (member, _, _) in &acks {
            if *member != leader {
                let _ = self.call_replica(engine, *member, "Sync", &sync_args);
            }
        }
        self.epoch = epoch;
        self.seq = leader_applied as u64;
        self.committed = leader_applied as u64;
        self.value = value;
        bus::counter_add("replication.failovers", 1);
        let installed = infra.groups.install_view(
            self.group,
            epoch,
            leader,
            view.members.clone(),
            acks.len(),
            leader_applied as u64,
        )?;
        bus::pop_context();
        Ok(installed)
    }
}

/// Convenience: build `n` counter replicas spread over fresh nodes and a
/// replicated front for them. Returns the service and the replica
/// interfaces.
pub fn replicated_counters(
    engine: &mut Engine,
    infra: &mut OdpInfra,
    client: NodeId,
    policy: ReplicationPolicy,
    n: usize,
) -> Result<(ReplicatedService, Vec<InterfaceId>), ReplicationError> {
    use rmodp_engineering::behaviour::CounterBehaviour;
    let mut replicas = Vec::with_capacity(n);
    for _ in 0..n {
        let node = engine.add_node(SyntaxId::Binary);
        let capsule = engine
            .add_capsule(node)
            .map_err(|e| ReplicationError::UpdateFailed {
                replica: InterfaceId::new(0),
                error: e.to_string(),
            })?;
        let cluster =
            engine
                .add_cluster(node, capsule)
                .map_err(|e| ReplicationError::UpdateFailed {
                    replica: InterfaceId::new(0),
                    error: e.to_string(),
                })?;
        let (_, refs) = engine
            .create_object(
                node,
                capsule,
                cluster,
                "replica",
                "counter",
                CounterBehaviour::initial_state(),
                1,
            )
            .map_err(|e| ReplicationError::UpdateFailed {
                replica: InterfaceId::new(0),
                error: e.to_string(),
            })?;
        let _ = infra.publish(engine, refs[0].interface);
        replicas.push(refs[0].interface);
    }
    let service = ReplicatedService::new(engine, infra, client, policy, replicas.clone())?;
    Ok((service, replicas))
}

/// Convenience: build `n` quorum-counter replicas (one per fresh node,
/// running [`QuorumCounterBehaviour`]) and a quorum front with epoch 1
/// elected. Returns the service and the replica interfaces.
///
/// [`QuorumCounterBehaviour`]: rmodp_engineering::behaviour::QuorumCounterBehaviour
pub fn quorum_counters(
    engine: &mut Engine,
    infra: &mut OdpInfra,
    client: NodeId,
    n: usize,
) -> Result<(ReplicatedService, Vec<InterfaceId>), ReplicationError> {
    use rmodp_engineering::behaviour::QuorumCounterBehaviour;
    engine
        .behaviours_mut()
        .register("quorum_counter", QuorumCounterBehaviour::default);
    let mut replicas = Vec::with_capacity(n);
    for _ in 0..n {
        let node = engine.add_node(SyntaxId::Binary);
        let fail = |e: &dyn std::fmt::Display| ReplicationError::UpdateFailed {
            replica: InterfaceId::new(0),
            error: e.to_string(),
        };
        let capsule = engine.add_capsule(node).map_err(|e| fail(&e))?;
        let cluster = engine.add_cluster(node, capsule).map_err(|e| fail(&e))?;
        let (_, refs) = engine
            .create_object(
                node,
                capsule,
                cluster,
                "replica",
                "quorum_counter",
                QuorumCounterBehaviour::initial_state(),
                1,
            )
            .map_err(|e| fail(&e))?;
        let _ = infra.publish(engine, refs[0].interface);
        replicas.push(refs[0].interface);
    }
    let service = ReplicatedService::quorum(engine, infra, client, replicas.clone())?;
    Ok((service, replicas))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmodp_engineering::behaviour::CounterBehaviour;

    fn world(
        policy: ReplicationPolicy,
        n: usize,
    ) -> (Engine, OdpInfra, ReplicatedService, Vec<InterfaceId>) {
        let mut engine = Engine::new(41);
        engine
            .behaviours_mut()
            .register("counter", CounterBehaviour::default);
        let client = engine.add_node(SyntaxId::Binary);
        let mut infra = OdpInfra::new();
        let (service, replicas) =
            replicated_counters(&mut engine, &mut infra, client, policy, n).unwrap();
        (engine, infra, service, replicas)
    }

    fn add(k: i64) -> Value {
        Value::record([("k", Value::Int(k))])
    }

    fn get() -> Value {
        Value::record::<&str, _>([])
    }

    #[test]
    fn active_replication_keeps_all_replicas_identical() {
        let (mut e, mut infra, mut svc, _) = world(ReplicationPolicy::Active, 3);
        svc.update(&mut e, &mut infra, "Add", &add(5)).unwrap();
        svc.update(&mut e, &mut infra, "Add", &add(7)).unwrap();
        let all = svc.read_all(&mut e, &mut infra, "Get", &get()).unwrap();
        assert_eq!(all.len(), 3);
        for t in all {
            assert_eq!(t.results.field("n"), Some(&Value::Int(12)));
        }
    }

    #[test]
    fn primary_copy_propagates_to_backups() {
        let (mut e, mut infra, mut svc, _) = world(ReplicationPolicy::PrimaryCopy, 3);
        svc.update(&mut e, &mut infra, "Add", &add(9)).unwrap();
        let all = svc.read_all(&mut e, &mut infra, "Get", &get()).unwrap();
        for t in all {
            assert_eq!(t.results.field("n"), Some(&Value::Int(9)));
        }
    }

    #[test]
    fn reads_round_robin_over_replicas() {
        let (mut e, mut infra, mut svc, _) = world(ReplicationPolicy::Active, 2);
        svc.update(&mut e, &mut infra, "Add", &add(1)).unwrap();
        for _ in 0..4 {
            let t = svc.read(&mut e, &mut infra, "Get", &get()).unwrap();
            assert_eq!(t.results.field("n"), Some(&Value::Int(1)));
        }
        // Round robin: 4 reads over 2 replicas touched both (server
        // request counters: 1 update + 2 reads each).
        let nodes = e.nodes();
        let mut request_counts = Vec::new();
        for n in nodes {
            if let Ok(stats) = e.node_stats(n) {
                if stats.requests > 0 {
                    request_counts.push(stats.requests);
                }
            }
        }
        assert_eq!(request_counts, vec![3, 3]);
    }

    #[test]
    fn failed_replica_is_dropped_and_service_continues() {
        let (mut e, mut infra, mut svc, replicas) = world(ReplicationPolicy::Active, 3);
        svc.update(&mut e, &mut infra, "Add", &add(2)).unwrap();
        // Crash replica 1's node.
        let loc = e.lookup(replicas[1]).unwrap().location.node;
        let idx = e.sim_node(loc).unwrap();
        e.sim_mut().topology_mut().crash(idx);
        // The update fails naming the dead replica…
        let err = svc.update(&mut e, &mut infra, "Add", &add(3)).unwrap_err();
        match err {
            ReplicationError::UpdateFailed { replica, .. } => {
                assert_eq!(replica, replicas[1]);
                svc.drop_replica(&mut infra, replica).unwrap();
            }
            other => panic!("unexpected {other:?}"),
        }
        // …and after the view change everything proceeds.
        svc.update(&mut e, &mut infra, "Add", &add(3)).unwrap();
        let all = svc.read_all(&mut e, &mut infra, "Get", &get()).unwrap();
        assert_eq!(all.len(), 2);
        // At-least-once semantics under non-idempotent updates: the failed
        // round reached r0 (members are updated in view order) before r1's
        // failure aborted it, so r0 = 2+3+3 = 8 while r2 = 2+3 = 5. Making
        // retried updates safe requires idempotent operations or an update
        // log — exactly the trade-off the benchmark ablation quantifies.
        let views: Vec<_> = all.iter().map(|t| t.results.field("n").cloned()).collect();
        assert_eq!(views, vec![Some(Value::Int(8)), Some(Value::Int(5))]);
    }

    fn quorum_world(n: usize) -> (Engine, OdpInfra, ReplicatedService, Vec<InterfaceId>) {
        let mut engine = Engine::new(43);
        let client = engine.add_node(SyntaxId::Binary);
        let mut infra = OdpInfra::new();
        let (service, replicas) = quorum_counters(&mut engine, &mut infra, client, n).unwrap();
        (engine, infra, service, replicas)
    }

    fn crash_replica(e: &mut Engine, replica: InterfaceId) {
        let loc = e.lookup(replica).unwrap().location.node;
        let idx = e.sim_node(loc).unwrap();
        e.sim_mut().topology_mut().crash(idx);
    }

    #[test]
    fn quorum_update_commits_and_reads_committed_state() {
        let (mut e, mut infra, mut svc, _) = quorum_world(3);
        assert_eq!(svc.epoch(), 1);
        svc.quorum_update(&mut e, &mut infra, 5).unwrap();
        svc.quorum_update(&mut e, &mut infra, 7).unwrap();
        let t = svc.quorum_read(&mut e, &mut infra).unwrap();
        assert_eq!(t.results.field("n"), Some(&Value::Int(12)));
        assert_eq!(t.results.field("commit"), Some(&Value::Int(2)));
        assert_eq!(svc.committed(), 2);
        assert_eq!(bus::counter("replication.quorum_commits"), 2);
        assert_eq!(bus::counter("replication.fenced_writes"), 0);
    }

    #[test]
    fn quorum_survives_a_minority_crash_and_loses_a_majority() {
        let (mut e, mut infra, mut svc, replicas) = quorum_world(5);
        svc.quorum_update(&mut e, &mut infra, 1).unwrap();
        // Two of five down: still a majority of three.
        crash_replica(&mut e, replicas[3]);
        crash_replica(&mut e, replicas[4]);
        svc.quorum_update(&mut e, &mut infra, 2).unwrap();
        // A third crash breaks the quorum; the update must NOT commit.
        crash_replica(&mut e, replicas[2]);
        assert_eq!(
            svc.quorum_update(&mut e, &mut infra, 4),
            Err(ReplicationError::QuorumLost { acks: 2, needed: 3 })
        );
        assert_eq!(svc.committed(), 2);
    }

    #[test]
    fn stale_front_is_fenced_after_takeover() {
        let (mut e, mut infra, mut old_front, _) = quorum_world(3);
        old_front.quorum_update(&mut e, &mut infra, 10).unwrap();
        // A second front takes over: new epoch elected on a majority.
        let client2 = e.add_node(SyntaxId::Binary);
        let mut new_front =
            ReplicatedService::attach(&mut e, &mut infra, client2, old_front.group()).unwrap();
        assert_eq!(new_front.epoch(), 2);
        // The committed prefix survived the takeover.
        let t = new_front.quorum_read(&mut e, &mut infra).unwrap();
        assert_eq!(t.results.field("n"), Some(&Value::Int(10)));
        new_front.quorum_update(&mut e, &mut infra, 3).unwrap();
        // The old front's next write is fenced by the very first replica.
        assert_eq!(
            old_front.quorum_update(&mut e, &mut infra, 99),
            Err(ReplicationError::Fenced { epoch: 1, newer: 2 })
        );
        assert!(bus::counter("replication.fenced_writes") >= 1);
        // Nothing the old front attempted after the takeover is visible.
        let t = new_front.quorum_read(&mut e, &mut infra).unwrap();
        assert_eq!(t.results.field("n"), Some(&Value::Int(13)));
    }

    #[test]
    fn failover_elects_max_applied_and_repairs_laggards() {
        let (mut e, mut infra, mut svc, replicas) = quorum_world(5);
        for k in 1..=4 {
            svc.quorum_update(&mut e, &mut infra, k).unwrap();
        }
        // The leader dies; a new election must find every committed
        // update on the surviving majority.
        let leader = infra.groups.view(svc.group()).unwrap().leader.unwrap();
        crash_replica(&mut e, leader);
        let view = svc.fail_over(&mut e, &mut infra).unwrap();
        assert_eq!(view.epoch, 2);
        assert_ne!(view.leader, Some(leader));
        let t = svc.quorum_read(&mut e, &mut infra).unwrap();
        assert_eq!(t.results.field("n"), Some(&Value::Int(10)));
        // Writes keep flowing at the new epoch.
        svc.quorum_update(&mut e, &mut infra, 5).unwrap();
        let t = svc.quorum_read(&mut e, &mut infra).unwrap();
        assert_eq!(t.results.field("n"), Some(&Value::Int(15)));
        // The dead ex-leader heals and is repaired transparently by the
        // next update's Gap → Sync path.
        let loc = e.lookup(leader).unwrap().location.node;
        let idx = e.sim_node(loc).unwrap();
        e.sim_mut().topology_mut().restart(idx);
        svc.quorum_update(&mut e, &mut infra, 6).unwrap();
        let _ = replicas;
        assert_eq!(svc.committed(), 6);
    }

    #[test]
    fn quorum_update_without_election_is_refused() {
        let mut engine = Engine::new(47);
        let client = engine.add_node(SyntaxId::Binary);
        let mut infra = OdpInfra::new();
        // Bypass the quorum constructor: a plain front has no epoch.
        let (mut svc, _) = {
            use rmodp_engineering::behaviour::QuorumCounterBehaviour;
            engine
                .behaviours_mut()
                .register("quorum_counter", QuorumCounterBehaviour::default);
            let node = engine.add_node(SyntaxId::Binary);
            let capsule = engine.add_capsule(node).unwrap();
            let cluster = engine.add_cluster(node, capsule).unwrap();
            let (_, refs) = engine
                .create_object(
                    node,
                    capsule,
                    cluster,
                    "replica",
                    "quorum_counter",
                    QuorumCounterBehaviour::initial_state(),
                    1,
                )
                .unwrap();
            infra.publish(&engine, refs[0].interface).unwrap();
            let svc = ReplicatedService::new(
                &mut engine,
                &mut infra,
                client,
                ReplicationPolicy::Active,
                vec![refs[0].interface],
            )
            .unwrap();
            (svc, refs[0].interface)
        };
        assert_eq!(
            svc.quorum_update(&mut engine, &mut infra, 1),
            Err(ReplicationError::NoLeader)
        );
        assert_eq!(
            svc.quorum_read(&mut engine, &mut infra),
            Err(ReplicationError::NoLeader)
        );
    }

    #[test]
    fn empty_group_is_exhausted() {
        let (mut e, mut infra, mut svc, replicas) = world(ReplicationPolicy::Active, 1);
        svc.drop_replica(&mut infra, replicas[0]).unwrap();
        assert!(matches!(
            svc.update(&mut e, &mut infra, "Add", &add(1)),
            Err(ReplicationError::Exhausted)
        ));
        assert!(matches!(
            svc.read(&mut e, &mut infra, "Get", &get()),
            Err(ReplicationError::Exhausted)
        ));
    }
}
