//! Location and relocation transparency: the transparent proxy (§9.2).
//!
//! "Relocation transparency can be achieved by configuring the channel
//! with binders, which inform the relocator of the location of the
//! interface… obtain from the relocator the location(s) of the other
//! interface(s)… Binders will typically cache location information. If
//! the location of an interface changes, the use of the old location will
//! cause an error. With relocation transparency, the binder will
//! automatically obtain the new location from the relocator, reconnect
//! the channel, and replay the interaction."
//!
//! [`TransparentProxy`] is exactly that binder behaviour exposed as a
//! client-side object: the caller supplies only an interface identity and
//! operation; stale locations are detected (`NotHere`), requeried,
//! reconnected and replayed — bounded by `max_replays`.

use std::fmt;

use rmodp_computational::signature::Termination;
use rmodp_core::codec::SyntaxId;
use rmodp_core::id::{CapsuleId, ChannelId, ClusterId, InterfaceId, NodeId};
use rmodp_core::value::Value;
use rmodp_engineering::engine::{CallError, EngError, Engine};
use rmodp_functions::events::EventNotifier;
use rmodp_functions::group::GroupManager;
use rmodp_functions::relocator::Relocator;
use rmodp_functions::storage::StorageFunction;

use crate::persistence::{PersistenceError, PersistenceManager};
use crate::selection::{Transparency, TransparencySet};

/// The infrastructure objects the transparencies lean on — the paper's
/// "supporting objects" outside the channel (Figure 4).
#[derive(Debug, Default)]
pub struct OdpInfra {
    /// The white-pages location repository (§8.3.3).
    pub relocator: Relocator,
    /// The storage function (persistent checkpoints).
    pub storage: StorageFunction,
    /// Event notification.
    pub events: EventNotifier,
    /// Group/replication membership.
    pub groups: GroupManager,
    /// Persistence bookkeeping.
    pub persistence: PersistenceManager,
}

impl OdpInfra {
    /// Creates empty infrastructure.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes an interface's authoritative location from the engine
    /// into the relocator (what binders do when a binding is set up).
    ///
    /// # Errors
    ///
    /// Unknown interface.
    pub fn publish(&mut self, engine: &Engine, interface: InterfaceId) -> Result<(), EngError> {
        let r = engine
            .lookup(interface)
            .ok_or(EngError::UnknownInterface { interface })?;
        // Stale registrations are fine to ignore: the relocator already
        // knows something at least as new.
        let _ = self.relocator.register(r);
        Ok(())
    }
}

/// A proxy failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ProxyError {
    /// The underlying call failed beyond what the selected transparencies
    /// can mask.
    Call(CallError),
    /// The relocator has no location for the target (and persistence
    /// transparency could not restore it).
    Unresolvable { interface: InterfaceId },
    /// Replays were exhausted without success.
    ReplaysExhausted { attempts: u32 },
    /// Persistence restoration failed.
    Persistence(String),
}

impl fmt::Display for ProxyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProxyError::Call(e) => write!(f, "{e}"),
            ProxyError::Unresolvable { interface } => {
                write!(f, "no location known for {interface}")
            }
            ProxyError::ReplaysExhausted { attempts } => {
                write!(f, "gave up after {attempts} replay attempt(s)")
            }
            ProxyError::Persistence(d) => write!(f, "persistence failure: {d}"),
        }
    }
}

impl std::error::Error for ProxyError {}

impl From<CallError> for ProxyError {
    fn from(e: CallError) -> Self {
        ProxyError::Call(e)
    }
}

impl From<PersistenceError> for ProxyError {
    fn from(e: PersistenceError) -> Self {
        ProxyError::Persistence(e.to_string())
    }
}

/// Counters describing what the proxy masked.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProxyStats {
    /// Successful invocations.
    pub calls: u64,
    /// Stale-location events masked by requery + replay.
    pub relocations_masked: u64,
    /// Deactivations masked by on-demand restore.
    pub restorations: u64,
}

/// A client-side transparent binding to one interface.
#[derive(Debug)]
pub struct TransparentProxy {
    client: NodeId,
    target: InterfaceId,
    selection: TransparencySet,
    wire_syntax: SyntaxId,
    channel: Option<ChannelId>,
    max_replays: u32,
    stats: ProxyStats,
}

impl TransparentProxy {
    /// Creates a proxy from a client node to a target interface with the
    /// selected transparencies.
    pub fn new(client: NodeId, target: InterfaceId, selection: TransparencySet) -> Self {
        Self {
            client,
            target,
            selection,
            wire_syntax: SyntaxId::Binary,
            channel: None,
            max_replays: 4,
            stats: ProxyStats::default(),
        }
    }

    /// Builder: sets the wire syntax.
    pub fn with_wire_syntax(mut self, syntax: SyntaxId) -> Self {
        self.wire_syntax = syntax;
        self
    }

    /// Builder: bounds the replay attempts.
    pub fn with_max_replays(mut self, n: u32) -> Self {
        self.max_replays = n;
        self
    }

    /// The target interface.
    pub fn target(&self) -> InterfaceId {
        self.target
    }

    /// What the proxy has masked so far.
    pub fn stats(&self) -> ProxyStats {
        self.stats
    }

    fn ensure_channel(
        &mut self,
        engine: &mut Engine,
        infra: &mut OdpInfra,
    ) -> Result<ChannelId, ProxyError> {
        if let Some(ch) = self.channel {
            return Ok(ch);
        }
        // Location transparency: resolve through the relocator, not a
        // physical address held by the application.
        if infra.relocator.lookup(self.target).is_none() {
            self.try_restore(engine, infra)?;
        }
        let config = self.selection.channel_config(self.wire_syntax);
        let ch = engine
            .open_channel(self.client, self.target, config)
            .map_err(|e| match e {
                EngError::UnknownInterface { interface } => ProxyError::Unresolvable { interface },
                other => ProxyError::Call(CallError::Eng(other)),
            })?;
        self.channel = Some(ch);
        Ok(ch)
    }

    fn try_restore(&mut self, engine: &mut Engine, infra: &mut OdpInfra) -> Result<(), ProxyError> {
        if !self.selection.has(Transparency::Persistence) {
            return Err(ProxyError::Unresolvable {
                interface: self.target,
            });
        }
        let label = infra
            .persistence
            .label_for(self.target)
            .map(str::to_owned)
            .ok_or(ProxyError::Unresolvable {
                interface: self.target,
            })?;
        infra.persistence.restore(engine, &infra.storage, &label)?;
        infra.publish(engine, self.target).map_err(CallError::Eng)?;
        self.stats.restorations += 1;
        Ok(())
    }

    /// Invokes an operation, masking whatever the selection covers.
    ///
    /// # Errors
    ///
    /// A [`ProxyError`] when the failure exceeds the selected
    /// transparencies.
    pub fn call(
        &mut self,
        engine: &mut Engine,
        infra: &mut OdpInfra,
        op: &str,
        args: &Value,
    ) -> Result<Termination, ProxyError> {
        let mut attempts = 0u32;
        loop {
            let ch = self.ensure_channel(engine, infra)?;
            match engine.call(ch, op, args) {
                Ok(t) => {
                    self.stats.calls += 1;
                    return Ok(t);
                }
                // A crashed old home yields Timeout rather than NotHere
                // (or CircuitOpen once the channel's breaker has tripped);
                // when the relocator knows a fresher location the proxy
                // fails over exactly as for an explicit stale report.
                Err(CallError::Timeout { .. } | CallError::CircuitOpen { .. })
                    if (self.selection.has(Transparency::Relocation)
                        || self.selection.has(Transparency::Migration)
                        || self.selection.has(Transparency::Failure))
                        && infra
                            .relocator
                            .peek(self.target)
                            .zip(engine.channel_believes(ch))
                            .is_some_and(|(fresh, believed)| fresh.epoch > believed.epoch) =>
                {
                    attempts += 1;
                    if attempts > self.max_replays {
                        return Err(ProxyError::ReplaysExhausted { attempts });
                    }
                    let fresh = infra.relocator.lookup(self.target).expect("peeked above");
                    engine.redirect_channel(ch, fresh).map_err(CallError::Eng)?;
                    self.stats.relocations_masked += 1;
                    continue;
                }
                Err(CallError::NotHere { .. })
                    if self.selection.has(Transparency::Relocation)
                        || self.selection.has(Transparency::Migration) =>
                {
                    attempts += 1;
                    if attempts > self.max_replays {
                        return Err(ProxyError::ReplaysExhausted { attempts });
                    }
                    // §9.2: obtain the new location, reconnect, replay.
                    match infra.relocator.lookup(self.target) {
                        Some(fresh)
                            if engine
                                .channel_believes(ch)
                                .is_some_and(|b| b.epoch < fresh.epoch) =>
                        {
                            engine.redirect_channel(ch, fresh).map_err(CallError::Eng)?;
                            self.stats.relocations_masked += 1;
                            continue;
                        }
                        _ => {
                            // The relocator knows nothing newer: maybe the
                            // cluster was deactivated — persistence
                            // transparency restores it.
                            self.try_restore(engine, infra)?;
                            if let Some(fresh) = infra.relocator.lookup(self.target) {
                                engine.redirect_channel(ch, fresh).map_err(CallError::Eng)?;
                                continue;
                            }
                            return Err(ProxyError::Unresolvable {
                                interface: self.target,
                            });
                        }
                    }
                }
                Err(other) => return Err(other.into()),
            }
        }
    }
}

/// Migrates a cluster *transparently*: performs the migration and
/// publishes the new locations to the relocator, so proxies mask the move
/// (migration transparency for peers; the object itself never sees
/// location anyway).
///
/// # Errors
///
/// Engineering failures from the migration itself.
pub fn migrate_transparently(
    engine: &mut Engine,
    infra: &mut OdpInfra,
    from: (NodeId, CapsuleId, ClusterId),
    to: (NodeId, CapsuleId),
    interfaces: &[InterfaceId],
) -> Result<ClusterId, EngError> {
    let new_cluster = engine.migrate_cluster(from.0, from.1, from.2, to.0, to.1)?;
    for ifc in interfaces {
        infra.publish(engine, *ifc)?;
    }
    infra.events.emit(
        "migrations",
        Value::record([
            ("cluster", Value::Int(from.2.raw() as i64)),
            ("to_node", Value::Int(to.0.raw() as i64)),
        ]),
    );
    Ok(new_cluster)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmodp_engineering::behaviour::CounterBehaviour;

    struct World {
        engine: Engine,
        infra: OdpInfra,
        home: (NodeId, CapsuleId, ClusterId),
        client: NodeId,
        interface: InterfaceId,
    }

    fn world() -> World {
        let mut engine = Engine::new(21);
        engine
            .behaviours_mut()
            .register("counter", CounterBehaviour::default);
        let node = engine.add_node(SyntaxId::Binary);
        let client = engine.add_node(SyntaxId::Text);
        let capsule = engine.add_capsule(node).unwrap();
        let cluster = engine.add_cluster(node, capsule).unwrap();
        let (_, refs) = engine
            .create_object(
                node,
                capsule,
                cluster,
                "c",
                "counter",
                CounterBehaviour::initial_state(),
                1,
            )
            .unwrap();
        let mut infra = OdpInfra::new();
        infra.publish(&engine, refs[0].interface).unwrap();
        World {
            engine,
            infra,
            home: (node, capsule, cluster),
            client,
            interface: refs[0].interface,
        }
    }

    fn add(k: i64) -> Value {
        Value::record([("k", Value::Int(k))])
    }

    #[test]
    fn plain_calls_work_through_proxy() {
        let mut w = world();
        let mut proxy = TransparentProxy::new(
            w.client,
            w.interface,
            TransparencySet::none().with(Transparency::Location),
        );
        let t = proxy
            .call(&mut w.engine, &mut w.infra, "Add", &add(5))
            .unwrap();
        assert_eq!(t.results.field("n"), Some(&Value::Int(5)));
        assert_eq!(proxy.stats().calls, 1);
    }

    #[test]
    fn relocation_is_masked_by_requery_and_replay() {
        let mut w = world();
        let mut proxy = TransparentProxy::new(
            w.client,
            w.interface,
            TransparencySet::none().with(Transparency::Relocation),
        );
        proxy
            .call(&mut w.engine, &mut w.infra, "Add", &add(7))
            .unwrap();

        // Move the cluster to a new node; the relocator is informed.
        let new_node = w.engine.add_node(SyntaxId::Binary);
        let new_capsule = w.engine.add_capsule(new_node).unwrap();
        migrate_transparently(
            &mut w.engine,
            &mut w.infra,
            w.home,
            (new_node, new_capsule),
            &[w.interface],
        )
        .unwrap();

        // The client keeps calling as if nothing happened.
        let t = proxy
            .call(
                &mut w.engine,
                &mut w.infra,
                "Get",
                &Value::record::<&str, _>([]),
            )
            .unwrap();
        assert_eq!(t.results.field("n"), Some(&Value::Int(7)));
        assert_eq!(proxy.stats().relocations_masked, 1);
    }

    #[test]
    fn without_relocation_transparency_the_move_is_visible() {
        let mut w = world();
        let mut proxy = TransparentProxy::new(
            w.client,
            w.interface,
            TransparencySet::none().with(Transparency::Location),
        );
        proxy
            .call(&mut w.engine, &mut w.infra, "Add", &add(1))
            .unwrap();
        let new_node = w.engine.add_node(SyntaxId::Binary);
        let new_capsule = w.engine.add_capsule(new_node).unwrap();
        migrate_transparently(
            &mut w.engine,
            &mut w.infra,
            w.home,
            (new_node, new_capsule),
            &[w.interface],
        )
        .unwrap();
        let err = proxy
            .call(
                &mut w.engine,
                &mut w.infra,
                "Get",
                &Value::record::<&str, _>([]),
            )
            .unwrap_err();
        assert!(matches!(err, ProxyError::Call(CallError::NotHere { .. })));
    }

    #[test]
    fn persistence_restores_on_demand() {
        let mut w = world();
        let mut proxy = TransparentProxy::new(
            w.client,
            w.interface,
            TransparencySet::none()
                .with(Transparency::Relocation)
                .with(Transparency::Persistence),
        );
        proxy
            .call(&mut w.engine, &mut w.infra, "Add", &add(13))
            .unwrap();

        // Deactivate to storage; the relocator forgets the location.
        let (node, capsule, cluster) = w.home;
        let mut pm = std::mem::take(&mut w.infra.persistence);
        pm.deactivate_to_storage(
            &mut w.engine,
            &mut w.infra.storage,
            "c1",
            node,
            capsule,
            cluster,
        )
        .unwrap();
        w.infra.persistence = pm;
        w.infra.relocator.deactivate(w.interface);

        // The next call transparently restores and succeeds.
        let t = proxy
            .call(
                &mut w.engine,
                &mut w.infra,
                "Get",
                &Value::record::<&str, _>([]),
            )
            .unwrap();
        assert_eq!(t.results.field("n"), Some(&Value::Int(13)));
        assert_eq!(proxy.stats().restorations, 1);
    }

    #[test]
    fn unresolvable_without_persistence() {
        let mut w = world();
        let mut proxy = TransparentProxy::new(
            w.client,
            w.interface,
            TransparencySet::none().with(Transparency::Relocation),
        );
        proxy
            .call(&mut w.engine, &mut w.infra, "Add", &add(1))
            .unwrap();
        let (node, capsule, cluster) = w.home;
        w.engine.deactivate_cluster(node, capsule, cluster).unwrap();
        w.infra.relocator.deactivate(w.interface);
        let err = proxy
            .call(
                &mut w.engine,
                &mut w.infra,
                "Get",
                &Value::record::<&str, _>([]),
            )
            .unwrap_err();
        assert!(matches!(err, ProxyError::Unresolvable { .. }));
    }

    #[test]
    fn repeated_migrations_are_masked_each_time() {
        let mut w = world();
        let mut proxy = TransparentProxy::new(
            w.client,
            w.interface,
            TransparencySet::none().with(Transparency::Migration),
        );
        proxy
            .call(&mut w.engine, &mut w.infra, "Add", &add(1))
            .unwrap();
        let mut home = w.home;
        for i in 0..3 {
            let node = w.engine.add_node(if i % 2 == 0 {
                SyntaxId::Text
            } else {
                SyntaxId::Binary
            });
            let capsule = w.engine.add_capsule(node).unwrap();
            let new_cluster = migrate_transparently(
                &mut w.engine,
                &mut w.infra,
                home,
                (node, capsule),
                &[w.interface],
            )
            .unwrap();
            home = (node, capsule, new_cluster);
            let t = proxy
                .call(&mut w.engine, &mut w.infra, "Add", &add(1))
                .unwrap();
            assert!(t.is_ok());
        }
        let t = proxy
            .call(
                &mut w.engine,
                &mut w.infra,
                "Get",
                &Value::record::<&str, _>([]),
            )
            .unwrap();
        assert_eq!(t.results.field("n"), Some(&Value::Int(4)));
        assert_eq!(proxy.stats().relocations_masked, 3);
        // Migration history was announced on the event channel.
        assert_eq!(w.infra.events.history("migrations").len(), 3);
    }
}
