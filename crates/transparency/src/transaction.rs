//! Transaction transparency (§9.3).
//!
//! "Transaction transparency cannot be achieved by [channel components]
//! alone. The correct operation of the transaction function requires the
//! reporting of the execution (or undo-ing) of certain actions of
//! interest (e.g. reading or writing a piece of transaction-managed
//! data)… transaction transparency must involve the refinement of a
//! transaction-transparent specification into a specification which
//! reports the execution of these actions of interest to the transaction
//! function."
//!
//! [`TxContext`] is that refinement: application code reads and writes
//! through it as if the data were plain state; every access is reported
//! to the resource manager, which provides isolation, atomicity and
//! recovery. [`in_transaction`] brackets the application code, commits on
//! success, aborts on error, and retries deadlock victims — the
//! application never sees the coordination.

use std::fmt;

use rmodp_core::id::TxId;
use rmodp_core::value::Value;
use rmodp_transactions::rm::{ResourceManager, RmError};

/// The handle application code uses inside a transaction: every read and
/// write is an *action of interest* reported to the transaction function.
#[derive(Debug)]
pub struct TxContext<'a> {
    rm: &'a mut ResourceManager,
    tx: TxId,
    reported: Vec<String>,
}

impl<'a> TxContext<'a> {
    /// Reads a transaction-managed item.
    ///
    /// # Errors
    ///
    /// Lock conflicts or deadlock (handled by [`in_transaction`]).
    pub fn read(&mut self, item: &str) -> Result<Option<Value>, RmError> {
        self.reported.push(format!("read {item}"));
        self.rm.read(self.tx, item)
    }

    /// Writes a transaction-managed item.
    ///
    /// # Errors
    ///
    /// Lock conflicts or deadlock (handled by [`in_transaction`]).
    pub fn write(&mut self, item: &str, value: Value) -> Result<(), RmError> {
        self.reported.push(format!("write {item}"));
        self.rm.write(self.tx, item, value)
    }

    /// The actions of interest reported so far (for tests and audits).
    pub fn reported(&self) -> &[String] {
        &self.reported
    }
}

/// Why a transparent transaction ultimately failed.
#[derive(Debug, Clone, PartialEq)]
pub enum TxError {
    /// Deadlock persisted across every retry.
    RetriesExhausted { attempts: u32 },
    /// The application body failed (its error text).
    Application(String),
    /// The resource manager failed outside deadlock handling.
    Resource(RmError),
}

impl fmt::Display for TxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::RetriesExhausted { attempts } => {
                write!(f, "transaction failed after {attempts} attempt(s)")
            }
            TxError::Application(e) => write!(f, "application error: {e}"),
            TxError::Resource(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TxError {}

/// Runs application code transactionally: begin, run, commit — aborting
/// on any error and retrying automatically when the transaction was a
/// deadlock victim. The application body never touches transaction ids,
/// locks or logs.
///
/// # Errors
///
/// [`TxError`] when retries are exhausted or the body fails for a
/// non-deadlock reason (after the transaction is rolled back).
pub fn in_transaction<T>(
    rm: &mut ResourceManager,
    max_attempts: u32,
    mut body: impl FnMut(&mut TxContext<'_>) -> Result<T, String>,
) -> Result<T, TxError> {
    use rmodp_observe::{bus, event, EventKind, Layer};
    let mut attempts = 0;
    loop {
        attempts += 1;
        let tx = rm.begin();
        let mut ctx = TxContext {
            rm,
            tx,
            reported: Vec::new(),
        };
        match body(&mut ctx) {
            Ok(out) => {
                rm.commit(tx).map_err(TxError::Resource)?;
                event(Layer::Transparency, EventKind::TxCommit)
                    .in_context()
                    .detail(format!("tx={tx} attempts={attempts}"))
                    .emit();
                bus::counter_add("transparency.tx_commits", 1);
                return Ok(out);
            }
            Err(app_err) => {
                // Distinguish deadlock (retry) from genuine failure.
                let was_deadlock = app_err.contains("deadlock");
                // The victim of a deadlock is already aborted; everything
                // else must be rolled back here.
                let _ = rm.abort(tx);
                event(Layer::Transparency, EventKind::TxAbort)
                    .in_context()
                    .detail(format!("tx={tx} attempt={attempts}: {app_err}"))
                    .emit();
                bus::counter_add("transparency.tx_aborts", 1);
                if was_deadlock && attempts < max_attempts {
                    continue;
                }
                return if was_deadlock {
                    Err(TxError::RetriesExhausted { attempts })
                } else {
                    Err(TxError::Application(app_err))
                };
            }
        }
    }
}

/// Transfers money between two accounts transparently: the paper's
/// canonical transactional state change, written with no visible
/// transaction machinery.
///
/// # Errors
///
/// Transaction failures, or an application error when funds are missing.
pub fn transfer(
    rm: &mut ResourceManager,
    from: &str,
    to: &str,
    amount: i64,
) -> Result<(), TxError> {
    in_transaction(rm, 5, |ctx| {
        let from_balance = ctx
            .read(from)
            .map_err(|e| e.to_string())?
            .and_then(|v| v.as_int())
            .unwrap_or(0);
        if from_balance < amount {
            return Err(format!("insufficient funds: {from_balance} < {amount}"));
        }
        let to_balance = ctx
            .read(to)
            .map_err(|e| e.to_string())?
            .and_then(|v| v.as_int())
            .unwrap_or(0);
        ctx.write(from, Value::Int(from_balance - amount))
            .map_err(|e| e.to_string())?;
        ctx.write(to, Value::Int(to_balance + amount))
            .map_err(|e| e.to_string())?;
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmodp_transactions::rm::TxProfile;

    fn bank() -> ResourceManager {
        let mut rm = ResourceManager::new("bank", TxProfile::acid());
        let tx = rm.begin();
        rm.write(tx, "alice", Value::Int(100)).unwrap();
        rm.write(tx, "bob", Value::Int(50)).unwrap();
        rm.commit(tx).unwrap();
        rm
    }

    #[test]
    fn transfer_moves_money_atomically() {
        let mut rm = bank();
        transfer(&mut rm, "alice", "bob", 30).unwrap();
        assert_eq!(rm.read_committed("alice"), Some(Value::Int(70)));
        assert_eq!(rm.read_committed("bob"), Some(Value::Int(80)));
    }

    #[test]
    fn failed_transfer_changes_nothing() {
        let mut rm = bank();
        let err = transfer(&mut rm, "alice", "bob", 1_000).unwrap_err();
        assert!(matches!(err, TxError::Application(_)));
        assert_eq!(rm.read_committed("alice"), Some(Value::Int(100)));
        assert_eq!(rm.read_committed("bob"), Some(Value::Int(50)));
    }

    #[test]
    fn actions_of_interest_are_reported() {
        let mut rm = bank();
        let mut observed = Vec::new();
        in_transaction(&mut rm, 1, |ctx| {
            ctx.read("alice").map_err(|e| e.to_string())?;
            ctx.write("alice", Value::Int(0))
                .map_err(|e| e.to_string())?;
            observed = ctx.reported().to_vec();
            Ok(())
        })
        .unwrap();
        assert_eq!(observed, vec!["read alice", "write alice"]);
    }

    #[test]
    fn conservation_across_many_transfers() {
        let mut rm = bank();
        for i in 0..20 {
            let (from, to) = if i % 2 == 0 {
                ("alice", "bob")
            } else {
                ("bob", "alice")
            };
            let _ = transfer(&mut rm, from, to, 7 + i % 5);
        }
        let total = rm.read_committed("alice").unwrap().as_int().unwrap()
            + rm.read_committed("bob").unwrap().as_int().unwrap();
        assert_eq!(total, 150, "money is conserved");
    }

    #[test]
    fn retry_count_is_bounded() {
        let mut rm = bank();
        let err = in_transaction(&mut rm, 3, |_ctx| {
            Err::<(), _>("deadlock: synthetic".to_owned())
        })
        .unwrap_err();
        assert_eq!(err, TxError::RetriesExhausted { attempts: 3 });
        // All three attempts were aborted cleanly.
        assert_eq!(rm.stats().1, 3);
    }

    #[test]
    fn commit_happens_exactly_once_per_success() {
        let mut rm = bank();
        let before = rm.stats().0;
        in_transaction(&mut rm, 3, |ctx| {
            ctx.write("alice", Value::Int(1)).map_err(|e| e.to_string())
        })
        .unwrap();
        assert_eq!(rm.stats().0, before + 1);
    }
}
