//! Selecting transparencies and deriving channel configurations.

use std::collections::BTreeSet;
use std::fmt;

use rmodp_core::codec::SyntaxId;
use rmodp_engineering::channel::{BreakerConfig, ChannelConfig, RetryPolicy};
use rmodp_netsim::time::SimDuration;

/// The distribution transparencies defined in RM-ODP (§9). "Not intended
/// to be the complete set, merely a starting point of common
/// requirements."
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Transparency {
    /// Hides differences in data representation and invocation mechanism.
    Access,
    /// Masks the use of physical addresses.
    Location,
    /// Hides relocation of an object from objects bound to it.
    Relocation,
    /// Masks relocation from the object itself and its peers.
    Migration,
    /// Masks deactivation and reactivation.
    Persistence,
    /// Masks failure and possible recovery of objects.
    Failure,
    /// Maintains consistency of a group of replicas behind one interface.
    Replication,
    /// Hides the coordination needed for transactional properties.
    Transaction,
}

impl Transparency {
    /// All eight transparencies.
    pub const ALL: [Transparency; 8] = [
        Transparency::Access,
        Transparency::Location,
        Transparency::Relocation,
        Transparency::Migration,
        Transparency::Persistence,
        Transparency::Failure,
        Transparency::Replication,
        Transparency::Transaction,
    ];
}

impl fmt::Display for Transparency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Transparency::Access => "access",
            Transparency::Location => "location",
            Transparency::Relocation => "relocation",
            Transparency::Migration => "migration",
            Transparency::Persistence => "persistence",
            Transparency::Failure => "failure",
            Transparency::Replication => "replication",
            Transparency::Transaction => "transaction",
        };
        write!(f, "{name}")
    }
}

/// A set of selected transparencies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransparencySet {
    selected: BTreeSet<Transparency>,
}

impl TransparencySet {
    /// No transparencies selected.
    pub fn none() -> Self {
        Self::default()
    }

    /// Every transparency selected.
    pub fn all() -> Self {
        Self {
            selected: Transparency::ALL.into_iter().collect(),
        }
    }

    /// Builder: adds a transparency (and its prerequisites — relocation,
    /// migration, persistence and failure all presuppose location
    /// transparency, and everything presupposes access transparency).
    pub fn with(mut self, t: Transparency) -> Self {
        self.selected.insert(Transparency::Access);
        if matches!(
            t,
            Transparency::Relocation
                | Transparency::Migration
                | Transparency::Persistence
                | Transparency::Failure
        ) {
            self.selected.insert(Transparency::Location);
        }
        self.selected.insert(t);
        self
    }

    /// Whether a transparency is selected.
    pub fn has(&self, t: Transparency) -> bool {
        self.selected.contains(&t)
    }

    /// Iterates the selected transparencies.
    pub fn iter(&self) -> impl Iterator<Item = Transparency> + '_ {
        self.selected.iter().copied()
    }

    /// Number of selected transparencies.
    pub fn len(&self) -> usize {
        self.selected.len()
    }

    /// Whether nothing is selected.
    pub fn is_empty(&self) -> bool {
        self.selected.is_empty()
    }

    /// Derives a channel configuration realising the selection: access
    /// transparency installs marshalling (always structurally present;
    /// the wire syntax choice is what exercises it), failure transparency
    /// turns on hardened retransmission (exponential backoff, total
    /// deadline) plus a circuit breaker so a persistently dead peer
    /// degrades to fast failure instead of queued timeouts.
    pub fn channel_config(&self, wire_syntax: SyntaxId) -> ChannelConfig {
        let failure = self.has(Transparency::Failure);
        ChannelConfig {
            wire_syntax,
            sequence: false,
            audit: false,
            retry: failure
                .then(|| RetryPolicy::reliable().with_timeout(SimDuration::from_millis(30))),
            breaker: failure.then(BreakerConfig::default),
        }
    }
}

impl FromIterator<Transparency> for TransparencySet {
    fn from_iter<I: IntoIterator<Item = Transparency>>(iter: I) -> Self {
        iter.into_iter().fold(Self::none(), Self::with)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prerequisites_are_implied() {
        let s = TransparencySet::none().with(Transparency::Relocation);
        assert!(s.has(Transparency::Relocation));
        assert!(s.has(Transparency::Location));
        assert!(s.has(Transparency::Access));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn all_has_eight() {
        assert_eq!(TransparencySet::all().len(), 8);
        assert!(TransparencySet::none().is_empty());
    }

    #[test]
    fn failure_selection_enables_retransmission() {
        let with = TransparencySet::none().with(Transparency::Failure);
        assert!(with.channel_config(SyntaxId::Binary).retry.is_some());
        let without = TransparencySet::none().with(Transparency::Access);
        assert!(without.channel_config(SyntaxId::Binary).retry.is_none());
    }

    #[test]
    fn from_iterator_collects() {
        let s: TransparencySet = [Transparency::Migration, Transparency::Replication]
            .into_iter()
            .collect();
        assert!(s.has(Transparency::Migration));
        assert!(s.has(Transparency::Replication));
        assert!(s.has(Transparency::Location));
    }

    #[test]
    fn display_names() {
        for t in Transparency::ALL {
            assert!(!t.to_string().is_empty());
        }
        assert_eq!(Transparency::Relocation.to_string(), "relocation");
    }
}
