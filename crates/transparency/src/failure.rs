//! Failure transparency: masking the failure and recovery of objects.
//!
//! A [`FailureGuard`] watches over one cluster: it takes periodic
//! checkpoints and, when the cluster's home node crashes, recovers the
//! cluster from the last checkpoint onto a backup node and republishes
//! locations — so clients (whose proxies already mask relocation) simply
//! keep calling. Work since the last checkpoint is lost: failure
//! transparency "masks the failure and possible recovery of objects, to
//! enhance fault tolerance", it does not promise exactly-once effects.
//!
//! That loss window used to be *silent*. Recovery now performs a
//! post-mortem diff — the crashed node's structures survive in the
//! simulation, so the cluster's actual final state can be compared
//! against the checkpoint being restored — and reports every divergent
//! object on the `failure.lost_updates` counter. The counter is the
//! contract the chaos matrix pins: positive for the in-memory guard
//! (the window is real), and exactly zero for
//! [`DurableGuard`](crate::durable::DurableGuard), which write-ahead
//! logs every operation into a durable store and replays the tail.

use std::fmt;

use rmodp_core::id::{CapsuleId, ClusterId, InterfaceId, NodeId};
use rmodp_engineering::engine::{EngError, Engine};
use rmodp_engineering::structure::ClusterCheckpoint;
use rmodp_observe::{bus, event, EventKind, Layer};

use crate::proxy::OdpInfra;

/// A failure-handling error.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureError {
    /// Engineering failure.
    Eng(EngError),
    /// No checkpoint has been taken yet.
    NoCheckpoint,
    /// The home node is still alive; nothing to recover from.
    NotFailed,
    /// Every backup in the pool is dead (or the pool is empty).
    NoBackup,
}

impl fmt::Display for FailureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureError::Eng(e) => write!(f, "{e}"),
            FailureError::NoCheckpoint => write!(f, "no checkpoint available"),
            FailureError::NotFailed => write!(f, "home node has not failed"),
            FailureError::NoBackup => write!(f, "no live backup remains in the pool"),
        }
    }
}

impl std::error::Error for FailureError {}

impl From<EngError> for FailureError {
    fn from(e: EngError) -> Self {
        FailureError::Eng(e)
    }
}

/// Guards one cluster with checkpointing and backup-node recovery.
///
/// Failover is **automatic**: the guard holds a pool of backup
/// locations ([`push_backup`](Self::push_backup)) and
/// [`recover`](Self::recover) selects the first *live* one
/// deterministically (pool order, dead entries skipped), so successive
/// failures need no manual re-designation.
#[derive(Debug)]
pub struct FailureGuard {
    home: (NodeId, CapsuleId, ClusterId),
    backups: std::collections::VecDeque<(NodeId, CapsuleId)>,
    interfaces: Vec<InterfaceId>,
    last_checkpoint: Option<ClusterCheckpoint>,
    recoveries: u64,
    lost_updates: u64,
}

/// Counts the objects whose state diverges between the checkpoint being
/// restored and the cluster's actual final state (objects missing from
/// either side count too).
pub(crate) fn divergent_objects(restored: &ClusterCheckpoint, actual: &ClusterCheckpoint) -> u64 {
    let restored_states: std::collections::BTreeMap<_, _> = restored
        .objects
        .iter()
        .map(|o| (o.record.object, &o.state))
        .collect();
    let mut lost = 0u64;
    let mut seen = std::collections::BTreeSet::new();
    for o in &actual.objects {
        seen.insert(o.record.object);
        if restored_states.get(&o.record.object) != Some(&&o.state) {
            lost += 1;
        }
    }
    lost + restored_states
        .keys()
        .filter(|id| !seen.contains(*id))
        .count() as u64
}

impl FailureGuard {
    /// Creates a guard for a cluster; `backup` seeds the backup pool
    /// (extend it with [`push_backup`](Self::push_backup)).
    pub fn new(
        home: (NodeId, CapsuleId, ClusterId),
        backup: (NodeId, CapsuleId),
        interfaces: Vec<InterfaceId>,
    ) -> Self {
        Self {
            home,
            backups: std::collections::VecDeque::from([backup]),
            interfaces,
            last_checkpoint: None,
            recoveries: 0,
            lost_updates: 0,
        }
    }

    /// Appends a backup location to the pool (failover targets are
    /// taken in pool order, skipping dead nodes).
    pub fn push_backup(&mut self, backup: (NodeId, CapsuleId)) {
        self.backups.push_back(backup);
    }

    /// The backup locations still available, in selection order.
    pub fn backup_pool(&self) -> impl Iterator<Item = (NodeId, CapsuleId)> + '_ {
        self.backups.iter().copied()
    }

    /// Picks the failover target: the first pool entry whose node is
    /// currently alive. Only the chosen entry leaves the pool — dead
    /// entries are skipped but kept, since their nodes may heal.
    pub(crate) fn take_live_backup(
        backups: &mut std::collections::VecDeque<(NodeId, CapsuleId)>,
        engine: &Engine,
    ) -> Result<(NodeId, CapsuleId), FailureError> {
        let pos = backups.iter().position(|(node, _)| {
            engine
                .sim_node(*node)
                .map(|idx| !engine.sim().topology().is_crashed(idx))
                .unwrap_or(false)
        });
        pos.and_then(|i| backups.remove(i))
            .ok_or(FailureError::NoBackup)
    }

    /// The cluster's current home.
    pub fn home(&self) -> (NodeId, CapsuleId, ClusterId) {
        self.home
    }

    /// How many recoveries this guard has performed.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Objects whose post-checkpoint updates recovery has dropped so
    /// far (the in-memory guard's data-loss window, measured).
    pub fn lost_updates(&self) -> u64 {
        self.lost_updates
    }

    /// Takes a checkpoint of the guarded cluster (call periodically; the
    /// recovery point is the last successful call).
    ///
    /// # Errors
    ///
    /// Engineering failures (e.g. the home already crashed — then the
    /// previous checkpoint remains the recovery point).
    pub fn checkpoint_now(&mut self, engine: &mut Engine) -> Result<(), FailureError> {
        let (node, capsule, cluster) = self.home;
        let cp = engine.checkpoint_cluster(node, capsule, cluster)?;
        self.last_checkpoint = Some(cp);
        Ok(())
    }

    /// Whether the home node is currently crashed.
    pub fn home_failed(&self, engine: &Engine) -> bool {
        engine
            .sim_node(self.home.0)
            .map(|idx| engine.sim().topology().is_crashed(idx))
            .unwrap_or(true)
    }

    /// Recovers the cluster from the last checkpoint onto the first
    /// live backup in the pool (deterministic selection — no manual
    /// designation needed) and republishes interface locations. The
    /// guard's home becomes that backup.
    ///
    /// # Errors
    ///
    /// [`FailureError::NotFailed`] when the home is alive,
    /// [`FailureError::NoCheckpoint`] without a recovery point,
    /// [`FailureError::NoBackup`] when the pool has no live entry, or
    /// engineering failures.
    pub fn recover(
        &mut self,
        engine: &mut Engine,
        infra: &mut OdpInfra,
    ) -> Result<ClusterId, FailureError> {
        if !self.home_failed(engine) {
            return Err(FailureError::NotFailed);
        }
        let cp = self
            .last_checkpoint
            .clone()
            .ok_or(FailureError::NoCheckpoint)?;
        let backup = Self::take_live_backup(&mut self.backups, engine)?;
        // Post-mortem: the crashed node's structures survive in the
        // simulation, so the loss window is measurable — how many
        // objects moved past the checkpoint we are about to restore?
        let lost = {
            let (node, capsule, cluster) = self.home;
            engine
                .checkpoint_cluster(node, capsule, cluster)
                .map(|actual| divergent_objects(&cp, &actual))
                .unwrap_or(0)
        };
        self.lost_updates += lost;
        bus::counter_add("failure.lost_updates", lost);
        let (backup_node, backup_capsule) = backup;
        let span = bus::new_span();
        event(Layer::Transparency, EventKind::RecoveryStart)
            .span(span)
            .parent_from_context()
            .capsule(backup_capsule.raw())
            .detail(format!(
                "cluster={} {} -> {backup_node}",
                self.home.2, self.home.0
            ))
            .emit();
        bus::push_context(span);
        let recovered = (|| {
            let new_cluster = engine.reactivate_cluster(backup_node, backup_capsule, &cp)?;
            for ifc in &self.interfaces {
                infra.publish(engine, *ifc)?;
            }
            Ok::<_, FailureError>(new_cluster)
        })();
        bus::pop_context();
        let new_cluster = recovered?;
        self.home = (backup_node, backup_capsule, new_cluster);
        self.recoveries += 1;
        event(Layer::Transparency, EventKind::RecoveryEnd)
            .span(span)
            .capsule(backup_capsule.raw())
            .detail(format!(
                "cluster={new_cluster} recovery #{} lost={lost}",
                self.recoveries
            ))
            .emit();
        bus::counter_add("transparency.recoveries", 1);
        Ok(new_cluster)
    }

    /// Designates the next backup location manually.
    #[deprecated(note = "failover target selection is automatic from the backup \
                pool; use push_backup to extend the pool instead")]
    pub fn set_backup(&mut self, backup: (NodeId, CapsuleId)) {
        // Kept working: the designated backup jumps the pool queue.
        self.backups.push_front(backup);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proxy::TransparentProxy;
    use crate::selection::{Transparency, TransparencySet};
    use rmodp_core::codec::SyntaxId;
    use rmodp_core::value::Value;
    use rmodp_engineering::behaviour::CounterBehaviour;

    struct World {
        engine: Engine,
        infra: OdpInfra,
        guard: FailureGuard,
        client: NodeId,
        interface: InterfaceId,
    }

    fn world() -> World {
        let mut engine = Engine::new(31);
        engine
            .behaviours_mut()
            .register("counter", CounterBehaviour::default);
        let home = engine.add_node(SyntaxId::Binary);
        let backup = engine.add_node(SyntaxId::Binary);
        let client = engine.add_node(SyntaxId::Binary);
        let home_capsule = engine.add_capsule(home).unwrap();
        let backup_capsule = engine.add_capsule(backup).unwrap();
        let cluster = engine.add_cluster(home, home_capsule).unwrap();
        let (_, refs) = engine
            .create_object(
                home,
                home_capsule,
                cluster,
                "c",
                "counter",
                CounterBehaviour::initial_state(),
                1,
            )
            .unwrap();
        let mut infra = OdpInfra::new();
        infra.publish(&engine, refs[0].interface).unwrap();
        let guard = FailureGuard::new(
            (home, home_capsule, cluster),
            (backup, backup_capsule),
            vec![refs[0].interface],
        );
        World {
            engine,
            infra,
            guard,
            client,
            interface: refs[0].interface,
        }
    }

    fn add(k: i64) -> Value {
        Value::record([("k", Value::Int(k))])
    }

    #[test]
    fn crash_then_recover_masks_failure_up_to_the_checkpoint() {
        let mut w = world();
        let mut proxy = TransparentProxy::new(
            w.client,
            w.interface,
            TransparencySet::none().with(Transparency::Relocation),
        );
        proxy
            .call(&mut w.engine, &mut w.infra, "Add", &add(10))
            .unwrap();
        w.guard.checkpoint_now(&mut w.engine).unwrap();
        // Post-checkpoint work that will be lost by the failure.
        proxy
            .call(&mut w.engine, &mut w.infra, "Add", &add(5))
            .unwrap();

        // The home node crashes.
        let idx = w.engine.sim_node(w.guard.home().0).unwrap();
        w.engine.sim_mut().topology_mut().crash(idx);
        assert!(w.guard.home_failed(&w.engine));

        w.guard.recover(&mut w.engine, &mut w.infra).unwrap();
        assert_eq!(w.guard.recoveries(), 1);
        // The post-checkpoint Add(5) is the measured loss window.
        assert_eq!(w.guard.lost_updates(), 1);
        assert_eq!(bus::counter("failure.lost_updates"), 1);

        // The client's next call is transparently routed to the recovered
        // replica; state is the checkpointed 10, not 15.
        let t = proxy
            .call(
                &mut w.engine,
                &mut w.infra,
                "Get",
                &Value::record::<&str, _>([]),
            )
            .unwrap();
        assert_eq!(t.results.field("n"), Some(&Value::Int(10)));
    }

    #[test]
    fn recover_requires_failure_and_a_checkpoint() {
        let mut w = world();
        assert!(matches!(
            w.guard.recover(&mut w.engine, &mut w.infra),
            Err(FailureError::NotFailed)
        ));
        let idx = w.engine.sim_node(w.guard.home().0).unwrap();
        w.engine.sim_mut().topology_mut().crash(idx);
        assert!(matches!(
            w.guard.recover(&mut w.engine, &mut w.infra),
            Err(FailureError::NoCheckpoint)
        ));
    }

    #[test]
    fn guard_survives_successive_failures_with_new_backups() {
        let mut w = world();
        let mut proxy = TransparentProxy::new(
            w.client,
            w.interface,
            TransparencySet::none().with(Transparency::Relocation),
        );
        proxy
            .call(&mut w.engine, &mut w.infra, "Add", &add(1))
            .unwrap();
        w.guard.checkpoint_now(&mut w.engine).unwrap();

        for round in 0..2 {
            let idx = w.engine.sim_node(w.guard.home().0).unwrap();
            w.engine.sim_mut().topology_mut().crash(idx);
            w.guard.recover(&mut w.engine, &mut w.infra).unwrap();
            let t = proxy
                .call(
                    &mut w.engine,
                    &mut w.infra,
                    "Get",
                    &Value::record::<&str, _>([]),
                )
                .unwrap();
            assert_eq!(t.results.field("n"), Some(&Value::Int(1)), "round {round}");
            // Extend the pool and refresh the recovery point; the next
            // failover picks the new entry automatically.
            let next = w.engine.add_node(SyntaxId::Binary);
            let next_capsule = w.engine.add_capsule(next).unwrap();
            w.guard.push_backup((next, next_capsule));
            w.guard.checkpoint_now(&mut w.engine).unwrap();
        }
        assert_eq!(w.guard.recoveries(), 2);
    }

    #[test]
    fn recovery_skips_dead_backups_deterministically() {
        let mut w = world();
        w.guard.checkpoint_now(&mut w.engine).unwrap();
        // Queue a second backup behind the seeded one, then kill the
        // seeded one: recovery must skip it and land on the second.
        let second = w.engine.add_node(SyntaxId::Binary);
        let second_capsule = w.engine.add_capsule(second).unwrap();
        w.guard.push_backup((second, second_capsule));
        let first_backup = w.guard.backup_pool().next().unwrap().0;
        let idx = w.engine.sim_node(first_backup).unwrap();
        w.engine.sim_mut().topology_mut().crash(idx);
        let idx = w.engine.sim_node(w.guard.home().0).unwrap();
        w.engine.sim_mut().topology_mut().crash(idx);
        w.guard.recover(&mut w.engine, &mut w.infra).unwrap();
        assert_eq!(w.guard.home().0, second);
        // The dead entry stays queued (its node may heal)…
        assert_eq!(w.guard.backup_pool().count(), 1);
        // …and with the pool otherwise dead, recovery reports NoBackup.
        let idx = w.engine.sim_node(second).unwrap();
        w.engine.sim_mut().topology_mut().crash(idx);
        assert!(matches!(
            w.guard.recover(&mut w.engine, &mut w.infra),
            Err(FailureError::NoBackup)
        ));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_set_backup_jumps_the_pool_queue() {
        let mut w = world();
        w.guard.checkpoint_now(&mut w.engine).unwrap();
        let urgent = w.engine.add_node(SyntaxId::Binary);
        let urgent_capsule = w.engine.add_capsule(urgent).unwrap();
        w.guard.set_backup((urgent, urgent_capsule));
        let idx = w.engine.sim_node(w.guard.home().0).unwrap();
        w.engine.sim_mut().topology_mut().crash(idx);
        w.guard.recover(&mut w.engine, &mut w.infra).unwrap();
        assert_eq!(w.guard.home().0, urgent, "manual designation still wins");
    }
}
