//! # rmodp-transparency — distribution transparencies (§9)
//!
//! "The aim of transparencies is to shift the complexities of distributed
//! systems from the applications developers to the supporting
//! infrastructure." This crate configures the engineering machinery
//! (channels, relocator, groups, storage, checkpoints) so that client code
//! written against a plain interface keeps working through heterogeneity,
//! movement, deactivation, failure and replication:
//!
//! | Transparency | Mechanism here |
//! |---|---|
//! | access | marshalling stubs re-encode payloads between native syntaxes ([`selection`]) |
//! | location | clients hold only an [`InterfaceId`](rmodp_core::id::InterfaceId); the proxy resolves physical addresses via the relocator ([`proxy`]) |
//! | relocation | on `NotHere`, the proxy requeries the relocator, reconnects the channel and **replays** the interaction (§9.2) |
//! | migration | cluster migration keeps interface identity; combined with relocation the moved object *and its peers* are unaware ([`proxy::migrate_transparently`]) |
//! | persistence | deactivated clusters are restored on demand from any [`PersistentStore`](rmodp_store::PersistentStore) — in-memory or write-ahead durable ([`persistence`]) |
//! | failure | a [`FailureGuard`](failure::FailureGuard) checkpoints a cluster and recovers it on a backup node when its home crashes, measuring the loss window; a [`DurableGuard`](durable::DurableGuard) write-ahead logs operations into the store and replays the tail, losing nothing ([`failure`], [`durable`]) |
//! | replication | a [`ReplicatedService`](replication::ReplicatedService) keeps a group of replicas consistent behind one interface ([`replication`]) |
//! | transaction | behaviour refinements report *actions of interest* to the transaction function; [`transaction::in_transaction`] brackets application code (§9.3) |

pub mod durable;
pub mod failure;
pub mod persistence;
pub mod proxy;
pub mod replication;
pub mod selection;
pub mod transaction;

pub use proxy::{OdpInfra, ProxyError, TransparentProxy};
pub use selection::{Transparency, TransparencySet};
