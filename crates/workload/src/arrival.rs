//! Deterministic arrival processes.
//!
//! An [`ArrivalProcess`] describes *when* requests enter the system; an
//! [`ArrivalStream`] turns it into an infinite, seeded iterator of
//! offsets from the stream's origin. The same process and seed always
//! yield the same offsets, which is what makes a whole scenario replay
//! byte-identically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmodp_netsim::time::SimDuration;

/// A stochastic (but seeded, hence deterministic) request arrival
/// process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Perfectly paced arrivals: one every `1/rate` seconds.
    Constant {
        /// Arrivals per second.
        rate_per_sec: f64,
    },
    /// Memoryless arrivals: exponential inter-arrival gaps.
    Poisson {
        /// Mean arrivals per second.
        rate_per_sec: f64,
    },
    /// A two-state on/off (interrupted Poisson) process: bursts of
    /// `on_rate_per_sec` traffic alternate with quiet periods of
    /// `off_rate_per_sec`, the phase lengths themselves exponentially
    /// distributed.
    BurstyOnOff {
        /// Arrival rate while the source is on.
        on_rate_per_sec: f64,
        /// Arrival rate while the source is off (often 0).
        off_rate_per_sec: f64,
        /// Mean length of an on phase.
        mean_on: SimDuration,
        /// Mean length of an off phase.
        mean_off: SimDuration,
    },
}

impl ArrivalProcess {
    /// The long-run mean arrival rate, in arrivals per second.
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Constant { rate_per_sec }
            | ArrivalProcess::Poisson { rate_per_sec } => rate_per_sec,
            ArrivalProcess::BurstyOnOff {
                on_rate_per_sec,
                off_rate_per_sec,
                mean_on,
                mean_off,
            } => {
                let on = mean_on.as_secs_f64();
                let off = mean_off.as_secs_f64();
                if on + off == 0.0 {
                    0.0
                } else {
                    (on_rate_per_sec * on + off_rate_per_sec * off) / (on + off)
                }
            }
        }
    }

    /// A short human-readable description (used in reports).
    pub fn describe(&self) -> String {
        match *self {
            ArrivalProcess::Constant { rate_per_sec } => format!("constant {rate_per_sec}/s"),
            ArrivalProcess::Poisson { rate_per_sec } => format!("poisson {rate_per_sec}/s"),
            ArrivalProcess::BurstyOnOff {
                on_rate_per_sec,
                off_rate_per_sec,
                mean_on,
                mean_off,
            } => format!(
                "bursty on={on_rate_per_sec}/s({}us) off={off_rate_per_sec}/s({}us)",
                mean_on.as_micros(),
                mean_off.as_micros()
            ),
        }
    }

    /// Opens a seeded stream of arrival offsets.
    pub fn stream(self, seed: u64) -> ArrivalStream {
        ArrivalStream {
            process: self,
            rng: StdRng::seed_from_u64(seed),
            clock_us: 0.0,
            on: true,
            phase_end_us: f64::INFINITY,
            phase_initialised: false,
        }
    }
}

/// An infinite iterator of arrival offsets (from the stream origin),
/// strictly non-decreasing.
#[derive(Debug, Clone)]
pub struct ArrivalStream {
    process: ArrivalProcess,
    rng: StdRng,
    /// Virtual clock of the stream, in (fractional) microseconds.
    clock_us: f64,
    /// Bursty state: currently in the on phase?
    on: bool,
    /// Bursty state: when the current phase ends.
    phase_end_us: f64,
    phase_initialised: bool,
}

/// One exponential draw with the given rate (events per second),
/// returned in microseconds.
fn exp_gap_us(rng: &mut StdRng, rate_per_sec: f64) -> f64 {
    let u: f64 = rng.gen();
    // u ∈ [0, 1), so 1 - u ∈ (0, 1] and ln is finite.
    -(1.0 - u).ln() / rate_per_sec * 1e6
}

impl ArrivalStream {
    fn next_phase(&mut self) {
        let (mean_on, mean_off) = match self.process {
            ArrivalProcess::BurstyOnOff {
                mean_on, mean_off, ..
            } => (mean_on.as_micros() as f64, mean_off.as_micros() as f64),
            _ => return,
        };
        self.on = !self.on;
        let mean = if self.on { mean_on } else { mean_off };
        let len = if mean > 0.0 {
            let u: f64 = self.rng.gen();
            -(1.0 - u).ln() * mean
        } else {
            0.0
        };
        self.phase_end_us = self.clock_us + len;
    }
}

impl Iterator for ArrivalStream {
    type Item = SimDuration;

    fn next(&mut self) -> Option<SimDuration> {
        match self.process {
            ArrivalProcess::Constant { rate_per_sec } => {
                if rate_per_sec <= 0.0 {
                    return None;
                }
                self.clock_us += 1e6 / rate_per_sec;
            }
            ArrivalProcess::Poisson { rate_per_sec } => {
                if rate_per_sec <= 0.0 {
                    return None;
                }
                self.clock_us += exp_gap_us(&mut self.rng, rate_per_sec);
            }
            ArrivalProcess::BurstyOnOff {
                on_rate_per_sec,
                off_rate_per_sec,
                ..
            } => {
                if !self.phase_initialised {
                    // Enter the first (on) phase: next_phase flips, so
                    // start from "off".
                    self.on = false;
                    self.next_phase();
                    self.phase_initialised = true;
                }
                loop {
                    let rate = if self.on {
                        on_rate_per_sec
                    } else {
                        off_rate_per_sec
                    };
                    if rate <= 0.0 {
                        self.clock_us = self.phase_end_us;
                        self.next_phase();
                        continue;
                    }
                    let gap = exp_gap_us(&mut self.rng, rate);
                    if self.clock_us + gap <= self.phase_end_us {
                        self.clock_us += gap;
                        break;
                    }
                    // The draw crosses the phase boundary; by
                    // memorylessness we may discard it and redraw in the
                    // next phase.
                    self.clock_us = self.phase_end_us;
                    self.next_phase();
                }
            }
        }
        Some(SimDuration::from_micros(self.clock_us as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn take_until(p: ArrivalProcess, seed: u64, horizon: SimDuration) -> Vec<SimDuration> {
        p.stream(seed).take_while(|&t| t < horizon).collect()
    }

    #[test]
    fn constant_is_evenly_spaced() {
        let arr = take_until(
            ArrivalProcess::Constant {
                rate_per_sec: 1000.0,
            },
            1,
            SimDuration::from_secs(1),
        );
        assert_eq!(arr.len(), 999); // arrivals at 1ms, 2ms, … 999ms
        assert_eq!(arr[0], SimDuration::from_millis(1));
        assert_eq!(arr[1], SimDuration::from_millis(2));
    }

    #[test]
    fn poisson_same_seed_same_stream() {
        let a = take_until(
            ArrivalProcess::Poisson {
                rate_per_sec: 500.0,
            },
            42,
            SimDuration::from_secs(4),
        );
        let b = take_until(
            ArrivalProcess::Poisson {
                rate_per_sec: 500.0,
            },
            42,
            SimDuration::from_secs(4),
        );
        assert_eq!(a, b);
        let c = take_until(
            ArrivalProcess::Poisson {
                rate_per_sec: 500.0,
            },
            43,
            SimDuration::from_secs(4),
        );
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_respects_mean_rate() {
        let secs = 40;
        let arr = take_until(
            ArrivalProcess::Poisson {
                rate_per_sec: 500.0,
            },
            7,
            SimDuration::from_secs(secs),
        );
        let expected = 500.0 * secs as f64;
        let got = arr.len() as f64;
        assert!(
            (got - expected).abs() / expected < 0.05,
            "got {got}, expected ~{expected}"
        );
    }

    #[test]
    fn bursty_mean_rate_mixes_phases() {
        let p = ArrivalProcess::BurstyOnOff {
            on_rate_per_sec: 2_000.0,
            off_rate_per_sec: 0.0,
            mean_on: SimDuration::from_millis(50),
            mean_off: SimDuration::from_millis(150),
        };
        assert!((p.mean_rate() - 500.0).abs() < 1e-9);
        let secs = 60;
        let arr = take_until(p, 11, SimDuration::from_secs(secs));
        let expected = p.mean_rate() * secs as f64;
        let got = arr.len() as f64;
        assert!(
            (got - expected).abs() / expected < 0.15,
            "got {got}, expected ~{expected}"
        );
    }

    #[test]
    fn streams_are_monotone() {
        for p in [
            ArrivalProcess::Constant {
                rate_per_sec: 100.0,
            },
            ArrivalProcess::Poisson {
                rate_per_sec: 100.0,
            },
            ArrivalProcess::BurstyOnOff {
                on_rate_per_sec: 400.0,
                off_rate_per_sec: 10.0,
                mean_on: SimDuration::from_millis(20),
                mean_off: SimDuration::from_millis(80),
            },
        ] {
            let arr = take_until(p, 3, SimDuration::from_secs(5));
            assert!(arr.windows(2).all(|w| w[0] <= w[1]), "{p:?} not monotone");
            assert!(!arr.is_empty());
        }
    }
}
