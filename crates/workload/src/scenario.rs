//! Scenario descriptions: *what* load to apply to *which* interface,
//! for how long, and what the environment contract demands of the result.
//!
//! A scenario is pure data plus a seed: replaying the same scenario on
//! the same deployment yields a byte-identical SLO report.

use rand::rngs::StdRng;
use rand::Rng;
use rmodp_core::contract::QosRequirement;
use rmodp_core::value::Value;
use rmodp_netsim::time::SimDuration;

use crate::arrival::ArrivalProcess;

/// One operation in the mix: name, argument template, relative weight.
#[derive(Debug, Clone, PartialEq)]
pub struct OpMixEntry {
    /// Operation name as the server behaviour expects it.
    pub op: String,
    /// Argument record sent with every invocation of this entry.
    pub args: Value,
    /// Relative weight among the mix's entries.
    pub weight: u32,
}

/// A weighted operation mix.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OperationMix {
    entries: Vec<OpMixEntry>,
}

impl OperationMix {
    /// An empty mix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: adds an operation with a weight.
    pub fn with(mut self, op: impl Into<String>, args: Value, weight: u32) -> Self {
        self.entries.push(OpMixEntry {
            op: op.into(),
            args,
            weight,
        });
        self
    }

    /// The entries, in insertion order.
    pub fn entries(&self) -> &[OpMixEntry] {
        &self.entries
    }

    /// Whether the mix has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Draws one entry, weight-proportionally.
    ///
    /// # Panics
    ///
    /// Panics if the mix is empty or all weights are zero.
    pub fn sample(&self, rng: &mut StdRng) -> &OpMixEntry {
        let total: u64 = self.entries.iter().map(|e| u64::from(e.weight)).sum();
        assert!(total > 0, "operation mix is empty or zero-weighted");
        let mut pick = rng.gen_range(0..total);
        for e in &self.entries {
            let w = u64::from(e.weight);
            if pick < w {
                return e;
            }
            pick -= w;
        }
        unreachable!("weights summed above")
    }
}

/// How the client population generates load.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadModel {
    /// Open loop: requests arrive on the arrival process's schedule
    /// regardless of how fast the system answers — the model of "heavy
    /// traffic from millions of independent users". Latency is measured
    /// from the *scheduled* arrival, so server queueing shows up in it.
    Open {
        /// When requests arrive.
        arrivals: ArrivalProcess,
    },
    /// Closed loop: a fixed population of clients, each with at most one
    /// outstanding request, thinking for a fixed time between a reply
    /// and the next request. Throughput self-limits as latency grows.
    Closed {
        /// How many concurrent clients.
        population: usize,
        /// Pause between receiving a reply and sending the next request.
        think_time: SimDuration,
    },
}

impl LoadModel {
    /// A short human-readable description (used in reports).
    pub fn describe(&self) -> String {
        match self {
            LoadModel::Open { arrivals } => format!("open[{}]", arrivals.describe()),
            LoadModel::Closed {
                population,
                think_time,
            } => format!("closed[n={population} think={}us]", think_time.as_micros()),
        }
    }
}

/// A complete workload scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Name, carried into the report.
    pub name: String,
    /// Seed for the arrival stream and operation-mix draws.
    pub seed: u64,
    /// How long load is generated (virtual time).
    pub duration: SimDuration,
    /// Ramp-up: requests scheduled before this offset are driven but
    /// excluded from the latency histogram.
    pub warmup: SimDuration,
    /// Open or closed loop.
    pub load: LoadModel,
    /// What to invoke.
    pub mix: OperationMix,
    /// The QoS obligations the run is judged against.
    pub contract: QosRequirement,
}

impl Scenario {
    /// A scenario with a 1-second duration, no warmup, an empty mix and
    /// an empty contract — fill it in with the builder methods.
    pub fn new(name: impl Into<String>, seed: u64, load: LoadModel) -> Self {
        Self {
            name: name.into(),
            seed,
            duration: SimDuration::from_secs(1),
            warmup: SimDuration::ZERO,
            load,
            mix: OperationMix::new(),
            contract: QosRequirement::none(),
        }
    }

    /// Builder: sets the duration.
    pub fn lasting(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }

    /// Builder: sets the warmup/ramp offset.
    pub fn with_warmup(mut self, warmup: SimDuration) -> Self {
        self.warmup = warmup;
        self
    }

    /// Builder: sets the operation mix.
    pub fn with_mix(mut self, mix: OperationMix) -> Self {
        self.mix = mix;
        self
    }

    /// Builder: sets the QoS contract.
    pub fn with_contract(mut self, contract: QosRequirement) -> Self {
        self.contract = contract;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mix_sampling_is_weighted_and_deterministic() {
        let mix = OperationMix::new()
            .with("A", Value::Null, 3)
            .with("B", Value::Null, 1);
        let mut rng = StdRng::seed_from_u64(9);
        let mut a = 0;
        let mut b = 0;
        for _ in 0..4000 {
            match mix.sample(&mut rng).op.as_str() {
                "A" => a += 1,
                _ => b += 1,
            }
        }
        // 3:1 weighting within loose bounds.
        assert!(a > 2 * b, "a={a} b={b}");
        assert!(b > 0);

        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(mix.sample(&mut r1).op, mix.sample(&mut r2).op);
        }
    }

    #[test]
    #[should_panic(expected = "zero-weighted")]
    fn empty_mix_panics_on_sample() {
        let mut rng = StdRng::seed_from_u64(0);
        OperationMix::new().sample(&mut rng);
    }

    #[test]
    fn builders_compose() {
        let s = Scenario::new(
            "s",
            1,
            LoadModel::Closed {
                population: 4,
                think_time: SimDuration::from_millis(5),
            },
        )
        .lasting(SimDuration::from_secs(2))
        .with_warmup(SimDuration::from_millis(100))
        .with_mix(OperationMix::new().with("Ping", Value::Null, 1));
        assert_eq!(s.duration, SimDuration::from_secs(2));
        assert_eq!(s.mix.entries().len(), 1);
        assert!(s.load.describe().starts_with("closed"));
    }
}
