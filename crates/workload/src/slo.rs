//! SLO evaluation: turns raw [`RunStats`] plus the scenario's
//! [`QosRequirement`] contract into a verdict report.
//!
//! Clause mapping, one per contract field that is actually set:
//!
//! * `max_latency` — checked against the **p95** of completed-request
//!   latency (a tail bound; the mean hides overload);
//! * `min_throughput` — checked against achieved completions per second
//!   of virtual time over the load window;
//! * `min_availability` — checked against `completed / offered`, so both
//!   admission rejections and losses count against availability;
//! * `reliable_delivery` — demands zero lost (unanswered) requests.
//!
//! Rendering and JSON are fully deterministic: integer microseconds,
//! fixed-precision floats, fields in a fixed order.
//!
//! [`QosRequirement`]: rmodp_core::contract::QosRequirement

use crate::driver::RunStats;
use crate::scenario::Scenario;

/// One evaluated contract clause.
#[derive(Debug, Clone, PartialEq)]
pub struct SloClause {
    /// Clause name (`latency_p95_us`, `throughput_per_sec`, …).
    pub name: String,
    /// The bound the contract demands, rendered.
    pub bound: String,
    /// What the run achieved, rendered.
    pub achieved: String,
    /// Whether the clause held.
    pub pass: bool,
}

/// The verdict report for one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Scenario name.
    pub scenario: String,
    /// Scenario seed.
    pub seed: u64,
    /// Load model description.
    pub load: String,
    /// Configured load window, virtual µs.
    pub duration_us: u64,
    /// Virtual time from first arrival to last processed event, µs.
    pub elapsed_us: u64,
    /// Requests offered.
    pub offered: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests rejected (admission/replay refusals).
    pub rejected: u64,
    /// Client-side errors.
    pub errors: u64,
    /// Requests never answered.
    pub lost: u64,
    /// Server-side admission shed count for the run.
    pub admission_shed: u64,
    /// Offered rate over the load window, requests per virtual second.
    pub offered_per_sec: f64,
    /// Achieved completion rate over the load window.
    pub achieved_per_sec: f64,
    /// Latency samples in the histogram (post-warmup completions).
    pub latency_samples: u64,
    /// Latency quantiles and extremes, µs.
    pub p50_us: u64,
    /// 95th percentile latency, µs.
    pub p95_us: u64,
    /// 99th percentile latency, µs.
    pub p99_us: u64,
    /// Mean latency, µs.
    pub mean_us: f64,
    /// Maximum latency, µs.
    pub max_us: u64,
    /// The evaluated contract clauses, in a fixed order.
    pub clauses: Vec<SloClause>,
    /// Overall verdict: all clauses passed.
    pub pass: bool,
}

/// Formats a float deterministically for reports (3 decimal places).
fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Evaluates a finished run against its scenario's contract.
pub fn evaluate(scenario: &Scenario, stats: &RunStats) -> SloReport {
    let duration_us = scenario.duration.as_micros();
    let elapsed_us = stats.finished.since(stats.started).as_micros();
    let window_secs = duration_us as f64 / 1e6;
    let offered_per_sec = if window_secs > 0.0 {
        stats.offered as f64 / window_secs
    } else {
        0.0
    };
    let achieved_per_sec = if window_secs > 0.0 {
        stats.completed as f64 / window_secs
    } else {
        0.0
    };
    let (p50, p95, p99) = stats.latency.quantiles();

    let contract = &scenario.contract;
    let mut clauses = Vec::new();
    if let Some(max) = contract.max_latency {
        let bound_us = max.as_micros() as u64;
        clauses.push(SloClause {
            name: "latency_p95_us".into(),
            bound: format!("<= {bound_us}"),
            achieved: p95.to_string(),
            pass: p95 <= bound_us,
        });
    }
    if let Some(min) = contract.min_throughput {
        clauses.push(SloClause {
            name: "throughput_per_sec".into(),
            bound: format!(">= {}", f3(min)),
            achieved: f3(achieved_per_sec),
            pass: achieved_per_sec >= min,
        });
    }
    if let Some(min) = contract.min_availability {
        let availability = if stats.offered == 0 {
            1.0
        } else {
            stats.completed as f64 / stats.offered as f64
        };
        clauses.push(SloClause {
            name: "availability".into(),
            bound: format!(">= {}", f3(min)),
            achieved: f3(availability),
            pass: availability >= min,
        });
    }
    if contract.reliable_delivery {
        clauses.push(SloClause {
            name: "reliable_delivery".into(),
            bound: "lost == 0".into(),
            achieved: stats.lost.to_string(),
            pass: stats.lost == 0,
        });
    }
    let pass = clauses.iter().all(|c| c.pass);

    SloReport {
        scenario: scenario.name.clone(),
        seed: scenario.seed,
        load: scenario.load.describe(),
        duration_us,
        elapsed_us,
        offered: stats.offered,
        completed: stats.completed,
        rejected: stats.rejected,
        errors: stats.errors,
        lost: stats.lost,
        admission_shed: stats.admission_shed,
        offered_per_sec,
        achieved_per_sec,
        latency_samples: stats.latency.count() as u64,
        p50_us: p50,
        p95_us: p95,
        p99_us: p99,
        mean_us: stats.latency.mean(),
        max_us: stats.latency.max(),
        clauses,
        pass,
    }
}

impl SloReport {
    /// Renders the report as an aligned, deterministic text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "scenario {:<24} seed {:<8} {}\n",
            self.scenario, self.seed, self.load
        ));
        out.push_str(&format!(
            "  window {}us  elapsed {}us\n",
            self.duration_us, self.elapsed_us
        ));
        out.push_str(&format!(
            "  offered {} ({}/s)  completed {} ({}/s)  rejected {}  errors {}  lost {}  shed {}\n",
            self.offered,
            f3(self.offered_per_sec),
            self.completed,
            f3(self.achieved_per_sec),
            self.rejected,
            self.errors,
            self.lost,
            self.admission_shed,
        ));
        out.push_str(&format!(
            "  latency (us, {} samples): p50 {}  p95 {}  p99 {}  mean {}  max {}\n",
            self.latency_samples,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            f3(self.mean_us),
            self.max_us,
        ));
        if self.clauses.is_empty() {
            out.push_str("  contract: (none)\n");
        } else {
            out.push_str(&format!(
                "  {:<22} {:>14} {:>14}  verdict\n",
                "clause", "bound", "achieved"
            ));
            for c in &self.clauses {
                out.push_str(&format!(
                    "  {:<22} {:>14} {:>14}  {}\n",
                    c.name,
                    c.bound,
                    c.achieved,
                    if c.pass { "PASS" } else { "FAIL" }
                ));
            }
        }
        out.push_str(&format!(
            "  verdict: {}\n",
            if self.pass { "PASS" } else { "FAIL" }
        ));
        out
    }

    /// Serialises the report as deterministic JSON: fixed field order,
    /// integer microseconds, 3-decimal floats. Same run, same bytes.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"scenario\":{:?}", self.scenario));
        s.push_str(&format!(",\"seed\":{}", self.seed));
        s.push_str(&format!(",\"load\":{:?}", self.load));
        s.push_str(&format!(",\"duration_us\":{}", self.duration_us));
        s.push_str(&format!(",\"elapsed_us\":{}", self.elapsed_us));
        s.push_str(&format!(",\"offered\":{}", self.offered));
        s.push_str(&format!(",\"completed\":{}", self.completed));
        s.push_str(&format!(",\"rejected\":{}", self.rejected));
        s.push_str(&format!(",\"errors\":{}", self.errors));
        s.push_str(&format!(",\"lost\":{}", self.lost));
        s.push_str(&format!(",\"admission_shed\":{}", self.admission_shed));
        s.push_str(&format!(
            ",\"offered_per_sec\":{}",
            f3(self.offered_per_sec)
        ));
        s.push_str(&format!(
            ",\"achieved_per_sec\":{}",
            f3(self.achieved_per_sec)
        ));
        s.push_str(&format!(",\"latency_samples\":{}", self.latency_samples));
        s.push_str(&format!(
            ",\"latency_us\":{{\"p50\":{},\"p95\":{},\"p99\":{},\"mean\":{},\"max\":{}}}",
            self.p50_us,
            self.p95_us,
            self.p99_us,
            f3(self.mean_us),
            self.max_us
        ));
        s.push_str(",\"clauses\":[");
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":{:?},\"bound\":{:?},\"achieved\":{:?},\"pass\":{}}}",
                c.name, c.bound, c.achieved, c.pass
            ));
        }
        s.push(']');
        s.push_str(&format!(",\"pass\":{}", self.pass));
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::LoadModel;
    use rmodp_core::contract::QosRequirement;
    use rmodp_netsim::time::{SimDuration, SimTime};
    use std::time::Duration;

    fn stats(completed: u64, offered: u64, lats: &[u64]) -> RunStats {
        let mut s = RunStats {
            offered,
            completed,
            started: SimTime::ZERO,
            finished: SimTime::ZERO + SimDuration::from_secs(1),
            ..RunStats::default()
        };
        for &l in lats {
            s.latency.observe(l);
        }
        s
    }

    fn scenario_with(contract: QosRequirement) -> Scenario {
        Scenario::new(
            "t",
            1,
            LoadModel::Closed {
                population: 1,
                think_time: SimDuration::ZERO,
            },
        )
        .with_contract(contract)
    }

    #[test]
    fn clauses_follow_contract_fields() {
        let sc = scenario_with(
            QosRequirement::none()
                .with_max_latency(Duration::from_millis(5))
                .with_min_throughput(50.0)
                .with_min_availability(0.99)
                .reliable(),
        );
        let report = evaluate(&sc, &stats(100, 100, &[1000, 2000, 3000]));
        assert_eq!(report.clauses.len(), 4);
        assert!(report.pass, "{}", report.render());
        assert_eq!(report.achieved_per_sec, 100.0);
    }

    #[test]
    fn tail_latency_violation_fails() {
        let sc = scenario_with(QosRequirement::none().with_max_latency(Duration::from_millis(1)));
        let report = evaluate(&sc, &stats(3, 3, &[500, 800, 9000]));
        assert!(!report.pass);
        assert_eq!(report.clauses[0].name, "latency_p95_us");
        assert!(!report.clauses[0].pass);
    }

    #[test]
    fn availability_counts_rejections() {
        let sc = scenario_with(QosRequirement::none().with_min_availability(0.95));
        let mut s = stats(90, 100, &[100]);
        s.rejected = 10;
        let report = evaluate(&sc, &s);
        assert!(!report.pass, "90/100 < 0.95 must fail");
    }

    #[test]
    fn empty_contract_passes_vacuously() {
        let sc = scenario_with(QosRequirement::none());
        let report = evaluate(&sc, &stats(1, 1, &[10]));
        assert!(report.clauses.is_empty());
        assert!(report.pass);
        assert!(report.render().contains("contract: (none)"));
    }

    #[test]
    fn json_is_deterministic_and_structured() {
        let sc = scenario_with(QosRequirement::none().with_min_throughput(1.0));
        let s = stats(10, 10, &[100, 200]);
        let a = evaluate(&sc, &s).to_json();
        let b = evaluate(&sc, &s).to_json();
        assert_eq!(a, b);
        assert!(a.starts_with('{') && a.ends_with('}'));
        assert!(a.contains("\"latency_us\":{\"p50\":"));
        assert!(a.contains("\"pass\":true"));
    }
}
