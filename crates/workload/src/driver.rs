//! The load driver: executes a [`Scenario`] against a live engineering
//! deployment and collects raw run statistics.
//!
//! The driver sits where a population of client capsules would: it feeds
//! invocations into a channel with [`Engine::call_send`] (many in
//! flight at once — this is what actually exercises the nucleus's
//! admission queue) and harvests correlated replies with
//! [`Engine::take_reply`], timestamped at delivery.
//!
//! Latency accounting differs by loop model, deliberately:
//!
//! * **open loop** — measured from the *scheduled* arrival, so server
//!   queueing and admission delay count against the SLO even when the
//!   driver itself fell behind;
//! * **closed loop** — measured from the actual send, since a client
//!   cannot send before its previous reply; `think_time` is a minimum
//!   pause, as in any closed-loop generator.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rmodp_core::id::ChannelId;
use rmodp_engineering::engine::{CallError, Engine};
use rmodp_kernel::{Actor, Kernel};
use rmodp_netsim::time::{SimDuration, SimTime};
use rmodp_observe::bus;
use rmodp_observe::metrics::Histogram;

use crate::scenario::{LoadModel, Scenario};

/// Seed salt so the operation-mix draws are independent of the arrival
/// stream's draws for the same scenario seed.
const MIX_SEED_SALT: u64 = 0x517c_c1b7_2722_0a95;

/// Raw statistics from one scenario run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Requests issued (open loop: all scheduled arrivals that were sent).
    pub offered: u64,
    /// Requests answered with an `Ok` reply (any application termination).
    pub completed: u64,
    /// Requests refused with a `Rejected` reply (admission or replay).
    pub rejected: u64,
    /// Client-side failures: send errors, `NotHere`, undecodable replies.
    pub errors: u64,
    /// Requests never answered by the end of the run.
    pub lost: u64,
    /// Latency samples (µs) for completed requests scheduled after the
    /// warmup edge.
    pub latency: Histogram,
    /// Virtual time the run started.
    pub started: SimTime,
    /// Virtual time the last event of the run was processed.
    pub finished: SimTime,
    /// Completions per operation name.
    pub completed_per_op: BTreeMap<String, u64>,
    /// How many requests the *server side* refused or evicted during the
    /// run (`engineering.admission.shed` delta).
    pub admission_shed: u64,
}

/// One request in flight.
struct InFlight {
    scheduled: SimTime,
    op: String,
    /// Closed loop: which client sent it.
    client: Option<usize>,
}

/// Executes a scenario over an already-open channel and returns the raw
/// statistics. The channel's client node is the population's home; the
/// target interface is whatever the channel was opened to.
pub fn execute(engine: &mut Engine, channel: ChannelId, scenario: &Scenario) -> RunStats {
    execute_with(engine, channel, scenario, &mut [])
}

/// Executes a scenario like [`execute`], with extra [`Actor`]s — most
/// importantly `rmodp-chaos`'s fault injector — registered *ahead of*
/// the load generator on the same kernel, so their due instants
/// interleave with load generation in one totally ordered virtual-time
/// schedule (equal instants fire the extras first).
pub fn execute_with(
    engine: &mut Engine,
    channel: ChannelId,
    scenario: &Scenario,
    extras: &mut [&mut dyn Actor<Engine>],
) -> RunStats {
    assert!(
        !scenario.mix.is_empty(),
        "scenario {:?} has an empty operation mix",
        scenario.name
    );
    let shed_before = bus::counter("engineering.admission.shed");
    let mut stats = RunStats {
        started: engine.sim().now(),
        ..RunStats::default()
    };
    match scenario.load.clone() {
        LoadModel::Open { arrivals } => {
            open_loop(engine, channel, scenario, arrivals, &mut stats, extras)
        }
        LoadModel::Closed {
            population,
            think_time,
        } => closed_loop(
            engine, channel, scenario, population, think_time, &mut stats, extras,
        ),
    }
    stats.finished = engine.sim().now();
    stats.admission_shed = bus::counter("engineering.admission.shed") - shed_before;
    stats
}

/// The mutable driver state shared by the send and drain paths of both
/// loop models.
struct Driver<'a> {
    channel: ChannelId,
    scenario: &'a Scenario,
    warm_edge: SimTime,
    rng: StdRng,
    inflight: BTreeMap<u64, InFlight>,
    stats: &'a mut RunStats,
}

impl<'a> Driver<'a> {
    fn new(
        scenario: &'a Scenario,
        channel: ChannelId,
        t0: SimTime,
        stats: &'a mut RunStats,
    ) -> Self {
        Self {
            channel,
            scenario,
            warm_edge: t0 + scenario.warmup,
            rng: StdRng::seed_from_u64(scenario.seed ^ MIX_SEED_SALT),
            inflight: BTreeMap::new(),
            stats,
        }
    }

    fn send_one(&mut self, engine: &mut Engine, scheduled: SimTime, client: Option<usize>) {
        let entry = self.scenario.mix.sample(&mut self.rng);
        self.stats.offered += 1;
        bus::counter_add("workload.offered", 1);
        match engine.call_send(self.channel, &entry.op, &entry.args) {
            Ok(id) => {
                self.inflight.insert(
                    id,
                    InFlight {
                        scheduled,
                        op: entry.op.clone(),
                        client,
                    },
                );
            }
            Err(_) => {
                self.stats.errors += 1;
                bus::counter_add("workload.errors", 1);
            }
        }
    }

    /// Harvests every reply that has arrived; returns the clients freed
    /// by a reply, with the reply's arrival time.
    fn drain(&mut self, engine: &mut Engine) -> Vec<(usize, SimTime)> {
        let ids: Vec<u64> = self.inflight.keys().copied().collect();
        let mut freed = Vec::new();
        for id in ids {
            let Ok(Some((arrived, outcome))) = engine.take_reply(self.channel, id) else {
                continue;
            };
            let fl = self.inflight.remove(&id).expect("tracked above");
            match outcome {
                Ok(_termination) => {
                    self.stats.completed += 1;
                    bus::counter_add("workload.completed", 1);
                    *self.stats.completed_per_op.entry(fl.op).or_insert(0) += 1;
                    if fl.scheduled >= self.warm_edge {
                        let lat = arrived.since(fl.scheduled).as_micros();
                        self.stats.latency.observe(lat);
                        bus::observe("workload.latency_us", lat);
                    }
                }
                Err(CallError::Rejected { .. }) => {
                    self.stats.rejected += 1;
                    bus::counter_add("workload.rejected", 1);
                }
                Err(_) => {
                    self.stats.errors += 1;
                    bus::counter_add("workload.errors", 1);
                }
            }
            if let Some(c) = fl.client {
                freed.push((c, arrived));
            }
        }
        freed
    }
}

/// The open-loop load generator as a kernel actor: one due instant per
/// scheduled arrival; each tick harvests replies and sends one request.
struct OpenLoopActor<'a> {
    driver: Driver<'a>,
    arrivals: Vec<SimTime>,
    next: usize,
}

impl Actor<Engine> for OpenLoopActor<'_> {
    fn next_due(&self, _world: &Engine) -> Option<SimTime> {
        self.arrivals.get(self.next).copied()
    }

    fn tick(&mut self, world: &mut Engine, at: SimTime) {
        self.next += 1;
        self.driver.drain(world);
        self.driver.send_one(world, at, None);
    }

    fn name(&self) -> &'static str {
        "open_loop"
    }
}

fn open_loop(
    engine: &mut Engine,
    channel: ChannelId,
    scenario: &Scenario,
    arrivals: crate::arrival::ArrivalProcess,
    stats: &mut RunStats,
    extras: &mut [&mut dyn Actor<Engine>],
) {
    let t0 = engine.sim().now();
    let arrivals: Vec<SimTime> = arrivals
        .stream(scenario.seed)
        .take_while(|&o| o < scenario.duration)
        .map(|o| t0 + o)
        .collect();
    let mut actor = OpenLoopActor {
        driver: Driver::new(scenario, channel, t0, stats),
        arrivals,
        next: 0,
    };
    {
        let mut kernel = Kernel::new();
        for extra in extras.iter_mut() {
            kernel.register(&mut **extra);
        }
        kernel.register(&mut actor);
        kernel.run(engine);
    }
    engine.run_until_idle();
    actor.driver.drain(engine);
    actor.driver.stats.lost = actor.driver.inflight.len() as u64;
}

/// The closed-loop population as a kernel actor: a client becomes due
/// `think_time` after its previous reply; each tick harvests replies and
/// sends for every due client. While all clients are blocked on
/// in-flight requests the actor reports [`Actor::pending`], letting the
/// kernel single-step the simulation and poll for completions.
struct ClosedLoopActor<'a> {
    driver: Driver<'a>,
    /// Each client's next send target; `None` while a request is
    /// outstanding.
    due: Vec<Option<SimTime>>,
    end: SimTime,
    think_time: SimDuration,
}

impl ClosedLoopActor<'_> {
    /// Harvests arrived replies and schedules the freed clients' next
    /// sends.
    fn harvest(&mut self, world: &mut Engine) {
        for (c, arrived) in self.driver.drain(world) {
            self.due[c] = Some(arrived + self.think_time);
        }
    }
}

impl Actor<Engine> for ClosedLoopActor<'_> {
    fn next_due(&self, _world: &Engine) -> Option<SimTime> {
        self.due
            .iter()
            .flatten()
            .copied()
            .filter(|&d| d < self.end)
            .min()
    }

    fn tick(&mut self, world: &mut Engine, _at: SimTime) {
        self.harvest(world);
        let now = world.now();
        for c in 0..self.due.len() {
            if let Some(d) = self.due[c] {
                if d <= now && d < self.end {
                    self.due[c] = None;
                    self.driver.send_one(world, now, Some(c));
                }
            }
        }
    }

    fn pending(&self, _world: &Engine) -> bool {
        !self.driver.inflight.is_empty()
    }

    fn poll(&mut self, world: &mut Engine) {
        self.harvest(world);
    }

    fn name(&self) -> &'static str {
        "closed_loop"
    }
}

fn closed_loop(
    engine: &mut Engine,
    channel: ChannelId,
    scenario: &Scenario,
    population: usize,
    think_time: SimDuration,
    stats: &mut RunStats,
    extras: &mut [&mut dyn Actor<Engine>],
) {
    assert!(population > 0, "closed loop needs at least one client");
    let t0 = engine.sim().now();
    let mut actor = ClosedLoopActor {
        driver: Driver::new(scenario, channel, t0, stats),
        due: vec![Some(t0); population],
        end: t0 + scenario.duration,
        think_time,
    };
    {
        let mut kernel = Kernel::new();
        for extra in extras.iter_mut() {
            kernel.register(&mut **extra);
        }
        kernel.register(&mut actor);
        // No trailing `run_until_idle`: a closed run ends when every
        // client is past `end` and the in-flight tail has drained, and
        // `finished` must record that instant, not a later idle point.
        kernel.run(engine);
    }
    actor.driver.stats.lost = actor.driver.inflight.len() as u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalProcess;
    use crate::scenario::OperationMix;
    use rmodp_core::codec::SyntaxId;
    use rmodp_core::value::Value;
    use rmodp_engineering::behaviour::CounterBehaviour;
    use rmodp_engineering::channel::ChannelConfig;
    use rmodp_engineering::nucleus::AdmissionConfig;
    use rmodp_netsim::time::SimDuration;

    fn counter_setup(seed: u64) -> (Engine, rmodp_core::id::NodeId, ChannelId) {
        let mut engine = Engine::new(seed);
        engine
            .behaviours_mut()
            .register("counter", CounterBehaviour::default);
        let server = engine.add_node(SyntaxId::Binary);
        let client = engine.add_node(SyntaxId::Text);
        let capsule = engine.add_capsule(server).unwrap();
        let cluster = engine.add_cluster(server, capsule).unwrap();
        let (_, refs) = engine
            .create_object(
                server,
                capsule,
                cluster,
                "counter",
                "counter",
                CounterBehaviour::initial_state(),
                1,
            )
            .unwrap();
        let channel = engine
            .open_channel(client, refs[0].interface, ChannelConfig::default())
            .unwrap();
        (engine, server, channel)
    }

    fn add_mix() -> OperationMix {
        OperationMix::new().with("Add", Value::record([("k", Value::Int(1))]), 1)
    }

    #[test]
    fn open_loop_completes_all_under_light_load() {
        let (mut engine, _server, channel) = counter_setup(1);
        let scenario = Scenario::new(
            "light",
            5,
            LoadModel::Open {
                arrivals: ArrivalProcess::Constant { rate_per_sec: 50.0 },
            },
        )
        .lasting(SimDuration::from_secs(1))
        .with_mix(add_mix());
        let stats = execute(&mut engine, channel, &scenario);
        assert_eq!(stats.offered, 49);
        assert_eq!(stats.completed, 49);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.lost, 0);
        assert_eq!(stats.latency.count(), 49);
        assert!(stats.latency.min() > 0, "network latency is nonzero");
    }

    #[test]
    fn closed_loop_paces_on_think_time() {
        let (mut engine, _server, channel) = counter_setup(2);
        let scenario = Scenario::new(
            "closed",
            5,
            LoadModel::Closed {
                population: 4,
                think_time: SimDuration::from_millis(10),
            },
        )
        .lasting(SimDuration::from_secs(1))
        .with_mix(add_mix());
        let stats = execute(&mut engine, channel, &scenario);
        // 4 clients, ~1 round trip (~1ms) + 10ms think per request over
        // 1s: roughly 4 * 1s/11ms ≈ 360, certainly bounded.
        assert!(stats.offered > 100, "offered {}", stats.offered);
        assert!(stats.offered < 500, "offered {}", stats.offered);
        assert_eq!(stats.completed, stats.offered);
        assert_eq!(stats.lost, 0);
    }

    #[test]
    fn overload_trips_reject_admission() {
        let (mut engine, server, channel) = counter_setup(3);
        // Serve one request per 2ms with room for 4 — but offer one per
        // 1ms: the queue must overflow and reject.
        engine
            .set_admission(
                server,
                AdmissionConfig::reject(4, SimDuration::from_millis(2)),
            )
            .unwrap();
        let scenario = Scenario::new(
            "overload",
            9,
            LoadModel::Open {
                arrivals: ArrivalProcess::Constant {
                    rate_per_sec: 1000.0,
                },
            },
        )
        .lasting(SimDuration::from_millis(200))
        .with_mix(add_mix());
        let stats = execute(&mut engine, channel, &scenario);
        assert!(stats.rejected > 0, "admission never tripped: {stats:?}");
        assert_eq!(stats.rejected, stats.admission_shed);
        assert_eq!(stats.offered, stats.completed + stats.rejected);
        assert_eq!(stats.lost, 0);
        let ns = engine.node_stats(server).unwrap();
        assert_eq!(ns.shed, stats.rejected);
        assert!(ns.peak_queue_depth >= 4);
        // Queueing delay shows up in the completed requests' latency.
        assert!(stats.latency.max() >= 2_000);
    }

    #[test]
    fn shed_oldest_evicts_and_delay_never_rejects() {
        for (config, expect_reject) in [
            (
                AdmissionConfig::shed_oldest(4, SimDuration::from_millis(2)),
                true,
            ),
            (AdmissionConfig::delay(SimDuration::from_millis(2)), false),
        ] {
            let (mut engine, server, channel) = counter_setup(4);
            engine.set_admission(server, config).unwrap();
            let scenario = Scenario::new(
                "policy",
                9,
                LoadModel::Open {
                    arrivals: ArrivalProcess::Constant {
                        rate_per_sec: 1000.0,
                    },
                },
            )
            .lasting(SimDuration::from_millis(100))
            .with_mix(add_mix());
            let stats = execute(&mut engine, channel, &scenario);
            assert_eq!(stats.lost, 0, "{config:?}");
            if expect_reject {
                assert!(stats.rejected > 0, "{config:?}: {stats:?}");
            } else {
                assert_eq!(stats.rejected, 0, "{config:?}: {stats:?}");
                assert_eq!(stats.completed, stats.offered);
                // Pure delay: everything completes but the backlog shows
                // up as latency far beyond a round trip.
                assert!(stats.latency.max() > 10_000, "{stats:?}");
            }
        }
    }
}
