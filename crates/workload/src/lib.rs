//! # rmodp-workload — deterministic load generation and SLO evaluation
//!
//! RM-ODP's environment contracts (§5.3) state QoS obligations — "ideally
//! … in high-level quality-of-service terms" — but the rest of the
//! workspace only *carries* those contracts. This crate closes the loop:
//! it applies load to a deployed system, drives the engineering nucleus's
//! admission control into its contract-relevant regimes, and judges the
//! outcome against the contract.
//!
//! The pieces, bottom-up:
//!
//! - [`arrival`] — seeded arrival processes (constant-rate, Poisson,
//!   bursty on/off) as infinite deterministic streams of virtual-time
//!   offsets;
//! - [`scenario`] — the workload description: load model (open or closed
//!   loop), operation mix, duration/warmup, and the [`QosRequirement`]
//!   contract to judge against;
//! - [`driver`] — executes a scenario against an [`Engine`] channel on
//!   simulated time, keeping many requests in flight;
//! - [`slo`] — evaluates the run against the contract and renders a
//!   deterministic verdict report (text table and JSON).
//!
//! Everything runs on `rmodp-netsim` virtual time with seeded RNG: the
//! same scenario and seed on the same deployment yields a byte-identical
//! SLO report.
//!
//! [`QosRequirement`]: rmodp_core::contract::QosRequirement
//! [`Engine`]: rmodp_engineering::engine::Engine
//!
//! # Example
//!
//! ```
//! use rmodp_workload::prelude::*;
//! use rmodp_core::codec::SyntaxId;
//! use rmodp_core::contract::QosRequirement;
//! use rmodp_core::value::Value;
//! use rmodp_engineering::prelude::*;
//! use rmodp_netsim::time::SimDuration;
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut engine = Engine::new(7);
//! engine.behaviours_mut().register("counter", CounterBehaviour::default);
//! let server = engine.add_node(SyntaxId::Binary);
//! let client = engine.add_node(SyntaxId::Text);
//! let capsule = engine.add_capsule(server)?;
//! let cluster = engine.add_cluster(server, capsule)?;
//! let (_obj, refs) = engine.create_object(
//!     server, capsule, cluster, "counter", "counter",
//!     CounterBehaviour::initial_state(), 1,
//! )?;
//! let channel = engine.open_channel(client, refs[0].interface, ChannelConfig::default())?;
//!
//! let scenario = Scenario::new(
//!     "smoke", 7,
//!     LoadModel::Open { arrivals: ArrivalProcess::Poisson { rate_per_sec: 200.0 } },
//! )
//! .lasting(SimDuration::from_millis(500))
//! .with_mix(OperationMix::new().with("Add", Value::record([("k", Value::Int(1))]), 1))
//! .with_contract(QosRequirement::none().with_max_latency(Duration::from_millis(50)));
//!
//! let (stats, report) = run_scenario(&mut engine, channel, &scenario);
//! assert_eq!(stats.lost, 0);
//! assert!(report.pass, "{}", report.render());
//! # Ok(())
//! # }
//! ```

pub mod arrival;
pub mod driver;
pub mod population;
pub mod scenario;
pub mod slo;

use rmodp_core::id::ChannelId;
use rmodp_engineering::engine::Engine;

/// Runs a scenario over an open channel and evaluates the SLO verdict.
pub fn run_scenario(
    engine: &mut Engine,
    channel: ChannelId,
    scenario: &scenario::Scenario,
) -> (driver::RunStats, slo::SloReport) {
    let stats = driver::execute(engine, channel, scenario);
    let report = slo::evaluate(scenario, &stats);
    (stats, report)
}

/// Commonly used items.
pub mod prelude {
    pub use crate::arrival::{ArrivalProcess, ArrivalStream};
    pub use crate::driver::{execute, execute_with, RunStats};
    pub use crate::run_scenario;
    pub use crate::scenario::{LoadModel, OpMixEntry, OperationMix, Scenario};
    pub use crate::slo::{evaluate, SloClause, SloReport};
}
