//! Population-scale workloads on the sharded kernel.
//!
//! This module drives **millions of client capsules** against bank-branch
//! and trader-desk servers, partitioned across the shards of a
//! [`ShardedKernel`]. Each region contributes one server node (running an
//! engineering [`NucleusProcess`]) and one client-hub node (running a
//! [`ClientHubProcess`] that stands in for that region's client capsules);
//! regions are assigned to shards round-robin, so any shard count from 1
//! to the region count yields the same simulated world.
//!
//! # Why the results are shard-count invariant
//!
//! The exported completion log, the audited server states, and the SLO
//! verdict are byte-identical for the same seed at *any* shard count
//! because every source of nondeterminism is pinned:
//!
//! - **Timing** — links carry zero jitter and zero loss, so every message
//!   arrival time is a pure function of its send time; the conservative
//!   epoch protocol never lets a cross-shard message arrive in a shard's
//!   past.
//! - **Randomness** — client decisions (operation, amount, routing, think
//!   time) come from the pure hash [`mix`] keyed by `(seed, region,
//!   capsule, op)` — no stream is consumed, so no draw order exists to
//!   perturb.
//! - **Server order-sensitivity** — the behaviours
//!   ([`BankBranchBehaviour`], [`TraderDeskBehaviour`]) keep commutative
//!   state and reply as pure functions of the request, so the one thing
//!   re-sharding *does* change — the tie-break order of same-instant
//!   arrivals at a server — is unobservable.
//! - **Export order** — completions are sorted into the canonical
//!   `(t_us, region, capsule, seq)` order before rendering, erasing any
//!   collection-order difference between shard layouts.
//!
//! [`mix`]: rmodp_kernel::rng::mix

use std::collections::BTreeMap;
use std::time::Duration;

use rmodp_core::codec::{syntax_for, SyntaxId};
use rmodp_core::contract::QosRequirement;
use rmodp_core::id::{CapsuleId, ChannelId, ClusterId, InterfaceId, NodeId, ObjectId};
use rmodp_core::value::Value;
use rmodp_engineering::behaviour::ServerBehaviour;
use rmodp_engineering::envelope::{Envelope, EnvelopeKind, ReplyStatus};
use rmodp_engineering::nucleus::{NucleusProcess, DRIVER_PORT, NUCLEUS_PORT};
use rmodp_engineering::population::{BankBranchBehaviour, TraderDeskBehaviour};
use rmodp_engineering::structure::BeoRecord;
use rmodp_kernel::rng::mix;
use rmodp_kernel::{EpochHook, PartitionMap, ShardedKernel, SyncStats};
use rmodp_netsim::sim::{Addr, Ctx, Message, NodeIdx, Process, ShardAction, Sim};
use rmodp_netsim::time::{SimDuration, SimTime};
use rmodp_netsim::topology::{LinkConfig, Topology};

use crate::arrival::ArrivalProcess;
use crate::driver::RunStats;
use crate::scenario::{LoadModel, Scenario};
use crate::slo::{self, SloReport};

/// Latency of every inter-node link in the population topology. With a
/// single latency class, this is also the conservative lookahead bound
/// for any partition of the nodes.
pub const CROSS_LATENCY: SimDuration = SimDuration::from_micros(200);

/// Timer tag driving the activation chain of a client hub.
const TAG_ACTIVATE: u64 = 0;

/// Timer tags above this base encode "send the next op for capsule
/// `tag - OP_TAG_BASE`".
const OP_TAG_BASE: u64 = 1 << 40;

/// Seed salt for each region's activation arrival stream.
const ACTIVATION_SALT: u64 = 0xAC71_0A7E;
/// Seed salt for remote-region routing decisions.
const ROUTE_SALT: u64 = 0x2077_E221;
/// Seed salt for per-capsule think times.
const THINK_SALT: u64 = 0x7417_4B17;
/// Seed salt splitting the per-shard simulator RNG streams.
const SHARD_RNG_SALT: u64 = 0x5EED_0001;

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds `bytes` into a running FNV-1a 64-bit hash.
pub fn fnv1a64(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Which population scenario to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopulationScenario {
    /// Retail bank branches: deposits and withdrawals.
    Bank,
    /// Trading desks: quotes and bookings.
    Trader,
}

impl PopulationScenario {
    /// Stable scenario name (artifact keys, report headers).
    pub fn name(self) -> &'static str {
        match self {
            PopulationScenario::Bank => "bank",
            PopulationScenario::Trader => "trader",
        }
    }

    fn behaviour_name(self) -> &'static str {
        match self {
            PopulationScenario::Bank => "bank-branch",
            PopulationScenario::Trader => "trader-desk",
        }
    }

    fn behaviour(self) -> Box<dyn ServerBehaviour> {
        match self {
            PopulationScenario::Bank => Box::new(BankBranchBehaviour),
            PopulationScenario::Trader => Box::new(TraderDeskBehaviour),
        }
    }

    fn initial_state(self) -> Value {
        match self {
            PopulationScenario::Bank => BankBranchBehaviour::initial_state(),
            PopulationScenario::Trader => TraderDeskBehaviour::initial_state(),
        }
    }

    /// The operation a capsule performs for hash `h`: name, arguments and
    /// a compact op code for the completion log.
    fn op(self, h: u64) -> (&'static str, Value, u8) {
        let pick = h & 1;
        let body = h >> 1;
        match (self, pick) {
            (PopulationScenario::Bank, 0) => (
                "Deposit",
                Value::record([("amount", Value::Int(1 + (body % 997) as i64))]),
                0,
            ),
            (PopulationScenario::Bank, _) => (
                "Withdraw",
                Value::record([("amount", Value::Int(1 + (body % 991) as i64))]),
                1,
            ),
            (PopulationScenario::Trader, 0) => (
                "Quote",
                Value::record([("instrument", Value::Int((body % 9973) as i64))]),
                0,
            ),
            (PopulationScenario::Trader, _) => (
                "Book",
                Value::record([("qty", Value::Int(1 + (body % 97) as i64))]),
                1,
            ),
        }
    }

    /// The operation name for an op code in the completion log.
    pub fn op_name(self, code: u8) -> &'static str {
        match (self, code) {
            (PopulationScenario::Bank, 0) => "Deposit",
            (PopulationScenario::Bank, _) => "Withdraw",
            (PopulationScenario::Trader, 0) => "Quote",
            (PopulationScenario::Trader, _) => "Book",
        }
    }
}

/// Configuration of one population run.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// The scenario (bank branches or trader desks).
    pub scenario: PopulationScenario,
    /// Master seed; every stream and hash in the run derives from it.
    pub seed: u64,
    /// Shard count; regions are assigned round-robin.
    pub shards: usize,
    /// Number of regions (each: one server node + one client-hub node).
    pub regions: u32,
    /// Client capsules simulated per region.
    pub capsules_per_region: u32,
    /// Operations each capsule performs (a closed chain with think time).
    pub ops_per_capsule: u32,
    /// Virtual window over which capsule activations are spread.
    pub arrival_window: SimDuration,
    /// Run shards on real threads (`std::thread::scope`); the serial
    /// path is byte-identical, so this only affects wall-clock time.
    pub threaded: bool,
    /// Keep the rendered JSONL export in the outcome (tests and smoke
    /// runs; full-scale runs should rely on the checksum instead).
    pub collect_export: bool,
}

impl PopulationConfig {
    /// A small default configuration, suitable for tests.
    pub fn new(scenario: PopulationScenario, seed: u64, shards: usize) -> Self {
        Self {
            scenario,
            seed,
            shards,
            regions: 8,
            capsules_per_region: 64,
            ops_per_capsule: 2,
            arrival_window: SimDuration::from_millis(200),
            threaded: shards > 1,
            collect_export: false,
        }
    }

    /// The full-scale configuration the population benchmark publishes:
    /// the bank scenario alone simulates 1,048,576 client capsules.
    pub fn full_scale(scenario: PopulationScenario, seed: u64, shards: usize) -> Self {
        let mut config = Self::new(scenario, seed, shards);
        match scenario {
            PopulationScenario::Bank => {
                config.regions = 64;
                config.capsules_per_region = 16_384;
                config.ops_per_capsule = 1;
            }
            PopulationScenario::Trader => {
                config.regions = 48;
                config.capsules_per_region = 4_096;
                config.ops_per_capsule = 2;
            }
        }
        config.arrival_window = SimDuration::from_secs(2);
        config
    }

    /// Total capsules simulated.
    pub fn capsules(&self) -> u64 {
        self.regions as u64 * self.capsules_per_region as u64
    }

    fn validate(&self) {
        assert!(self.shards >= 1, "at least one shard");
        assert!(self.regions >= 1, "at least one region");
        assert!(
            self.shards <= self.regions as usize,
            "more shards than regions leaves shards idle"
        );
        assert!(
            self.capsules_per_region < (1 << 24),
            "capsule index must fit the request-id encoding"
        );
        assert!(
            self.ops_per_capsule >= 1 && self.ops_per_capsule < (1 << 16),
            "op index must fit the request-id encoding"
        );
        assert!(
            self.regions < (1 << 24),
            "region index must fit the request-id encoding"
        );
    }
}

/// Encodes `(region, capsule, op_seq)` as a non-zero request id.
fn request_id(region: u32, capsule: u32, op_seq: u32) -> u64 {
    ((region as u64) << 40) | ((capsule as u64) << 16) | (op_seq as u64 + 1)
}

/// The inverse of [`request_id`].
fn decode_request_id(req: u64) -> (u32, u32, u32) {
    (
        ((req >> 40) & 0xFF_FFFF) as u32,
        ((req >> 16) & 0xFF_FFFF) as u32,
        ((req & 0xFFFF) - 1) as u32,
    )
}

/// One completed (answered) operation, as recorded by a client hub.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Virtual arrival time of the reply, µs.
    pub t_us: u64,
    /// The capsule's home region.
    pub region: u32,
    /// Capsule index within the region.
    pub capsule: u32,
    /// Which of the capsule's operations this was.
    pub op_seq: u32,
    /// Scenario-relative op code (see [`PopulationScenario::op_name`]).
    pub op: u8,
    /// 0 = ok, 1 = rejected, 2 = not-here.
    pub status: u8,
    /// Request-to-reply virtual latency, µs.
    pub latency_us: u64,
}

impl Completion {
    /// The canonical export order.
    fn sort_key(&self) -> (u64, u32, u32, u32) {
        (self.t_us, self.region, self.capsule, self.op_seq)
    }

    fn status_name(&self) -> &'static str {
        match self.status {
            0 => "ok",
            1 => "rejected",
            _ => "not_here",
        }
    }

    fn render(&self, scenario: PopulationScenario) -> String {
        format!(
            "{{\"t_us\":{},\"region\":{},\"capsule\":{},\"seq\":{},\"op\":\"{}\",\"status\":\"{}\",\"latency_us\":{}}}",
            self.t_us,
            self.region,
            self.capsule,
            self.op_seq,
            scenario.op_name(self.op),
            self.status_name(),
            self.latency_us,
        )
    }
}

/// Stands in for one region's client capsules: activates each capsule at
/// its scheduled instant, then walks it through a closed chain of
/// request → reply → think → request.
pub struct ClientHubProcess {
    region: u32,
    seed: u64,
    scenario: PopulationScenario,
    regions: u32,
    ops_per_capsule: u32,
    /// Ascending activation offsets from the run origin, one per capsule.
    schedule: Vec<SimDuration>,
    next_activation: usize,
    /// Operations completed per capsule (the next op's index).
    ops_done: Vec<u16>,
    /// Outstanding requests: request id → send time.
    inflight: BTreeMap<u64, SimTime>,
    sent: u64,
    completions: Vec<Completion>,
}

impl ClientHubProcess {
    fn new(region: u32, config: &PopulationConfig) -> Self {
        let capsules = config.capsules_per_region as usize;
        let window_secs = config.arrival_window.as_micros() as f64 / 1e6;
        let rate = if window_secs > 0.0 {
            capsules as f64 / window_secs
        } else {
            1.0
        };
        let schedule: Vec<SimDuration> = ArrivalProcess::Poisson { rate_per_sec: rate }
            .stream(mix(
                config.seed,
                ACTIVATION_SALT.wrapping_add(region as u64),
            ))
            .take(capsules)
            .collect();
        Self {
            region,
            seed: config.seed,
            scenario: config.scenario,
            regions: config.regions,
            ops_per_capsule: config.ops_per_capsule,
            schedule,
            next_activation: 0,
            ops_done: vec![0; capsules],
            inflight: BTreeMap::new(),
            sent: 0,
            completions: Vec::new(),
        }
    }

    /// The delay from the run origin until this hub first acts; `None`
    /// when it has no capsules.
    fn first_activation(&self) -> Option<SimDuration> {
        self.schedule.first().copied()
    }

    /// Requests issued by this hub.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Completions recorded by this hub, in arrival order.
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    /// The region an op targets: usually the capsule's home region, but
    /// one in four ops goes to a hash-chosen remote region, generating
    /// cross-shard traffic under any multi-shard partition.
    fn target_region(&self, key: u64) -> u32 {
        let route = mix(self.seed ^ ROUTE_SALT, key);
        if self.regions > 1 && route.is_multiple_of(4) {
            let hop = 1 + ((route >> 2) % (self.regions as u64 - 1)) as u32;
            (self.region + hop) % self.regions
        } else {
            self.region
        }
    }

    fn send_op(&mut self, ctx: &mut Ctx<'_>, capsule: u32) {
        let op_seq = self.ops_done[capsule as usize] as u32;
        let req = request_id(self.region, capsule, op_seq);
        let h = mix(self.seed, req);
        let (op, args, _code) = self.scenario.op(h);
        let target = self.target_region(req);
        let payload = syntax_for(SyntaxId::Binary)
            .encode(&Value::record([("op", Value::text(op)), ("args", args)]));
        let env = Envelope::request(
            ChannelId::new(0),
            req,
            InterfaceId::new(target as u64 + 1),
            SyntaxId::Binary,
            payload,
        );
        ctx.send(Addr::new(NodeIdx(2 * target), NUCLEUS_PORT), env.to_bytes());
        self.inflight.insert(req, ctx.now());
        self.sent += 1;
    }
}

impl Process for ClientHubProcess {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        let Ok(env) = Envelope::from_payload(&msg.payload) else {
            return;
        };
        if env.kind != EnvelopeKind::Reply {
            return;
        }
        let Some(sent_at) = self.inflight.remove(&env.request) else {
            return;
        };
        let (region, capsule, op_seq) = decode_request_id(env.request);
        debug_assert_eq!(region, self.region);
        let h = mix(self.seed, env.request);
        let (_, _, code) = self.scenario.op(h);
        let now = ctx.now();
        self.completions.push(Completion {
            t_us: now.as_micros(),
            region,
            capsule,
            op_seq,
            op: code,
            status: match env.status {
                ReplyStatus::Ok => 0,
                ReplyStatus::Rejected => 1,
                ReplyStatus::NotHere => 2,
            },
            latency_us: now.since(sent_at).as_micros(),
        });
        self.ops_done[capsule as usize] += 1;
        if (self.ops_done[capsule as usize] as u32) < self.ops_per_capsule {
            let think = 500 + mix(self.seed ^ THINK_SALT, env.request) % 2000;
            ctx.set_timer(
                SimDuration::from_micros(think),
                OP_TAG_BASE | capsule as u64,
            );
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if tag == TAG_ACTIVATE {
            while self.next_activation < self.schedule.len() {
                let due = SimTime::ZERO + self.schedule[self.next_activation];
                if due > ctx.now() {
                    break;
                }
                let capsule = self.next_activation as u32;
                self.next_activation += 1;
                self.send_op(ctx, capsule);
            }
            if self.next_activation < self.schedule.len() {
                let due = SimTime::ZERO + self.schedule[self.next_activation];
                ctx.set_timer(due.since(ctx.now()), TAG_ACTIVATE);
            }
        } else {
            self.send_op(ctx, (tag & (OP_TAG_BASE - 1)) as u32);
        }
    }
}

/// The outcome of one population run: deterministic counters, checksums
/// over the canonical export and audited server states, and the SLO
/// verdict.
#[derive(Debug, Clone)]
pub struct PopulationOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Shard count the run used.
    pub shards: usize,
    /// Client capsules simulated.
    pub capsules: u64,
    /// Kernel events processed (all shards).
    pub events: u64,
    /// Synchronization epochs the sharded kernel ran.
    pub epochs: u64,
    /// Messages that crossed a shard boundary.
    pub cross_shard_messages: u64,
    /// Epoch-hook firings (fault injections etc.).
    pub hook_firings: u64,
    /// Virtual time of the last processed event, µs.
    pub finished_us: u64,
    /// FNV-1a checksum of the canonical JSONL completion export.
    pub export_checksum: u64,
    /// FNV-1a checksum of the audited per-region server states.
    pub state_checksum: u64,
    /// Raw run statistics.
    pub stats: RunStats,
    /// The SLO verdict.
    pub report: SloReport,
    /// The rendered export, when the config asked to keep it.
    pub export: Option<String>,
}

/// The topology every shard instantiates: a full mesh with one uniform
/// latency class and no jitter or loss.
fn population_topology() -> Topology {
    Topology::full_mesh(LinkConfig::with_latency(CROSS_LATENCY))
}

/// The region-to-shard partition: region `r` (nodes `2r` and `2r + 1`)
/// lives on shard `r % shards`.
pub fn population_partition(regions: u32, shards: usize) -> PartitionMap {
    let owner = (0..2 * regions as usize)
        .map(|n| (n / 2) % shards)
        .collect();
    PartitionMap::new(shards, owner)
}

/// Runs a population scenario to quiescence.
pub fn run_population(config: &PopulationConfig) -> PopulationOutcome {
    run_population_with_hook(config, &mut rmodp_kernel::shard::NoHook)
}

/// Runs a population scenario with an epoch hook (fault injection).
pub fn run_population_with_hook(
    config: &PopulationConfig,
    hook: &mut dyn EpochHook<ShardAction>,
) -> PopulationOutcome {
    config.validate();
    let regions = config.regions;
    let map = population_partition(regions, config.shards);
    let lookahead = population_topology()
        .min_cross_partition_latency(&map)
        .unwrap_or(CROSS_LATENCY);

    let mut sims: Vec<Sim> = (0..config.shards)
        .map(|s| {
            let mut sim = Sim::with_topology(
                mix(config.seed, SHARD_RNG_SALT.wrapping_add(s as u64)),
                population_topology(),
            );
            for _ in 0..2 * regions {
                sim.add_node();
            }
            sim.enable_shard_routing(s, map.clone());
            sim
        })
        .collect();

    for r in 0..regions {
        let shard = r as usize % config.shards;
        let sim = &mut sims[shard];
        let server = Addr::new(NodeIdx(2 * r), NUCLEUS_PORT);
        let hub = Addr::new(NodeIdx(2 * r + 1), DRIVER_PORT);

        let mut nucleus = NucleusProcess::new(NodeId::new(2 * r as u64), SyntaxId::Binary);
        let capsule = CapsuleId::new(r as u64 + 1);
        let cluster = ClusterId::new(r as u64 + 1);
        nucleus.add_capsule(capsule);
        nucleus.add_cluster(capsule, cluster);
        nucleus.install_object(
            capsule,
            cluster,
            BeoRecord {
                object: ObjectId::new(r as u64 + 1),
                name: format!("{}-{r}", config.scenario.behaviour_name()),
                behaviour: config.scenario.behaviour_name().into(),
                interfaces: vec![InterfaceId::new(r as u64 + 1)],
            },
            config.scenario.behaviour(),
            config.scenario.initial_state(),
        );
        sim.attach(server, nucleus);

        let hub_process = ClientHubProcess::new(r, config);
        let first = hub_process.first_activation();
        sim.attach(hub, hub_process);
        if let Some(delay) = first {
            sim.schedule_timer(hub, delay, TAG_ACTIVATE);
        }
    }

    let mut kernel = ShardedKernel::new(sims, lookahead);
    kernel.set_threaded(config.threaded && config.shards > 1);
    let sync: SyncStats = kernel.run_with_hook(hook);
    let sims = kernel.into_shards();

    collect_outcome(config, &sims, sync)
}

/// Gathers completions and audited state from the finished shards and
/// renders the deterministic outcome.
fn collect_outcome(config: &PopulationConfig, sims: &[Sim], sync: SyncStats) -> PopulationOutcome {
    let mut completions: Vec<Completion> = Vec::new();
    let mut offered = 0u64;
    let mut state_checksum = FNV_OFFSET_BASIS;

    for r in 0..config.regions {
        let shard = r as usize % config.shards;
        let sim = &sims[shard];
        let hub = sim
            .inspect::<ClientHubProcess>(Addr::new(NodeIdx(2 * r + 1), DRIVER_PORT))
            .expect("client hub still attached");
        offered += hub.sent();
        completions.extend_from_slice(hub.completions());

        let nucleus = sim
            .inspect::<NucleusProcess>(Addr::new(NodeIdx(2 * r), NUCLEUS_PORT))
            .expect("nucleus still attached");
        let state = nucleus
            .object_state(ObjectId::new(r as u64 + 1))
            .expect("server object installed");
        state_checksum = fnv1a64(state_checksum, &r.to_le_bytes());
        state_checksum = fnv1a64(state_checksum, &syntax_for(SyntaxId::Binary).encode(state));
    }

    completions.sort_by_key(Completion::sort_key);

    let mut export_checksum = FNV_OFFSET_BASIS;
    let mut export = config.collect_export.then(String::new);
    let mut stats = RunStats::default();
    for c in &completions {
        let line = c.render(config.scenario);
        export_checksum = fnv1a64(export_checksum, line.as_bytes());
        export_checksum = fnv1a64(export_checksum, b"\n");
        if let Some(out) = export.as_mut() {
            out.push_str(&line);
            out.push('\n');
        }
        match c.status {
            0 => {
                stats.completed += 1;
                stats.latency.observe(c.latency_us);
                *stats
                    .completed_per_op
                    .entry(config.scenario.op_name(c.op).to_string())
                    .or_insert(0) += 1;
            }
            1 => stats.rejected += 1,
            _ => stats.errors += 1,
        }
    }
    stats.offered = offered;
    stats.lost = offered - completions.len() as u64;
    stats.started = SimTime::ZERO;
    stats.finished = sims.iter().map(Sim::now).max().unwrap_or(SimTime::ZERO);

    let window_secs = config.arrival_window.as_micros() as f64 / 1e6;
    let total_ops = config.capsules() * config.ops_per_capsule as u64;
    let scenario = Scenario::new(
        format!("population-{}", config.scenario.name()),
        config.seed,
        LoadModel::Open {
            arrivals: ArrivalProcess::Poisson {
                rate_per_sec: config.capsules() as f64 / window_secs.max(1e-9),
            },
        },
    )
    .lasting(config.arrival_window)
    .with_contract({
        let mut contract = QosRequirement::none()
            .with_max_latency(Duration::from_millis(20))
            .with_min_availability(0.999)
            .with_min_throughput(0.5 * total_ops as f64 / window_secs.max(1e-9));
        contract.reliable_delivery = true;
        contract
    });
    let report = slo::evaluate(&scenario, &stats);

    PopulationOutcome {
        scenario: config.scenario.name().into(),
        shards: config.shards,
        capsules: config.capsules(),
        events: sync.events,
        epochs: sync.epochs,
        cross_shard_messages: sync.cross_shard_messages,
        hook_firings: sync.hook_firings,
        finished_us: stats.finished.as_micros(),
        export_checksum,
        state_checksum,
        stats,
        report,
        export,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(scenario: PopulationScenario, shards: usize) -> PopulationConfig {
        let mut config = PopulationConfig::new(scenario, 7, shards);
        config.regions = 4;
        config.capsules_per_region = 8;
        config.ops_per_capsule = 2;
        config.arrival_window = SimDuration::from_millis(50);
        config.collect_export = true;
        config
    }

    #[test]
    fn request_ids_round_trip() {
        for (r, c, s) in [(0, 0, 0), (3, 7, 1), (1 << 20, (1 << 24) - 1, 65_534)] {
            let req = request_id(r, c, s);
            assert_ne!(req, 0);
            assert_eq!(decode_request_id(req), (r, c, s));
        }
    }

    #[test]
    fn bank_exports_are_shard_count_invariant() {
        let base = run_population(&small(PopulationScenario::Bank, 1));
        assert_eq!(base.stats.offered, 4 * 8 * 2);
        assert_eq!(base.stats.lost, 0);
        assert!(base.report.pass, "{}", base.report.render());
        for shards in [2, 4] {
            let run = run_population(&small(PopulationScenario::Bank, shards));
            assert!(run.cross_shard_messages > 0, "routing exercises shards");
            assert_eq!(run.export, base.export, "JSONL export at {shards} shards");
            assert_eq!(run.export_checksum, base.export_checksum);
            assert_eq!(run.state_checksum, base.state_checksum);
            assert_eq!(run.events, base.events);
            assert_eq!(run.report, base.report, "SLO verdict at {shards} shards");
        }
    }

    #[test]
    fn trader_serial_and_threaded_agree() {
        let serial = {
            let mut c = small(PopulationScenario::Trader, 2);
            c.threaded = false;
            run_population(&c)
        };
        let threaded = run_population(&small(PopulationScenario::Trader, 2));
        assert_eq!(serial.export, threaded.export);
        assert_eq!(serial.export_checksum, threaded.export_checksum);
        assert_eq!(serial.state_checksum, threaded.state_checksum);
        let single = run_population(&small(PopulationScenario::Trader, 1));
        assert_eq!(single.export_checksum, threaded.export_checksum);
        assert_eq!(single.report, threaded.report);
    }
}
