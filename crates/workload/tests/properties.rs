//! Property tests for the workload subsystem: arrival streams are
//! deterministic, monotone, and respect their configured mean rate; a
//! whole scenario replays to a byte-identical SLO report.

use proptest::prelude::*;

use rmodp_core::codec::SyntaxId;
use rmodp_core::value::Value;
use rmodp_engineering::behaviour::CounterBehaviour;
use rmodp_engineering::channel::ChannelConfig;
use rmodp_engineering::engine::Engine;
use rmodp_netsim::time::SimDuration;
use rmodp_workload::prelude::*;

fn offsets(p: ArrivalProcess, seed: u64, horizon: SimDuration) -> Vec<SimDuration> {
    p.stream(seed).take_while(|&t| t < horizon).collect()
}

fn arb_process() -> impl Strategy<Value = ArrivalProcess> {
    prop_oneof![
        (50.0f64..4_000.0).prop_map(|rate_per_sec| ArrivalProcess::Constant { rate_per_sec }),
        (50.0f64..4_000.0).prop_map(|rate_per_sec| ArrivalProcess::Poisson { rate_per_sec }),
        (200.0f64..4_000.0, 0.0f64..100.0, 5u64..80, 5u64..80).prop_map(
            |(on_rate_per_sec, off_rate_per_sec, on_ms, off_ms)| ArrivalProcess::BurstyOnOff {
                on_rate_per_sec,
                off_rate_per_sec,
                mean_on: SimDuration::from_millis(on_ms),
                mean_off: SimDuration::from_millis(off_ms),
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn same_seed_same_stream(p in arb_process(), seed in 0u64..10_000) {
        let horizon = SimDuration::from_secs(2);
        let a = offsets(p, seed, horizon);
        let b = offsets(p, seed, horizon);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn streams_are_monotone(p in arb_process(), seed in 0u64..10_000) {
        let arr = offsets(p, seed, SimDuration::from_secs(2));
        prop_assert!(arr.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn poisson_mean_rate_holds(rate in 100.0f64..2_000.0, seed in 0u64..1_000) {
        // Long horizon so the relative error bound is statistical, not
        // luck: ~sqrt(n)/n at n >= 2000 is under 2.3%, asserted at 10%.
        let secs = 20u64;
        let arr = offsets(
            ArrivalProcess::Poisson { rate_per_sec: rate },
            seed,
            SimDuration::from_secs(secs),
        );
        let expected = rate * secs as f64;
        let got = arr.len() as f64;
        prop_assert!(
            (got - expected).abs() / expected < 0.10,
            "rate {} seed {}: got {}, expected ~{}",
            rate, seed, got, expected
        );
    }

    #[test]
    fn bursty_mean_rate_holds(
        on_rate in 500.0f64..3_000.0,
        on_ms in 10u64..60,
        off_ms in 10u64..60,
        seed in 0u64..1_000,
    ) {
        let p = ArrivalProcess::BurstyOnOff {
            on_rate_per_sec: on_rate,
            off_rate_per_sec: 0.0,
            mean_on: SimDuration::from_millis(on_ms),
            mean_off: SimDuration::from_millis(off_ms),
        };
        // Long horizon: many phase alternations average out the phase
        // length variance (looser bound than Poisson for that reason).
        let secs = 60u64;
        let arr = offsets(p, seed, SimDuration::from_secs(secs));
        let expected = p.mean_rate() * secs as f64;
        let got = arr.len() as f64;
        prop_assert!(
            (got - expected).abs() / expected < 0.25,
            "got {}, expected ~{}",
            got, expected
        );
    }
}

fn counter_channel(seed: u64) -> (Engine, rmodp_core::id::ChannelId) {
    let mut engine = Engine::new(seed);
    engine
        .behaviours_mut()
        .register("counter", CounterBehaviour::default);
    let server = engine.add_node(SyntaxId::Binary);
    let client = engine.add_node(SyntaxId::Text);
    let capsule = engine.add_capsule(server).unwrap();
    let cluster = engine.add_cluster(server, capsule).unwrap();
    let (_, refs) = engine
        .create_object(
            server,
            capsule,
            cluster,
            "counter",
            "counter",
            CounterBehaviour::initial_state(),
            1,
        )
        .unwrap();
    let channel = engine
        .open_channel(client, refs[0].interface, ChannelConfig::default())
        .unwrap();
    (engine, channel)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn scenario_replays_byte_identically(seed in 0u64..500, rate in 100.0f64..800.0) {
        let scenario = Scenario::new(
            "prop-replay",
            seed,
            LoadModel::Open {
                arrivals: ArrivalProcess::Poisson { rate_per_sec: rate },
            },
        )
        .lasting(SimDuration::from_millis(300))
        .with_mix(
            OperationMix::new()
                .with("Add", Value::record([("k", Value::Int(2))]), 3)
                .with("Get", Value::record::<&str, _>([]), 1),
        );

        let (mut e1, ch1) = counter_channel(seed);
        let (_, r1) = run_scenario(&mut e1, ch1, &scenario);
        let (mut e2, ch2) = counter_channel(seed);
        let (_, r2) = run_scenario(&mut e2, ch2, &scenario);
        prop_assert_eq!(r1.to_json(), r2.to_json());
    }
}
