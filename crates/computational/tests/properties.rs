//! Property tests for interface subtyping: reflexivity, the width/depth
//! laws, transitivity on generated chains, and activity-interpreter
//! invariants.

use proptest::prelude::*;

use rmodp_computational::activity::{execute, Activity, BasicAction};
use rmodp_computational::signature::{OperationalSignature, TerminationSignature};
use rmodp_computational::subtype::is_operational_subtype;
use rmodp_core::dtype::DataType;

#[derive(Debug, Clone)]
struct OpSpec {
    params: Vec<u8>, // 0=Int, 1=Float, 2=Text
    interrogation: bool,
}

fn dt(tag: u8) -> DataType {
    match tag % 3 {
        0 => DataType::Int,
        1 => DataType::Float,
        _ => DataType::Text,
    }
}

fn arb_signature() -> impl Strategy<Value = Vec<OpSpec>> {
    proptest::collection::vec(
        (proptest::collection::vec(0u8..3, 0..4), any::<bool>()).prop_map(
            |(params, interrogation)| OpSpec {
                params,
                interrogation,
            },
        ),
        1..8,
    )
}

fn build(name: &str, ops: &[OpSpec]) -> OperationalSignature {
    let mut sig = OperationalSignature::new(name);
    for (i, op) in ops.iter().enumerate() {
        let params: Vec<(String, DataType)> = op
            .params
            .iter()
            .enumerate()
            .map(|(j, t)| (format!("p{j}"), dt(*t)))
            .collect();
        sig = if op.interrogation {
            sig.interrogation(
                format!("op{i}"),
                params,
                vec![TerminationSignature::new("OK", [("r", DataType::Int)])],
            )
        } else {
            sig.announcement(format!("op{i}"), params)
        };
    }
    sig
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn subtyping_is_reflexive(ops in arb_signature()) {
        let sig = build("S", &ops);
        prop_assert!(is_operational_subtype(&sig, &sig).is_ok());
    }

    /// Width law: adding operations preserves subtyping towards the
    /// original.
    #[test]
    fn wider_signatures_are_subtypes(ops in arb_signature(), extra in arb_signature()) {
        let base = build("Base", &ops);
        let mut wide = build("Wide", &ops);
        for (i, op) in extra.iter().enumerate() {
            let params: Vec<(String, DataType)> = op
                .params
                .iter()
                .enumerate()
                .map(|(j, t)| (format!("q{j}"), dt(*t)))
                .collect();
            wide = wide.announcement(format!("extra{i}"), params);
        }
        prop_assert!(is_operational_subtype(&wide, &base).is_ok());
        // And strictly wider is not a supertype unless nothing was added.
        if !extra.is_empty() {
            prop_assert!(is_operational_subtype(&base, &wide).is_err());
        }
    }

    /// Transitivity on a generated chain: base <: mid <: top by
    /// construction implies base-extension chain relations compose.
    #[test]
    fn transitive_on_widening_chains(ops in arb_signature()) {
        let top = build("Top", &ops);
        let mid = build("Mid", &ops).announcement("mid_extra", [("x", DataType::Int)]);
        let bot = build("Bot", &ops)
            .announcement("mid_extra", [("x", DataType::Int)])
            .announcement("bot_extra", [("y", DataType::Text)]);
        prop_assert!(is_operational_subtype(&bot, &mid).is_ok());
        prop_assert!(is_operational_subtype(&mid, &top).is_ok());
        prop_assert!(is_operational_subtype(&bot, &top).is_ok());
    }

    /// Int-parameter widening to Float is contravariantly accepted.
    #[test]
    fn float_accepting_subtype_for_int_params(n_params in 1usize..4) {
        let params_int: Vec<(String, DataType)> =
            (0..n_params).map(|j| (format!("p{j}"), DataType::Int)).collect();
        let params_float: Vec<(String, DataType)> =
            (0..n_params).map(|j| (format!("p{j}"), DataType::Float)).collect();
        let sup = OperationalSignature::new("S").announcement("f", params_int);
        let sub = OperationalSignature::new("T").announcement("f", params_float);
        prop_assert!(is_operational_subtype(&sub, &sup).is_ok());
        prop_assert!(is_operational_subtype(&sup, &sub).is_err());
    }
}

/// Arbitrary activities with bounded depth.
fn arb_activity() -> impl Strategy<Value = Activity> {
    let leaf = (0u32..100).prop_map(|i| Activity::Action(BasicAction::WriteState(format!("a{i}"))));
    leaf.prop_recursive(3, 20, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Activity::Seq),
            proptest::collection::vec(inner.clone(), 0..3).prop_map(Activity::Fork),
            inner.prop_map(|a| Activity::Spawn(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every basic action executes exactly once, whatever the composition.
    #[test]
    fn interpreter_executes_every_action_once(activity in arb_activity()) {
        let trace = execute(&activity);
        prop_assert_eq!(trace.events.len(), activity.action_count());
        for (i, e) in trace.events.iter().enumerate() {
            prop_assert_eq!(e.step, i);
        }
    }

    /// The interpreter is deterministic.
    #[test]
    fn interpreter_is_deterministic(activity in arb_activity()) {
        prop_assert_eq!(execute(&activity), execute(&activity));
    }

    /// Sequential composition preserves relative order of its parts.
    #[test]
    fn seq_preserves_order(names in proptest::collection::vec(0u32..50, 1..10)) {
        let activity = Activity::Seq(
            names
                .iter()
                .map(|n| Activity::Action(BasicAction::WriteState(format!("a{n}"))))
                .collect(),
        );
        let trace = execute(&activity);
        let got: Vec<String> = trace
            .events
            .iter()
            .map(|e| match &e.action {
                BasicAction::WriteState(s) => s.clone(),
                _ => unreachable!(),
            })
            .collect();
        let expected: Vec<String> = names.iter().map(|n| format!("a{n}")).collect();
        prop_assert_eq!(got, expected);
    }
}
