//! A parser for the paper's interface-type notation (§5.1).
//!
//! The tutorial writes interface types like this (noting "the notation…
//! is merely illustrative; RM-ODP does not prescribe any particular
//! notation"):
//!
//! ```text
//! BankTeller = Interface Type {
//!   operation Deposit (c: Customer, a: Account, d: Dollars)
//!     returns OK (new_balance: Dollars)
//!     returns Error (reason: Text);
//!   operation Withdraw (c: Customer, a: Account, d: Dollars)
//!     returns OK (new_balance: Dollars)
//!     returns NotToday (today: Dollars, daily_limit: Dollars)
//!     returns Error (reason: Text);
//! }
//! ```
//!
//! [`parse_interface_type`] accepts exactly this notation (plus
//! `announcement` for operations without terminations) and produces an
//! [`OperationalSignature`]. Type names map to data types: `Int`/
//! `Dollars`/`Customer`/`Account` are integers, `Float`/`Rate` floats,
//! `Text`/`String` text, `Bool` booleans, `Bytes` blobs, and `ref<T>` an
//! interface reference to `T`.

use std::fmt;

use rmodp_core::dtype::DataType;

use crate::signature::{OperationalSignature, TerminationSignature};

/// A notation parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotationError {
    /// Byte offset of the problem.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for NotationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "notation error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for NotationError {}

struct P<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> P<'a> {
    fn err(&self, message: impl Into<String>) -> NotationError {
        NotationError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        loop {
            let before = self.pos;
            while self.rest().starts_with([' ', '\t', '\n', '\r']) {
                self.pos += 1;
            }
            // Line comments.
            if self.rest().starts_with("//") {
                while !self.rest().is_empty() && !self.rest().starts_with('\n') {
                    self.pos += 1;
                }
            }
            if self.pos == before {
                return;
            }
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), NotationError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.err(format!("expected {token:?}")))
        }
    }

    /// Eats a keyword: like `eat`, but the next char must not continue an
    /// identifier.
    fn eat_keyword(&mut self, word: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(word) {
            let next = self.rest()[word.len()..].chars().next();
            if !next.is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
                self.pos += word.len();
                return true;
            }
        }
        false
    }

    fn ident(&mut self) -> Result<String, NotationError> {
        self.skip_ws();
        let start = self.pos;
        let mut chars = self.rest().chars();
        match chars.next() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' => {
                self.pos += 1;
            }
            _ => return Err(self.err("expected identifier")),
        }
        while self
            .rest()
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            self.pos += 1;
        }
        Ok(self.src[start..self.pos].to_owned())
    }

    fn data_type(&mut self) -> Result<DataType, NotationError> {
        if self.eat_keyword("ref") {
            self.expect("<")?;
            let name = self.ident()?;
            self.expect(">")?;
            return Ok(DataType::Ref(Some(name)));
        }
        let name = self.ident()?;
        Ok(match name.as_str() {
            "Int" | "Dollars" | "Customer" | "Account" | "Count" => DataType::Int,
            "Float" | "Rate" | "Real" => DataType::Float,
            "Text" | "String" => DataType::Text,
            "Bool" | "Boolean" => DataType::Bool,
            "Bytes" | "Blob" => DataType::Blob,
            "Any" => DataType::Any,
            other => {
                // Unknown names are treated as opaque interface refs —
                // matching the paper's loose use of domain names.
                DataType::Ref(Some(other.to_owned()))
            }
        })
    }

    /// `( name: Type, name: Type, ... )` — possibly empty.
    fn param_list(&mut self) -> Result<Vec<(String, DataType)>, NotationError> {
        self.expect("(")?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.eat(")") {
            return Ok(out);
        }
        loop {
            let name = self.ident()?;
            self.expect(":")?;
            let dt = self.data_type()?;
            if out.iter().any(|(n, _)| *n == name) {
                return Err(self.err(format!("duplicate parameter {name}")));
            }
            out.push((name, dt));
            if self.eat(",") {
                continue;
            }
            self.expect(")")?;
            return Ok(out);
        }
    }
}

/// Parses one interface type written in the §5.1 notation into an
/// [`OperationalSignature`].
///
/// # Errors
///
/// Returns a [`NotationError`] with a byte offset on malformed input.
pub fn parse_interface_type(src: &str) -> Result<OperationalSignature, NotationError> {
    let mut p = P { src, pos: 0 };
    let name = p.ident()?;
    p.expect("=")?;
    if !p.eat_keyword("Interface") {
        return Err(p.err("expected 'Interface'"));
    }
    if !p.eat_keyword("Type") {
        return Err(p.err("expected 'Type'"));
    }
    p.expect("{")?;

    let mut sig = OperationalSignature::new(name);
    loop {
        p.skip_ws();
        if p.eat("}") {
            break;
        }
        let is_announcement = if p.eat_keyword("operation") {
            false
        } else if p.eat_keyword("announcement") {
            true
        } else {
            return Err(p.err("expected 'operation', 'announcement' or '}'"));
        };
        let op_name = p.ident()?;
        if sig.operation(&op_name).is_some() {
            return Err(p.err(format!("duplicate operation {op_name}")));
        }
        let params = p.param_list()?;
        if is_announcement {
            p.expect(";")?;
            sig = sig.announcement(op_name, params);
            continue;
        }
        let mut terminations = Vec::new();
        while p.eat_keyword("returns") {
            let term_name = p.ident()?;
            if terminations
                .iter()
                .any(|t: &TerminationSignature| t.name == term_name)
            {
                return Err(p.err(format!("duplicate termination {term_name}")));
            }
            let results = p.param_list()?;
            terminations.push(TerminationSignature::new(term_name, results));
        }
        if terminations.is_empty() {
            return Err(p.err(
                "an operation needs at least one 'returns' clause \
                              (use 'announcement' for none)",
            ));
        }
        p.expect(";")?;
        sig = sig.interrogation(op_name, params, terminations);
    }
    p.skip_ws();
    if p.pos != src.len() {
        return Err(p.err("trailing input after interface type"));
    }
    Ok(sig)
}

/// The paper's BankTeller definition, verbatim.
pub const BANK_TELLER_NOTATION: &str = r#"
BankTeller = Interface Type {
  operation Deposit (c: Customer, a: Account, d: Dollars)
    returns OK (new_balance: Dollars)
    returns Error (reason: Text);
  operation Withdraw (c: Customer, a: Account, d: Dollars)
    returns OK (new_balance: Dollars)
    returns NotToday (today: Dollars, daily_limit: Dollars)
    returns Error (reason: Text);
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::{bank_teller_signature, OperationKind};
    use crate::subtype::is_operational_subtype;

    #[test]
    fn parses_the_papers_bank_teller_verbatim() {
        let parsed = parse_interface_type(BANK_TELLER_NOTATION).unwrap();
        // The parsed notation and the hand-built signature are mutually
        // substitutable (structurally equivalent).
        let built = bank_teller_signature();
        assert!(is_operational_subtype(&parsed, &built).is_ok());
        assert!(is_operational_subtype(&built, &parsed).is_ok());
        assert_eq!(parsed.name(), "BankTeller");
        assert_eq!(parsed.operations().len(), 2);
        let withdraw = parsed.operation("Withdraw").unwrap();
        match &withdraw.kind {
            OperationKind::Interrogation { terminations } => {
                let names: Vec<&str> = terminations.iter().map(|t| t.name.as_str()).collect();
                assert_eq!(names, ["OK", "NotToday", "Error"]);
            }
            _ => panic!("interrogation expected"),
        }
    }

    #[test]
    fn announcements_and_empty_params() {
        let sig = parse_interface_type(
            "Logger = Interface Type {
               announcement Log (line: Text);
               operation Flush ()
                 returns OK ();
             }",
        )
        .unwrap();
        assert_eq!(
            sig.operation("Log").unwrap().kind,
            OperationKind::Announcement
        );
        assert!(sig.operation("Flush").unwrap().termination("OK").is_some());
    }

    #[test]
    fn ref_types_and_domain_names() {
        let sig = parse_interface_type(
            "Factory = Interface Type {
               operation Make (kind: Text)
                 returns OK (made: ref<BankTeller>)
                 returns Error (reason: Text);
             }",
        )
        .unwrap();
        let ok = sig.operation("Make").unwrap().termination("OK").unwrap();
        assert_eq!(ok.results[0].1, DataType::Ref(Some("BankTeller".into())));
        // Unknown bare names also become interface refs.
        let sig =
            parse_interface_type("T = Interface Type { announcement F (x: Widget); }").unwrap();
        assert_eq!(
            sig.operation("F").unwrap().params[0].1,
            DataType::Ref(Some("Widget".into()))
        );
    }

    #[test]
    fn comments_are_tolerated() {
        let sig = parse_interface_type(
            "// the teller
             T = Interface Type {
               // deposits only
               announcement Deposit (d: Dollars); // money in
             }",
        )
        .unwrap();
        assert_eq!(sig.operations().len(), 1);
    }

    #[test]
    fn errors_carry_offsets() {
        for (src, expect) in [
            ("", "identifier"),
            ("X = Interface {", "'Type'"),
            ("X = Interface Type { operation f () ; }", "returns"),
            ("X = Interface Type { operation f (a: Int, a: Int) returns OK (); }", "duplicate parameter"),
            (
                "X = Interface Type { operation f () returns OK () returns OK (); }",
                "duplicate termination",
            ),
            ("X = Interface Type { operation f () returns OK (); } trailing", "trailing"),
            ("X = Interface Type { banana }", "expected 'operation'"),
            (
                "X = Interface Type { operation f () returns OK (); operation f () returns OK (); }",
                "duplicate operation",
            ),
        ] {
            let err = parse_interface_type(src).unwrap_err();
            assert!(err.message.contains(expect), "{src:?}: {err}");
        }
    }

    #[test]
    fn identifier_prefix_keywords_do_not_confuse() {
        // "operations" as a parameter name must not be read as the
        // keyword "operation".
        let sig = parse_interface_type("T = Interface Type { announcement F (operations: Int); }")
            .unwrap();
        assert_eq!(sig.operation("F").unwrap().params[0].0, "operations");
    }
}
