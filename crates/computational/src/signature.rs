//! Interface signatures: operational, stream and signal (§5.1).

use std::collections::BTreeMap;
use std::fmt;

use rmodp_core::dtype::{DataType, TypeError};
use rmodp_core::value::Value;

/// A termination of an interrogation: a named outcome with typed results
/// — e.g. `returns OK (new_balance: Dollars)` or
/// `returns NotToday (today: Dollars, daily_limit: Dollars)`.
#[derive(Debug, Clone, PartialEq)]
pub struct TerminationSignature {
    /// The termination name.
    pub name: String,
    /// The named, typed results it carries.
    pub results: Vec<(String, DataType)>,
}

impl TerminationSignature {
    /// Creates a termination signature.
    pub fn new<S: Into<String>, I: IntoIterator<Item = (S, DataType)>>(
        name: impl Into<String>,
        results: I,
    ) -> Self {
        Self {
            name: name.into(),
            results: results.into_iter().map(|(n, t)| (n.into(), t)).collect(),
        }
    }

    /// The result type as a record.
    pub fn result_type(&self) -> DataType {
        DataType::record(self.results.iter().map(|(n, t)| (n.clone(), t.clone())))
    }
}

/// Whether an operation returns a termination.
#[derive(Debug, Clone, PartialEq)]
pub enum OperationKind {
    /// Fire-and-forget: no termination is returned (§5.1).
    Announcement,
    /// Returns exactly one of the declared terminations.
    Interrogation {
        /// The possible terminations.
        terminations: Vec<TerminationSignature>,
    },
}

/// A named operation with typed parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct OperationSignature {
    /// The operation name.
    pub name: String,
    /// The named, typed parameters.
    pub params: Vec<(String, DataType)>,
    /// Announcement or interrogation (with terminations).
    pub kind: OperationKind,
}

impl OperationSignature {
    /// The parameter type as a record.
    pub fn param_type(&self) -> DataType {
        DataType::record(self.params.iter().map(|(n, t)| (n.clone(), t.clone())))
    }

    /// Checks an argument record against the parameter list.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] for missing or ill-typed arguments.
    pub fn check_args(&self, args: &Value) -> Result<(), TypeError> {
        self.param_type().check(args)
    }

    /// Finds a termination by name (interrogations only).
    pub fn termination(&self, name: &str) -> Option<&TerminationSignature> {
        match &self.kind {
            OperationKind::Announcement => None,
            OperationKind::Interrogation { terminations } => {
                terminations.iter().find(|t| t.name == name)
            }
        }
    }

    /// Checks a termination value against the declared terminations.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] if the termination name is undeclared or the
    /// results are ill-typed.
    pub fn check_termination(&self, term: &Termination) -> Result<(), TypeError> {
        match self.termination(&term.name) {
            Some(sig) => sig.result_type().check(&term.results),
            None => Err(TypeError {
                path: String::new(),
                expected: format!("a declared termination of {}", self.name),
                got: format!("termination {:?}", term.name),
            }),
        }
    }
}

/// An operational interface signature: a named set of operations providing
/// the client–server (RPC) model of distributed computing.
#[derive(Debug, Clone, PartialEq)]
pub struct OperationalSignature {
    name: String,
    operations: BTreeMap<String, OperationSignature>,
}

impl OperationalSignature {
    /// Creates an empty operational signature.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            operations: BTreeMap::new(),
        }
    }

    /// Adds an interrogation (builder style; replaces a same-named
    /// operation).
    pub fn interrogation<S: Into<String>, I: IntoIterator<Item = (S, DataType)>>(
        mut self,
        name: impl Into<String>,
        params: I,
        terminations: Vec<TerminationSignature>,
    ) -> Self {
        let name = name.into();
        self.operations.insert(
            name.clone(),
            OperationSignature {
                name,
                params: params.into_iter().map(|(n, t)| (n.into(), t)).collect(),
                kind: OperationKind::Interrogation { terminations },
            },
        );
        self
    }

    /// Adds an announcement (builder style; replaces a same-named
    /// operation).
    pub fn announcement<S: Into<String>, I: IntoIterator<Item = (S, DataType)>>(
        mut self,
        name: impl Into<String>,
        params: I,
    ) -> Self {
        let name = name.into();
        self.operations.insert(
            name.clone(),
            OperationSignature {
                name,
                params: params.into_iter().map(|(n, t)| (n.into(), t)).collect(),
                kind: OperationKind::Announcement,
            },
        );
        self
    }

    /// The signature name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operations, keyed by name.
    pub fn operations(&self) -> &BTreeMap<String, OperationSignature> {
        &self.operations
    }

    /// Looks up one operation.
    pub fn operation(&self, name: &str) -> Option<&OperationSignature> {
        self.operations.get(name)
    }
}

/// The direction of a stream flow, from the interface owner's point of
/// view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowDirection {
    /// The owner produces this flow.
    Produced,
    /// The owner consumes this flow.
    Consumed,
}

/// One (logically continuous) flow in a stream interface.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSignature {
    /// The flow name (e.g. `"audio"`).
    pub name: String,
    /// The element type carried by the flow.
    pub element: DataType,
    /// Produced or consumed by the interface owner.
    pub direction: FlowDirection,
}

/// A stream interface signature: several flows can be grouped in a single
/// interface, e.g. an audio stream and a video stream (§5.1).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSignature {
    name: String,
    flows: BTreeMap<String, FlowSignature>,
}

impl StreamSignature {
    /// Creates an empty stream signature.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            flows: BTreeMap::new(),
        }
    }

    /// Adds a flow (builder style; replaces a same-named flow).
    pub fn flow(
        mut self,
        name: impl Into<String>,
        element: DataType,
        direction: FlowDirection,
    ) -> Self {
        let name = name.into();
        self.flows.insert(
            name.clone(),
            FlowSignature {
                name,
                element,
                direction,
            },
        );
        self
    }

    /// The signature name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The flows, keyed by name.
    pub fn flows(&self) -> &BTreeMap<String, FlowSignature> {
        &self.flows
    }
}

/// The direction of a signal from the interface owner's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalDirection {
    /// The owner initiates (emits) this signal.
    Initiated,
    /// The owner responds to (receives) this signal.
    Received,
}

/// One low-level signal — the OSI service primitives (REQUEST, INDICATE,
/// RESPONSE, CONFIRM) are examples (§5.1).
#[derive(Debug, Clone, PartialEq)]
pub struct SignalDef {
    /// The signal name.
    pub name: String,
    /// The typed parameters carried by the signal.
    pub params: Vec<(String, DataType)>,
    /// Initiated or received by the interface owner.
    pub direction: SignalDirection,
}

/// A signal interface signature.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalSignature {
    name: String,
    signals: BTreeMap<String, SignalDef>,
}

impl SignalSignature {
    /// Creates an empty signal signature.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            signals: BTreeMap::new(),
        }
    }

    /// Adds a signal (builder style; replaces a same-named signal).
    pub fn signal<S: Into<String>, I: IntoIterator<Item = (S, DataType)>>(
        mut self,
        name: impl Into<String>,
        params: I,
        direction: SignalDirection,
    ) -> Self {
        let name = name.into();
        self.signals.insert(
            name.clone(),
            SignalDef {
                name,
                params: params.into_iter().map(|(n, t)| (n.into(), t)).collect(),
                direction,
            },
        );
        self
    }

    /// The signature name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The signals, keyed by name.
    pub fn signals(&self) -> &BTreeMap<String, SignalDef> {
        &self.signals
    }
}

/// An interface signature of any of the three kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum InterfaceSignature {
    /// Client–server operations.
    Operational(OperationalSignature),
    /// Producer–consumer flows.
    Stream(StreamSignature),
    /// Low-level signals.
    Signal(SignalSignature),
}

impl InterfaceSignature {
    /// The signature name.
    pub fn name(&self) -> &str {
        match self {
            InterfaceSignature::Operational(s) => s.name(),
            InterfaceSignature::Stream(s) => s.name(),
            InterfaceSignature::Signal(s) => s.name(),
        }
    }

    /// A short label for the signature kind.
    pub fn kind(&self) -> &'static str {
        match self {
            InterfaceSignature::Operational(_) => "operational",
            InterfaceSignature::Stream(_) => "stream",
            InterfaceSignature::Signal(_) => "signal",
        }
    }
}

impl fmt::Display for InterfaceSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} interface {}", self.kind(), self.name())
    }
}

/// A runtime invocation of an operation: the request side of an
/// interaction.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// The operation name.
    pub operation: String,
    /// The argument record.
    pub args: Value,
}

impl Invocation {
    /// Creates an invocation.
    pub fn new(operation: impl Into<String>, args: Value) -> Self {
        Self {
            operation: operation.into(),
            args,
        }
    }
}

/// A runtime termination: the reply side of an interrogation.
#[derive(Debug, Clone, PartialEq)]
pub struct Termination {
    /// The termination name (e.g. `"OK"`, `"NotToday"`, `"Error"`).
    pub name: String,
    /// The result record.
    pub results: Value,
}

impl Termination {
    /// Creates a termination.
    pub fn new(name: impl Into<String>, results: Value) -> Self {
        Self {
            name: name.into(),
            results,
        }
    }

    /// The conventional success termination.
    pub fn ok(results: Value) -> Self {
        Self::new("OK", results)
    }

    /// The conventional failure termination carrying a reason.
    pub fn error(reason: impl Into<String>) -> Self {
        Self::new(
            "Error",
            Value::record([("reason", Value::text(reason.into()))]),
        )
    }

    /// Whether this is the conventional success termination.
    pub fn is_ok(&self) -> bool {
        self.name == "OK"
    }
}

/// The paper's BankTeller signature (§5.1), used widely in tests and
/// benchmarks:
///
/// ```text
/// BankTeller = Interface Type {
///   operation Deposit  (c: Customer, a: Account, d: Dollars)
///     returns OK (new_balance: Dollars) | Error (reason: Text);
///   operation Withdraw (c: Customer, a: Account, d: Dollars)
///     returns OK (new_balance: Dollars)
///           | NotToday (today: Dollars, daily_limit: Dollars)
///           | Error (reason: Text);
/// }
/// ```
pub fn bank_teller_signature() -> OperationalSignature {
    let dollars = DataType::Int;
    let common_params = [
        ("c", DataType::Int),
        ("a", DataType::Int),
        ("d", dollars.clone()),
    ];
    OperationalSignature::new("BankTeller")
        .interrogation(
            "Deposit",
            common_params.clone(),
            vec![
                TerminationSignature::new("OK", [("new_balance", dollars.clone())]),
                TerminationSignature::new("Error", [("reason", DataType::Text)]),
            ],
        )
        .interrogation(
            "Withdraw",
            common_params,
            vec![
                TerminationSignature::new("OK", [("new_balance", dollars.clone())]),
                TerminationSignature::new(
                    "NotToday",
                    [("today", dollars.clone()), ("daily_limit", dollars)],
                ),
                TerminationSignature::new("Error", [("reason", DataType::Text)]),
            ],
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_teller_has_papers_operations() {
        let sig = bank_teller_signature();
        assert_eq!(sig.name(), "BankTeller");
        assert_eq!(sig.operations().len(), 2);
        let withdraw = sig.operation("Withdraw").unwrap();
        match &withdraw.kind {
            OperationKind::Interrogation { terminations } => {
                let names: Vec<&str> = terminations.iter().map(|t| t.name.as_str()).collect();
                assert_eq!(names, ["OK", "NotToday", "Error"]);
            }
            _ => panic!("Withdraw must be an interrogation"),
        }
    }

    #[test]
    fn check_args_validates_parameter_record() {
        let sig = bank_teller_signature();
        let dep = sig.operation("Deposit").unwrap();
        let good = Value::record([
            ("c", Value::Int(1)),
            ("a", Value::Int(2)),
            ("d", Value::Int(100)),
        ]);
        assert!(dep.check_args(&good).is_ok());
        let missing = Value::record([("c", Value::Int(1))]);
        assert!(dep.check_args(&missing).is_err());
        let wrong = Value::record([
            ("c", Value::Int(1)),
            ("a", Value::Int(2)),
            ("d", Value::text("lots")),
        ]);
        assert!(dep.check_args(&wrong).is_err());
    }

    #[test]
    fn check_termination_validates_name_and_results() {
        let sig = bank_teller_signature();
        let w = sig.operation("Withdraw").unwrap();
        let ok = Termination::ok(Value::record([("new_balance", Value::Int(5))]));
        assert!(w.check_termination(&ok).is_ok());
        let not_today = Termination::new(
            "NotToday",
            Value::record([("today", Value::Int(400)), ("daily_limit", Value::Int(500))]),
        );
        assert!(w.check_termination(&not_today).is_ok());
        let undeclared = Termination::new("Maybe", Value::record::<&str, _>([]));
        assert!(w.check_termination(&undeclared).is_err());
        let bad_results = Termination::ok(Value::record::<&str, _>([]));
        assert!(w.check_termination(&bad_results).is_err());
    }

    #[test]
    fn announcements_have_no_terminations() {
        let sig =
            OperationalSignature::new("Logger").announcement("Log", [("line", DataType::Text)]);
        let op = sig.operation("Log").unwrap();
        assert_eq!(op.kind, OperationKind::Announcement);
        assert!(op.termination("OK").is_none());
    }

    #[test]
    fn stream_signature_groups_flows() {
        let av = StreamSignature::new("AudioVideo")
            .flow("audio", DataType::Blob, FlowDirection::Produced)
            .flow("video", DataType::Blob, FlowDirection::Produced)
            .flow("control", DataType::Text, FlowDirection::Consumed);
        assert_eq!(av.flows().len(), 3);
        assert_eq!(av.flows()["audio"].direction, FlowDirection::Produced);
    }

    #[test]
    fn signal_signature_models_osi_primitives() {
        let sig = SignalSignature::new("OsiService")
            .signal(
                "request",
                [("sdu", DataType::Blob)],
                SignalDirection::Received,
            )
            .signal(
                "indicate",
                [("sdu", DataType::Blob)],
                SignalDirection::Initiated,
            )
            .signal(
                "response",
                [("sdu", DataType::Blob)],
                SignalDirection::Received,
            )
            .signal(
                "confirm",
                [("sdu", DataType::Blob)],
                SignalDirection::Initiated,
            );
        assert_eq!(sig.signals().len(), 4);
    }

    #[test]
    fn interface_signature_kind_and_display() {
        let op = InterfaceSignature::Operational(bank_teller_signature());
        assert_eq!(op.kind(), "operational");
        assert_eq!(op.name(), "BankTeller");
        assert_eq!(op.to_string(), "operational interface BankTeller");
        let st = InterfaceSignature::Stream(StreamSignature::new("S"));
        assert_eq!(st.kind(), "stream");
        let si = InterfaceSignature::Signal(SignalSignature::new("G"));
        assert_eq!(si.kind(), "signal");
    }

    #[test]
    fn termination_helpers() {
        assert!(Termination::ok(Value::Null).is_ok());
        let e = Termination::error("no funds");
        assert!(!e.is_ok());
        assert_eq!(e.results.field("reason"), Some(&Value::text("no funds")));
    }
}
