//! Structural interface subtyping (§5.1.1).
//!
//! "Subtypes of an interface type are substitutable for the parent type
//! (or any supertype)." Substitutability dictates the variance rules:
//!
//! - **operations**: the subtype must offer every operation of the
//!   supertype (width), with the same kind (announcement vs
//!   interrogation);
//! - **parameters**: contravariant — the subtype must *accept* every
//!   argument record legal for the supertype, so each supertype parameter
//!   type must be a data subtype of the subtype's parameter type, and the
//!   subtype may not demand extra parameters;
//! - **terminations**: covariant — the subtype may only *emit*
//!   terminations the supertype declares, and each result record must be a
//!   data subtype of the supertype's;
//! - **flows**: produced flows are covariant, consumed flows are
//!   contravariant; the subtype must offer at least the supertype's flows;
//! - **signals**: initiated signals are covariant in their parameters,
//!   received signals contravariant.

use std::fmt;

use rmodp_core::dtype::DataType;

use crate::signature::{
    FlowDirection, InterfaceSignature, OperationKind, OperationalSignature, SignalDirection,
    SignalSignature, StreamSignature,
};

/// Why one signature is not a subtype of another.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubtypeViolation {
    /// Where in the signatures the problem lies (e.g.
    /// `"operation Withdraw, parameter d"`).
    pub at: String,
    /// What went wrong.
    pub reason: String,
}

impl SubtypeViolation {
    fn new(at: impl Into<String>, reason: impl Into<String>) -> Self {
        Self {
            at: at.into(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for SubtypeViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "not a subtype at {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for SubtypeViolation {}

/// A hook resolving named interface-reference subtyping, normally backed
/// by the type repository. `resolver(a, b)` answers "is interface type `a`
/// a subtype of interface type `b`?".
pub type RefResolver<'a> = &'a dyn Fn(&str, &str) -> bool;

fn names_equal(a: &str, b: &str) -> bool {
    a == b
}

/// Checks whether `sub` is substitutable for `sup`.
///
/// # Errors
///
/// Returns the first [`SubtypeViolation`] found, with a path naming the
/// offending operation/flow/signal and parameter.
pub fn is_subtype(
    sub: &InterfaceSignature,
    sup: &InterfaceSignature,
) -> Result<(), SubtypeViolation> {
    is_subtype_with(sub, sup, &names_equal)
}

/// [`is_subtype`] with a resolver for nested interface references.
pub fn is_subtype_with(
    sub: &InterfaceSignature,
    sup: &InterfaceSignature,
    resolver: RefResolver<'_>,
) -> Result<(), SubtypeViolation> {
    match (sub, sup) {
        (InterfaceSignature::Operational(a), InterfaceSignature::Operational(b)) => {
            is_operational_subtype_with(a, b, resolver)
        }
        (InterfaceSignature::Stream(a), InterfaceSignature::Stream(b)) => {
            is_stream_subtype_with(a, b, resolver)
        }
        (InterfaceSignature::Signal(a), InterfaceSignature::Signal(b)) => {
            is_signal_subtype_with(a, b, resolver)
        }
        (a, b) => Err(SubtypeViolation::new(
            "signature kind",
            format!(
                "{} interface cannot substitute for {} interface",
                a.kind(),
                b.kind()
            ),
        )),
    }
}

/// Operational subtyping with name-equality reference resolution.
///
/// # Errors
///
/// See [`is_subtype`].
pub fn is_operational_subtype(
    sub: &OperationalSignature,
    sup: &OperationalSignature,
) -> Result<(), SubtypeViolation> {
    is_operational_subtype_with(sub, sup, &names_equal)
}

/// Operational subtyping with a custom reference resolver.
///
/// # Errors
///
/// See [`is_subtype`].
pub fn is_operational_subtype_with(
    sub: &OperationalSignature,
    sup: &OperationalSignature,
    resolver: RefResolver<'_>,
) -> Result<(), SubtypeViolation> {
    for (name, sup_op) in sup.operations() {
        let at = |detail: &str| format!("operation {name}{detail}");
        let sub_op = sub
            .operation(name)
            .ok_or_else(|| SubtypeViolation::new(at(""), "missing in subtype".to_owned()))?;

        // Parameters: contravariant. The subtype must accept every argument
        // record that is legal for the supertype, and must not demand
        // parameters the supertype does not supply.
        for (pname, sub_t) in &sub_op.params {
            match sup_op.params.iter().find(|(n, _)| n == pname) {
                Some((_, sup_t)) => {
                    if !sup_t.is_subtype_with(sub_t, resolver) {
                        return Err(SubtypeViolation::new(
                            at(&format!(", parameter {pname}")),
                            format!(
                                "subtype demands {sub_t} but supertype supplies {sup_t} \
                                 (parameters are contravariant)"
                            ),
                        ));
                    }
                }
                None => {
                    return Err(SubtypeViolation::new(
                        at(&format!(", parameter {pname}")),
                        "subtype demands a parameter the supertype does not declare".to_owned(),
                    ))
                }
            }
        }

        // Kind and terminations: covariant.
        match (&sub_op.kind, &sup_op.kind) {
            (OperationKind::Announcement, OperationKind::Announcement) => {}
            (
                OperationKind::Interrogation {
                    terminations: sub_terms,
                },
                OperationKind::Interrogation {
                    terminations: sup_terms,
                },
            ) => {
                for sub_term in sub_terms {
                    let sup_term = sup_terms
                        .iter()
                        .find(|t| t.name == sub_term.name)
                        .ok_or_else(|| {
                            SubtypeViolation::new(
                                at(&format!(", termination {}", sub_term.name)),
                                "subtype may emit a termination the supertype does not declare"
                                    .to_owned(),
                            )
                        })?;
                    let sub_rt = sub_term.result_type();
                    let sup_rt = sup_term.result_type();
                    if !sub_rt.is_subtype_with(&sup_rt, resolver) {
                        return Err(SubtypeViolation::new(
                            at(&format!(", termination {}", sub_term.name)),
                            format!(
                                "results {sub_rt} are not a subtype of {sup_rt} \
                                 (terminations are covariant)"
                            ),
                        ));
                    }
                }
            }
            (sub_k, sup_k) => {
                let label = |k: &OperationKind| match k {
                    OperationKind::Announcement => "announcement",
                    OperationKind::Interrogation { .. } => "interrogation",
                };
                return Err(SubtypeViolation::new(
                    at(""),
                    format!("{} cannot substitute for {}", label(sub_k), label(sup_k)),
                ));
            }
        }
    }
    Ok(())
}

/// Stream subtyping with a custom reference resolver.
///
/// # Errors
///
/// See [`is_subtype`].
pub fn is_stream_subtype_with(
    sub: &StreamSignature,
    sup: &StreamSignature,
    resolver: RefResolver<'_>,
) -> Result<(), SubtypeViolation> {
    for (name, sup_flow) in sup.flows() {
        let at = format!("flow {name}");
        let sub_flow = sub
            .flows()
            .get(name)
            .ok_or_else(|| SubtypeViolation::new(at.clone(), "missing in subtype".to_owned()))?;
        if sub_flow.direction != sup_flow.direction {
            return Err(SubtypeViolation::new(
                at,
                "flow direction differs".to_owned(),
            ));
        }
        let fits = match sup_flow.direction {
            FlowDirection::Produced => sub_flow
                .element
                .is_subtype_with(&sup_flow.element, resolver),
            FlowDirection::Consumed => sup_flow
                .element
                .is_subtype_with(&sub_flow.element, resolver),
        };
        if !fits {
            let variance = match sup_flow.direction {
                FlowDirection::Produced => "produced flows are covariant",
                FlowDirection::Consumed => "consumed flows are contravariant",
            };
            return Err(SubtypeViolation::new(
                at,
                format!(
                    "element {} does not fit {} ({variance})",
                    sub_flow.element, sup_flow.element
                ),
            ));
        }
    }
    Ok(())
}

/// Signal subtyping with a custom reference resolver.
///
/// # Errors
///
/// See [`is_subtype`].
pub fn is_signal_subtype_with(
    sub: &SignalSignature,
    sup: &SignalSignature,
    resolver: RefResolver<'_>,
) -> Result<(), SubtypeViolation> {
    for (name, sup_sig) in sup.signals() {
        let at = format!("signal {name}");
        let sub_sig = sub
            .signals()
            .get(name)
            .ok_or_else(|| SubtypeViolation::new(at.clone(), "missing in subtype".to_owned()))?;
        if sub_sig.direction != sup_sig.direction {
            return Err(SubtypeViolation::new(
                at,
                "signal direction differs".to_owned(),
            ));
        }
        let sub_pt = DataType::record(sub_sig.params.iter().map(|(n, t)| (n.clone(), t.clone())));
        let sup_pt = DataType::record(sup_sig.params.iter().map(|(n, t)| (n.clone(), t.clone())));
        let fits = match sup_sig.direction {
            SignalDirection::Initiated => sub_pt.is_subtype_with(&sup_pt, resolver),
            SignalDirection::Received => sup_pt.is_subtype_with(&sub_pt, resolver),
        };
        if !fits {
            return Err(SubtypeViolation::new(
                at,
                "signal parameters do not fit the required variance".to_owned(),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::{bank_teller_signature, TerminationSignature};
    use rmodp_core::dtype::DataType;

    fn no_params() -> [(&'static str, DataType); 0] {
        []
    }

    /// Figure 3's lattice: BankManager and LoansOfficer extend BankTeller.
    fn bank_manager() -> OperationalSignature {
        let mut sig = bank_teller_signature();
        // Rebuild under the BankManager name with the extra operation.
        let mut manager = OperationalSignature::new("BankManager");
        for (name, op) in sig.operations().clone() {
            manager = match op.kind {
                OperationKind::Announcement => manager.announcement(name, op.params),
                OperationKind::Interrogation { terminations } => {
                    manager.interrogation(name, op.params, terminations)
                }
            };
        }
        sig = manager.interrogation(
            "CreateAccount",
            [("c", DataType::Int)],
            vec![TerminationSignature::new("OK", [("a", DataType::Int)])],
        );
        sig
    }

    fn loans_officer() -> OperationalSignature {
        let mut officer = OperationalSignature::new("LoansOfficer");
        for (name, op) in bank_teller_signature().operations().clone() {
            officer = match op.kind {
                OperationKind::Announcement => officer.announcement(name, op.params),
                OperationKind::Interrogation { terminations } => {
                    officer.interrogation(name, op.params, terminations)
                }
            };
        }
        officer.interrogation(
            "ApproveLoan",
            [("c", DataType::Int), ("amount", DataType::Int)],
            vec![
                TerminationSignature::new("OK", no_params()),
                TerminationSignature::new("Declined", [("reason", DataType::Text)]),
            ],
        )
    }

    #[test]
    fn figure3_lattice_holds() {
        let teller = bank_teller_signature();
        let manager = bank_manager();
        let officer = loans_officer();
        // "either can substitute for a BankTeller".
        assert!(is_operational_subtype(&manager, &teller).is_ok());
        assert!(is_operational_subtype(&officer, &teller).is_ok());
        // "Neither a BankTeller nor a LoansOfficer can replace a
        // BankManager, as neither can provide the CreateAccount operation."
        let err = is_operational_subtype(&teller, &manager).unwrap_err();
        assert!(err.at.contains("CreateAccount"), "{err}");
        let err = is_operational_subtype(&officer, &manager).unwrap_err();
        assert!(err.at.contains("CreateAccount"), "{err}");
        // And a manager cannot replace a loans officer.
        assert!(is_operational_subtype(&manager, &officer).is_err());
        // Reflexivity.
        assert!(is_operational_subtype(&teller, &teller).is_ok());
    }

    #[test]
    fn parameters_are_contravariant() {
        // Supertype takes Int; a subtype accepting Float (wider) is fine.
        let sup = OperationalSignature::new("S").announcement("f", [("x", DataType::Int)]);
        let sub_wider = OperationalSignature::new("T").announcement("f", [("x", DataType::Float)]);
        assert!(is_operational_subtype(&sub_wider, &sup).is_ok());
        // A subtype demanding a *narrower* parameter is not substitutable.
        let sup_f = OperationalSignature::new("S").announcement("f", [("x", DataType::Float)]);
        let sub_narrow = OperationalSignature::new("T").announcement("f", [("x", DataType::Int)]);
        let err = is_operational_subtype(&sub_narrow, &sup_f).unwrap_err();
        assert!(err.reason.contains("contravariant"), "{err}");
    }

    #[test]
    fn extra_demanded_parameters_break_substitutability() {
        let sup = OperationalSignature::new("S").announcement("f", [("x", DataType::Int)]);
        let sub = OperationalSignature::new("T")
            .announcement("f", [("x", DataType::Int), ("y", DataType::Int)]);
        let err = is_operational_subtype(&sub, &sup).unwrap_err();
        assert!(err.at.contains("parameter y"), "{err}");
        // The subtype ignoring a supplied parameter is fine.
        let sub_fewer = OperationalSignature::new("T").announcement("f", no_params());
        assert!(is_operational_subtype(&sub_fewer, &sup).is_ok());
    }

    #[test]
    fn terminations_are_covariant() {
        let sup = OperationalSignature::new("S").interrogation(
            "f",
            no_params(),
            vec![
                TerminationSignature::new("OK", [("r", DataType::Float)]),
                TerminationSignature::new("Error", [("reason", DataType::Text)]),
            ],
        );
        // Subtype emits fewer terminations with narrower results: fine.
        let sub = OperationalSignature::new("T").interrogation(
            "f",
            no_params(),
            vec![TerminationSignature::new("OK", [("r", DataType::Int)])],
        );
        assert!(is_operational_subtype(&sub, &sup).is_ok());
        // Subtype emitting an undeclared termination: not substitutable.
        let sub_extra = OperationalSignature::new("T").interrogation(
            "f",
            no_params(),
            vec![TerminationSignature::new("Maybe", no_params())],
        );
        let err = is_operational_subtype(&sub_extra, &sup).unwrap_err();
        assert!(err.at.contains("Maybe"), "{err}");
        // Subtype widening a result: not substitutable.
        let sub_wide = OperationalSignature::new("T").interrogation(
            "f",
            no_params(),
            vec![TerminationSignature::new("OK", [("r", DataType::Text)])],
        );
        assert!(is_operational_subtype(&sub_wide, &sup).is_err());
    }

    #[test]
    fn announcement_and_interrogation_do_not_mix() {
        let ann = OperationalSignature::new("A").announcement("f", no_params());
        let int = OperationalSignature::new("I").interrogation(
            "f",
            no_params(),
            vec![TerminationSignature::new("OK", no_params())],
        );
        assert!(is_operational_subtype(&ann, &int).is_err());
        assert!(is_operational_subtype(&int, &ann).is_err());
    }

    #[test]
    fn stream_variance() {
        use crate::signature::FlowDirection::*;
        let sup = StreamSignature::new("S")
            .flow("out", DataType::Float, Produced)
            .flow("in", DataType::Int, Consumed);
        // Producing narrower, consuming wider: substitutable.
        let sub = StreamSignature::new("T")
            .flow("out", DataType::Int, Produced)
            .flow("in", DataType::Float, Consumed)
            .flow("extra", DataType::Blob, Produced);
        assert!(is_stream_subtype_with(&sub, &sup, &|a, b| a == b).is_ok());
        // Producing wider: not substitutable.
        let bad = StreamSignature::new("T")
            .flow("out", DataType::Text, Produced)
            .flow("in", DataType::Int, Consumed);
        assert!(is_stream_subtype_with(&bad, &sup, &|a, b| a == b).is_err());
        // Direction flip: not substitutable.
        let flipped = StreamSignature::new("T")
            .flow("out", DataType::Int, Consumed)
            .flow("in", DataType::Int, Consumed);
        let err = is_stream_subtype_with(&flipped, &sup, &|a, b| a == b).unwrap_err();
        assert!(err.reason.contains("direction"), "{err}");
    }

    #[test]
    fn signal_variance() {
        use crate::signature::SignalDirection::*;
        let sup = SignalSignature::new("S")
            .signal("req", [("x", DataType::Int)], Received)
            .signal("cnf", [("y", DataType::Int)], Initiated);
        let sub = SignalSignature::new("T")
            .signal("req", [("x", DataType::Float)], Received)
            .signal("cnf", [("y", DataType::Int)], Initiated);
        assert!(is_signal_subtype_with(&sub, &sup, &|a, b| a == b).is_ok());
        let bad = SignalSignature::new("T")
            .signal("req", [("x", DataType::Int)], Initiated)
            .signal("cnf", [("y", DataType::Int)], Initiated);
        assert!(is_signal_subtype_with(&bad, &sup, &|a, b| a == b).is_err());
    }

    #[test]
    fn kinds_do_not_cross() {
        let op = InterfaceSignature::Operational(bank_teller_signature());
        let st = InterfaceSignature::Stream(StreamSignature::new("S"));
        let err = is_subtype(&op, &st).unwrap_err();
        assert!(err.reason.contains("cannot substitute"), "{err}");
    }

    #[test]
    fn resolver_enables_nested_interface_refs() {
        // Parameter carries an interface reference; the resolver knows the
        // nested subtype relationship.
        let sup = OperationalSignature::new("S")
            .announcement("use", [("t", DataType::Ref(Some("BankManager".into())))]);
        let sub = OperationalSignature::new("T")
            .announcement("use", [("t", DataType::Ref(Some("BankTeller".into())))]);
        // Contravariant: sub accepts any BankTeller ref, sup supplies
        // BankManager refs; fine iff BankManager <: BankTeller.
        let resolver = |a: &str, b: &str| a == "BankManager" && b == "BankTeller";
        assert!(is_operational_subtype_with(&sub, &sup, &resolver).is_ok());
        assert!(is_operational_subtype(&sub, &sup).is_err());
    }
}
