//! Computational objects: templates and instances.
//!
//! "A computational specification defines the objects within an ODP
//! system, the activities within those objects, and the interactions that
//! occur among objects" (§5). Objects encapsulate state, offer multiple
//! interfaces (Figure 2's bank branch offers a BankTeller and a
//! BankManager interface), and may be application objects or ODP
//! infrastructure objects such as a trader or type repository.

use std::fmt;

use rmodp_core::contract::QosRequirement;
use rmodp_core::id::{IdGen, InterfaceId, ObjectId};
use rmodp_core::value::Value;

use crate::binding::Causality;
use crate::signature::InterfaceSignature;

/// A template for one interface an object offers.
#[derive(Debug, Clone, PartialEq)]
pub struct InterfaceTemplate {
    /// The template name, unique within the object template.
    pub name: String,
    /// The interface signature.
    pub signature: InterfaceSignature,
    /// The role the owner plays at this interface.
    pub causality: Causality,
    /// What this interface requires of its environment (§5.3).
    pub environment: QosRequirement,
}

impl InterfaceTemplate {
    /// Creates a template, checking causality/signature consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ObjectError::CausalityMismatch`] if the causality does not
    /// apply to the signature kind (e.g. `Producer` on an operational
    /// signature).
    pub fn new(
        name: impl Into<String>,
        signature: InterfaceSignature,
        causality: Causality,
    ) -> Result<Self, ObjectError> {
        if !causality.applies_to(&signature) {
            return Err(ObjectError::CausalityMismatch {
                interface: name.into(),
                causality,
                kind: signature.kind(),
            });
        }
        Ok(Self {
            name: name.into(),
            signature,
            causality,
            environment: QosRequirement::none(),
        })
    }

    /// Builder: sets the environment contract requirement.
    pub fn with_environment(mut self, environment: QosRequirement) -> Self {
        self.environment = environment;
        self
    }
}

/// An error in an object or interface template.
#[derive(Debug, Clone, PartialEq)]
pub enum ObjectError {
    /// The causality does not fit the signature kind.
    CausalityMismatch {
        interface: String,
        causality: Causality,
        kind: &'static str,
    },
    /// Two interface templates share a name.
    DuplicateInterface { interface: String },
    /// The named interface template does not exist.
    UnknownInterface { interface: String },
}

impl fmt::Display for ObjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectError::CausalityMismatch {
                interface,
                causality,
                kind,
            } => write!(
                f,
                "interface {interface}: causality {causality} does not apply to {kind} signatures"
            ),
            ObjectError::DuplicateInterface { interface } => {
                write!(f, "duplicate interface template {interface}")
            }
            ObjectError::UnknownInterface { interface } => {
                write!(f, "unknown interface template {interface}")
            }
        }
    }
}

impl std::error::Error for ObjectError {}

/// A template from which computational objects are instantiated.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectTemplate {
    name: String,
    interfaces: Vec<InterfaceTemplate>,
    initial_state: Value,
}

impl ObjectTemplate {
    /// Creates a template with empty state and no interfaces.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            interfaces: Vec::new(),
            initial_state: Value::record::<&str, _>([]),
        }
    }

    /// Builder: sets the initial state.
    pub fn with_state(mut self, state: Value) -> Self {
        self.initial_state = state;
        self
    }

    /// Builder: adds an interface template.
    ///
    /// # Errors
    ///
    /// Returns [`ObjectError::DuplicateInterface`] on a name collision.
    pub fn with_interface(mut self, template: InterfaceTemplate) -> Result<Self, ObjectError> {
        if self.interfaces.iter().any(|i| i.name == template.name) {
            return Err(ObjectError::DuplicateInterface {
                interface: template.name,
            });
        }
        self.interfaces.push(template);
        Ok(self)
    }

    /// The template name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The interface templates.
    pub fn interfaces(&self) -> &[InterfaceTemplate] {
        &self.interfaces
    }

    /// Looks up an interface template by name.
    pub fn interface(&self, name: &str) -> Option<&InterfaceTemplate> {
        self.interfaces.iter().find(|i| i.name == name)
    }

    /// The initial state.
    pub fn initial_state(&self) -> &Value {
        &self.initial_state
    }

    /// Instantiates the template (§5.2 "creating an object"), allocating
    /// an object identity and one interface instance per template.
    pub fn instantiate(
        &self,
        objects: &IdGen<ObjectId>,
        interfaces: &IdGen<InterfaceId>,
    ) -> ComputationalObject {
        let id = objects.fresh();
        let instances = self
            .interfaces
            .iter()
            .map(|t| InterfaceInstance {
                id: interfaces.fresh(),
                template: t.name.clone(),
            })
            .collect();
        ComputationalObject {
            id,
            template: self.clone(),
            state: self.initial_state.clone(),
            interfaces: instances,
        }
    }
}

/// One instantiated interface of an object.
#[derive(Debug, Clone, PartialEq)]
pub struct InterfaceInstance {
    /// The interface identity (what interface references point at).
    pub id: InterfaceId,
    /// The name of the [`InterfaceTemplate`] this instantiates.
    pub template: String,
}

/// A computational object instance: identity, state, interfaces.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputationalObject {
    id: ObjectId,
    template: ObjectTemplate,
    state: Value,
    interfaces: Vec<InterfaceInstance>,
}

impl ComputationalObject {
    /// The object identity.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// The template this object instantiates.
    pub fn template(&self) -> &ObjectTemplate {
        &self.template
    }

    /// The object state (§5.2 "reading the state of the object").
    pub fn state(&self) -> &Value {
        &self.state
    }

    /// Mutable state access (§5.2 "writing the state of the object").
    pub fn state_mut(&mut self) -> &mut Value {
        &mut self.state
    }

    /// The instantiated interfaces.
    pub fn interfaces(&self) -> &[InterfaceInstance] {
        &self.interfaces
    }

    /// The interface instance for a template name.
    pub fn interface(&self, template: &str) -> Option<&InterfaceInstance> {
        self.interfaces.iter().find(|i| i.template == template)
    }

    /// Creates an additional interface from a template at run time
    /// (§5.2 "creating an interface").
    ///
    /// # Errors
    ///
    /// Returns [`ObjectError::UnknownInterface`] if the template name is
    /// not declared by the object template.
    pub fn create_interface(
        &mut self,
        template: &str,
        interfaces: &IdGen<InterfaceId>,
    ) -> Result<InterfaceId, ObjectError> {
        if self.template.interface(template).is_none() {
            return Err(ObjectError::UnknownInterface {
                interface: template.to_owned(),
            });
        }
        let id = interfaces.fresh();
        self.interfaces.push(InterfaceInstance {
            id,
            template: template.to_owned(),
        });
        Ok(id)
    }

    /// Destroys an interface instance (§5.2); returns whether it existed.
    pub fn destroy_interface(&mut self, id: InterfaceId) -> bool {
        let before = self.interfaces.len();
        self.interfaces.retain(|i| i.id != id);
        before != self.interfaces.len()
    }

    /// The signature offered at an interface instance.
    pub fn signature_of(&self, id: InterfaceId) -> Option<&InterfaceSignature> {
        let inst = self.interfaces.iter().find(|i| i.id == id)?;
        self.template
            .interface(&inst.template)
            .map(|t| &t.signature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::{bank_teller_signature, OperationalSignature};
    use rmodp_core::dtype::DataType;

    fn branch_template() -> ObjectTemplate {
        let teller = InterfaceTemplate::new(
            "teller",
            InterfaceSignature::Operational(bank_teller_signature()),
            Causality::Server,
        )
        .unwrap();
        let manager_sig = OperationalSignature::new("BankManager")
            .announcement("CreateAccount", [("c", DataType::Int)]);
        let manager = InterfaceTemplate::new(
            "manager",
            InterfaceSignature::Operational(manager_sig),
            Causality::Server,
        )
        .unwrap();
        ObjectTemplate::new("BankBranch")
            .with_state(Value::record([("accounts", Value::seq([]))]))
            .with_interface(teller)
            .unwrap()
            .with_interface(manager)
            .unwrap()
    }

    #[test]
    fn figure2_branch_offers_two_interfaces() {
        let objects = IdGen::new();
        let interfaces = IdGen::new();
        let branch = branch_template().instantiate(&objects, &interfaces);
        assert_eq!(branch.interfaces().len(), 2);
        let teller = branch.interface("teller").unwrap();
        let manager = branch.interface("manager").unwrap();
        assert_ne!(teller.id, manager.id);
        assert_eq!(branch.signature_of(teller.id).unwrap().name(), "BankTeller");
        assert_eq!(
            branch.signature_of(manager.id).unwrap().name(),
            "BankManager"
        );
    }

    #[test]
    fn instances_have_distinct_identities() {
        let objects = IdGen::new();
        let interfaces = IdGen::new();
        let a = branch_template().instantiate(&objects, &interfaces);
        let b = branch_template().instantiate(&objects, &interfaces);
        assert_ne!(a.id(), b.id());
        assert_ne!(
            a.interface("teller").unwrap().id,
            b.interface("teller").unwrap().id
        );
    }

    #[test]
    fn duplicate_interface_names_rejected() {
        let t = InterfaceTemplate::new(
            "x",
            InterfaceSignature::Operational(bank_teller_signature()),
            Causality::Server,
        )
        .unwrap();
        let result = ObjectTemplate::new("O")
            .with_interface(t.clone())
            .unwrap()
            .with_interface(t);
        assert!(matches!(
            result,
            Err(ObjectError::DuplicateInterface { .. })
        ));
    }

    #[test]
    fn causality_must_fit_signature_kind() {
        let err = InterfaceTemplate::new(
            "x",
            InterfaceSignature::Operational(bank_teller_signature()),
            Causality::Producer,
        )
        .unwrap_err();
        assert!(matches!(err, ObjectError::CausalityMismatch { .. }));
    }

    #[test]
    fn create_and_destroy_interfaces_at_runtime() {
        let objects = IdGen::new();
        let interfaces = IdGen::new();
        let mut branch = branch_template().instantiate(&objects, &interfaces);
        let extra = branch.create_interface("teller", &interfaces).unwrap();
        assert_eq!(branch.interfaces().len(), 3);
        assert!(branch.destroy_interface(extra));
        assert!(!branch.destroy_interface(extra));
        assert_eq!(branch.interfaces().len(), 2);
        assert!(matches!(
            branch.create_interface("nope", &interfaces),
            Err(ObjectError::UnknownInterface { .. })
        ));
    }

    #[test]
    fn state_read_and_write() {
        let objects = IdGen::new();
        let interfaces = IdGen::new();
        let mut branch = branch_template().instantiate(&objects, &interfaces);
        assert_eq!(branch.state().field("accounts"), Some(&Value::seq([])));
        branch
            .state_mut()
            .set_field("accounts", Value::seq([Value::Int(1)]));
        assert_eq!(
            branch.state().field("accounts"),
            Some(&Value::seq([Value::Int(1)]))
        );
    }
}
