//! Computational activities (§5.2).
//!
//! "These basic actions can be composed in sequence or in parallel. If
//! composed in parallel, the parallel activities can be dependent (the
//! activity is forked and must subsequently join at a synchronisation
//! point) or independent (the activity is spawned and cannot join)."
//!
//! [`execute`] interprets an [`Activity`] with a deterministic round-robin
//! scheduler, producing a totally ordered trace of basic actions that
//! tests (and the engineering runtime) can check ordering properties
//! against.

use std::collections::VecDeque;
use std::fmt;

/// The basic actions possible within a computational object (§5.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BasicAction {
    /// Creating an object from a template.
    CreateObject(String),
    /// Destroying an object.
    DestroyObject(String),
    /// Creating an interface on an object.
    CreateInterface(String),
    /// Destroying an interface.
    DestroyInterface(String),
    /// Trading for an interface (importing via the trader, §8.3.2).
    Trade(String),
    /// Binding to an interface.
    Bind(String, String),
    /// Reading the object's state.
    ReadState(String),
    /// Writing the object's state.
    WriteState(String),
    /// Invoking an operation at an operational interface.
    Invoke {
        /// The target interface.
        interface: String,
        /// The operation name.
        operation: String,
    },
    /// Producing a flow at a stream interface.
    Produce {
        /// The stream interface.
        interface: String,
        /// The flow name.
        flow: String,
    },
    /// Consuming a flow at a stream interface.
    Consume {
        /// The stream interface.
        interface: String,
        /// The flow name.
        flow: String,
    },
    /// Initiating a signal at a signal interface.
    InitiateSignal {
        /// The signal interface.
        interface: String,
        /// The signal name.
        signal: String,
    },
    /// Responding to a signal at a signal interface.
    RespondSignal {
        /// The signal interface.
        interface: String,
        /// The signal name.
        signal: String,
    },
}

impl fmt::Display for BasicAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BasicAction::CreateObject(x) => write!(f, "create-object {x}"),
            BasicAction::DestroyObject(x) => write!(f, "destroy-object {x}"),
            BasicAction::CreateInterface(x) => write!(f, "create-interface {x}"),
            BasicAction::DestroyInterface(x) => write!(f, "destroy-interface {x}"),
            BasicAction::Trade(x) => write!(f, "trade {x}"),
            BasicAction::Bind(a, b) => write!(f, "bind {a} {b}"),
            BasicAction::ReadState(x) => write!(f, "read {x}"),
            BasicAction::WriteState(x) => write!(f, "write {x}"),
            BasicAction::Invoke {
                interface,
                operation,
            } => {
                write!(f, "invoke {interface}.{operation}")
            }
            BasicAction::Produce { interface, flow } => write!(f, "produce {interface}.{flow}"),
            BasicAction::Consume { interface, flow } => write!(f, "consume {interface}.{flow}"),
            BasicAction::InitiateSignal { interface, signal } => {
                write!(f, "signal! {interface}.{signal}")
            }
            BasicAction::RespondSignal { interface, signal } => {
                write!(f, "signal? {interface}.{signal}")
            }
        }
    }
}

/// A composed activity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Activity {
    /// One basic action.
    Action(BasicAction),
    /// Sequential composition.
    Seq(Vec<Activity>),
    /// Dependent parallelism: branches run in parallel and **join** before
    /// the following activity continues.
    Fork(Vec<Activity>),
    /// Independent parallelism: the spawned activity runs in parallel and
    /// **cannot join**; the spawner continues immediately.
    Spawn(Box<Activity>),
}

impl Activity {
    /// Shorthand for an `Invoke` action.
    pub fn invoke(interface: impl Into<String>, operation: impl Into<String>) -> Activity {
        Activity::Action(BasicAction::Invoke {
            interface: interface.into(),
            operation: operation.into(),
        })
    }

    /// Shorthand for a sequence.
    pub fn seq<I: IntoIterator<Item = Activity>>(items: I) -> Activity {
        Activity::Seq(items.into_iter().collect())
    }

    /// Total number of basic actions in the activity.
    pub fn action_count(&self) -> usize {
        match self {
            Activity::Action(_) => 1,
            Activity::Seq(items) | Activity::Fork(items) => {
                items.iter().map(Activity::action_count).sum()
            }
            Activity::Spawn(inner) => inner.action_count(),
        }
    }
}

/// Identifies one thread of control in an execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub usize);

/// One executed basic action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivityEvent {
    /// Global step number (total order).
    pub step: usize,
    /// Which thread performed the action.
    pub thread: ThreadId,
    /// The action.
    pub action: BasicAction,
}

/// The result of executing an activity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionTrace {
    /// The totally ordered events.
    pub events: Vec<ActivityEvent>,
    /// How many threads of control existed in total (including the root).
    pub threads: usize,
    /// The step at which the *root* thread completed. Spawned activities
    /// may produce events after this point — that is the observable
    /// difference between fork and spawn.
    pub root_completed_at: usize,
}

#[derive(Debug)]
struct Frame {
    items: Vec<Activity>,
    idx: usize,
}

#[derive(Debug)]
struct Thread {
    frames: Vec<Frame>,
    parent: Option<usize>,
    waiting_children: usize,
    finished: bool,
}

enum StepOutcome {
    Progress(BasicAction),
    Parked,
    Finished,
}

/// Executes an activity deterministically (round-robin over runnable
/// threads) and returns the trace.
pub fn execute(activity: &Activity) -> ExecutionTrace {
    let mut threads = vec![Thread {
        frames: vec![Frame {
            items: vec![activity.clone()],
            idx: 0,
        }],
        parent: None,
        waiting_children: 0,
        finished: false,
    }];
    let mut ready: VecDeque<usize> = VecDeque::from([0]);
    let mut events = Vec::new();
    let mut step = 0usize;
    let mut root_completed_at = 0usize;

    while let Some(tid) = ready.pop_front() {
        if threads[tid].finished {
            continue;
        }
        match step_thread(&mut threads, tid, &mut ready) {
            StepOutcome::Progress(action) => {
                events.push(ActivityEvent {
                    step,
                    thread: ThreadId(tid),
                    action,
                });
                step += 1;
                ready.push_back(tid);
            }
            StepOutcome::Parked => {}
            StepOutcome::Finished => {
                if tid == 0 {
                    root_completed_at = step;
                }
                finish_thread(&mut threads, tid, &mut ready, &mut root_completed_at, step);
            }
        }
    }

    let thread_count = threads.len();
    ExecutionTrace {
        events,
        threads: thread_count,
        root_completed_at,
    }
}

fn finish_thread(
    threads: &mut [Thread],
    tid: usize,
    ready: &mut VecDeque<usize>,
    root_completed_at: &mut usize,
    step: usize,
) {
    threads[tid].finished = true;
    if let Some(parent) = threads[tid].parent {
        threads[parent].waiting_children -= 1;
        if threads[parent].waiting_children == 0 {
            // The join point: the parent resumes.
            if parent == 0 && threads[parent].frames.is_empty() {
                *root_completed_at = step;
            }
            ready.push_back(parent);
        }
    }
}

fn step_thread(threads: &mut Vec<Thread>, tid: usize, ready: &mut VecDeque<usize>) -> StepOutcome {
    loop {
        let Some(frame) = threads[tid].frames.last_mut() else {
            return StepOutcome::Finished;
        };
        if frame.idx >= frame.items.len() {
            threads[tid].frames.pop();
            continue;
        }
        let current = frame.items[frame.idx].clone();
        frame.idx += 1;
        match current {
            Activity::Action(action) => return StepOutcome::Progress(action),
            Activity::Seq(items) => {
                threads[tid].frames.push(Frame { items, idx: 0 });
            }
            Activity::Fork(branches) => {
                if branches.is_empty() {
                    continue;
                }
                let n = branches.len();
                for branch in branches {
                    let child = Thread {
                        frames: vec![Frame {
                            items: vec![branch],
                            idx: 0,
                        }],
                        parent: Some(tid),
                        waiting_children: 0,
                        finished: false,
                    };
                    threads.push(child);
                    ready.push_back(threads.len() - 1);
                }
                threads[tid].waiting_children = n;
                return StepOutcome::Parked;
            }
            Activity::Spawn(inner) => {
                let child = Thread {
                    frames: vec![Frame {
                        items: vec![*inner],
                        idx: 0,
                    }],
                    parent: None,
                    waiting_children: 0,
                    finished: false,
                };
                threads.push(child);
                ready.push_back(threads.len() - 1);
                // The spawner continues without waiting.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn act(name: &str) -> Activity {
        Activity::Action(BasicAction::WriteState(name.to_owned()))
    }

    fn names(trace: &ExecutionTrace) -> Vec<String> {
        trace
            .events
            .iter()
            .map(|e| match &e.action {
                BasicAction::WriteState(n) => n.clone(),
                other => other.to_string(),
            })
            .collect()
    }

    #[test]
    fn sequence_preserves_order() {
        let a = Activity::seq([act("a"), act("b"), act("c")]);
        let t = execute(&a);
        assert_eq!(names(&t), ["a", "b", "c"]);
        assert_eq!(t.threads, 1);
        assert_eq!(t.root_completed_at, 3);
    }

    #[test]
    fn fork_interleaves_and_joins() {
        let a = Activity::seq([
            act("before"),
            Activity::Fork(vec![
                Activity::seq([act("l1"), act("l2")]),
                Activity::seq([act("r1"), act("r2")]),
            ]),
            act("after"),
        ]);
        let t = execute(&a);
        let ns = names(&t);
        assert_eq!(ns.len(), 6);
        assert_eq!(ns[0], "before");
        // Round-robin interleaving of the two branches.
        assert_eq!(&ns[1..5], ["l1", "r1", "l2", "r2"]);
        // The join: "after" comes only after both branches completed.
        assert_eq!(ns[5], "after");
        assert_eq!(t.threads, 3);
    }

    #[test]
    fn nested_forks_join_inside_out() {
        let a = Activity::seq([
            Activity::Fork(vec![
                Activity::seq([
                    Activity::Fork(vec![act("inner1"), act("inner2")]),
                    act("after-inner"),
                ]),
                act("sibling"),
            ]),
            act("after-outer"),
        ]);
        let t = execute(&a);
        let ns = names(&t);
        let pos = |n: &str| ns.iter().position(|x| x == n).unwrap();
        assert!(pos("inner1") < pos("after-inner"));
        assert!(pos("inner2") < pos("after-inner"));
        assert!(pos("after-inner") < pos("after-outer"));
        assert!(pos("sibling") < pos("after-outer"));
        assert_eq!(ns.len(), 5);
        assert_eq!(t.threads, 5);
    }

    #[test]
    fn spawn_does_not_block_the_spawner() {
        let a = Activity::seq([
            Activity::Spawn(Box::new(Activity::seq([act("s1"), act("s2")]))),
            act("main"),
        ]);
        let t = execute(&a);
        let ns = names(&t);
        assert_eq!(ns.len(), 3);
        // The root finishes after "main" even though spawned work remains.
        let main_step = t
            .events
            .iter()
            .find(|e| matches!(&e.action, BasicAction::WriteState(n) if n == "main"))
            .unwrap()
            .step;
        assert!(t.root_completed_at > main_step);
        let s2_step = t
            .events
            .iter()
            .find(|e| matches!(&e.action, BasicAction::WriteState(n) if n == "s2"))
            .unwrap()
            .step;
        assert!(
            s2_step >= t.root_completed_at,
            "spawned activity keeps running after the root completes"
        );
    }

    #[test]
    fn empty_fork_is_a_no_op() {
        let a = Activity::seq([act("x"), Activity::Fork(vec![]), act("y")]);
        let t = execute(&a);
        assert_eq!(names(&t), ["x", "y"]);
        assert_eq!(t.threads, 1);
    }

    #[test]
    fn every_action_appears_exactly_once() {
        let a = Activity::seq([
            Activity::Fork(vec![act("a"), act("b"), act("c")]),
            Activity::Spawn(Box::new(act("d"))),
            act("e"),
        ]);
        let t = execute(&a);
        assert_eq!(t.events.len(), a.action_count());
        let mut ns = names(&t);
        ns.sort();
        assert_eq!(ns, ["a", "b", "c", "d", "e"]);
        // Steps form a contiguous total order.
        for (i, e) in t.events.iter().enumerate() {
            assert_eq!(e.step, i);
        }
    }

    #[test]
    fn action_count_and_display() {
        let a = Activity::seq([
            Activity::invoke("teller", "Deposit"),
            Activity::Action(BasicAction::Trade("BankTeller".into())),
            Activity::Fork(vec![Activity::Action(BasicAction::Bind(
                "c".into(),
                "s".into(),
            ))]),
        ]);
        assert_eq!(a.action_count(), 3);
        assert_eq!(Activity::invoke("t", "Op").action_count(), 1);
        assert_eq!(
            BasicAction::Invoke {
                interface: "t".into(),
                operation: "Op".into()
            }
            .to_string(),
            "invoke t.Op"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = Activity::seq([
            Activity::Fork(vec![
                Activity::seq([act("a1"), act("a2"), act("a3")]),
                Activity::seq([act("b1"), act("b2")]),
                Activity::Spawn(Box::new(act("c1"))),
            ]),
            act("tail"),
        ]);
        assert_eq!(execute(&a), execute(&a));
    }
}
