//! # rmodp-computational — the computational viewpoint (§5)
//!
//! The computational language specifies the functionality of an ODP
//! application in a distribution-transparent manner. It is object-based:
//! objects encapsulate state and behaviour, offer (possibly many) strongly
//! typed interfaces, and interact through bindings.
//!
//! This crate provides:
//!
//! - [`signature`] — the three interface kinds of §5.1: **operational**
//!   (interrogations with terminations, and announcements), **stream**
//!   (flows between producers and consumers) and **signal** (the low-level
//!   actions underlying both, cf. OSI REQUEST/INDICATE/RESPONSE/CONFIRM);
//! - [`subtype`] — structural interface subtyping (§5.1.1): substitutable
//!   subtypes with contravariant parameters and covariant terminations,
//!   with precise violation diagnostics (Figure 3's lattice is a test);
//! - [`object`] — object and interface templates and instances;
//! - [`binding`] — primitive bindings and multiparty binding objects, with
//!   causality checking and environment contracts (§5.3);
//! - [`activity`] — the computational activity algebra of §5.2 (sequence,
//!   fork/join, spawn) with a deterministic interpreter.
//!
//! # Example: Figure 3's subtype lattice
//!
//! ```
//! use rmodp_computational::signature::OperationalSignature;
//! use rmodp_computational::subtype::is_operational_subtype;
//! use rmodp_core::dtype::DataType;
//!
//! let teller = OperationalSignature::new("BankTeller")
//!     .announcement("Deposit", [("d", DataType::Int)]);
//! let manager = OperationalSignature::new("BankManager")
//!     .announcement("Deposit", [("d", DataType::Int)])
//!     .announcement("CreateAccount", [("c", DataType::Text)]);
//!
//! // A BankManager can substitute for a BankTeller…
//! assert!(is_operational_subtype(&manager, &teller).is_ok());
//! // …but not the other way around.
//! assert!(is_operational_subtype(&teller, &manager).is_err());
//! ```

pub mod activity;
pub mod binding;
pub mod notation;
pub mod object;
pub mod signature;
pub mod subtype;

pub use binding::Causality;
pub use signature::{InterfaceSignature, OperationalSignature, SignalSignature, StreamSignature};
pub use subtype::{is_subtype, SubtypeViolation};
