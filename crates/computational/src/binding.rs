//! Bindings between interfaces (§5), and binding objects for complex
//! multiparty interaction.

use std::fmt;

use rmodp_core::contract::{ContractViolation, EnvironmentContract, QosOffer, QosRequirement};
use rmodp_core::id::{BindingId, InterfaceId};

use crate::signature::InterfaceSignature;
use crate::subtype::{is_subtype_with, RefResolver, SubtypeViolation};

/// The role an object plays at one of its interfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Causality {
    /// Invokes operations (operational).
    Client,
    /// Offers operations (operational).
    Server,
    /// Produces flows (stream).
    Producer,
    /// Consumes flows (stream).
    Consumer,
    /// Initiates signals (signal).
    Initiator,
    /// Responds to signals (signal).
    Responder,
}

impl Causality {
    /// The causality the peer interface must have for a binding.
    pub fn complement(self) -> Causality {
        match self {
            Causality::Client => Causality::Server,
            Causality::Server => Causality::Client,
            Causality::Producer => Causality::Consumer,
            Causality::Consumer => Causality::Producer,
            Causality::Initiator => Causality::Responder,
            Causality::Responder => Causality::Initiator,
        }
    }

    /// Whether this causality makes sense for the signature kind.
    pub fn applies_to(self, signature: &InterfaceSignature) -> bool {
        matches!(
            (self, signature),
            (
                Causality::Client | Causality::Server,
                InterfaceSignature::Operational(_)
            ) | (
                Causality::Producer | Causality::Consumer,
                InterfaceSignature::Stream(_)
            ) | (
                Causality::Initiator | Causality::Responder,
                InterfaceSignature::Signal(_)
            )
        )
    }
}

impl fmt::Display for Causality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Causality::Client => write!(f, "client"),
            Causality::Server => write!(f, "server"),
            Causality::Producer => write!(f, "producer"),
            Causality::Consumer => write!(f, "consumer"),
            Causality::Initiator => write!(f, "initiator"),
            Causality::Responder => write!(f, "responder"),
        }
    }
}

/// Why a binding could not be established.
#[derive(Debug, Clone, PartialEq)]
pub enum BindingError {
    /// The causalities are not complementary (client must bind server…).
    CausalityClash { left: Causality, right: Causality },
    /// The provider's signature is not a subtype of what the user of the
    /// interface expects.
    Signature(SubtypeViolation),
    /// The environment contract could not be satisfied.
    Contract(ContractViolation),
    /// A binding-object endpoint identifier is unknown.
    UnknownEndpoint { interface: InterfaceId },
}

impl fmt::Display for BindingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindingError::CausalityClash { left, right } => {
                write!(
                    f,
                    "cannot bind {left} to {right}: causalities must complement"
                )
            }
            BindingError::Signature(v) => write!(f, "signature mismatch: {v}"),
            BindingError::Contract(v) => write!(f, "environment contract unsatisfied: {v}"),
            BindingError::UnknownEndpoint { interface } => {
                write!(f, "unknown binding endpoint {interface}")
            }
        }
    }
}

impl std::error::Error for BindingError {}

impl From<SubtypeViolation> for BindingError {
    fn from(v: SubtypeViolation) -> Self {
        BindingError::Signature(v)
    }
}

impl From<ContractViolation> for BindingError {
    fn from(v: ContractViolation) -> Self {
        BindingError::Contract(v)
    }
}

/// One side of a prospective binding.
#[derive(Debug, Clone, PartialEq)]
pub struct BindingEndpoint {
    /// The interface instance.
    pub interface: InterfaceId,
    /// The signature offered/required at that interface.
    pub signature: InterfaceSignature,
    /// The causality of the interface owner.
    pub causality: Causality,
    /// The owner's environment requirement for this binding.
    pub requirement: QosRequirement,
}

impl BindingEndpoint {
    /// Creates an endpoint with no QoS requirement.
    pub fn new(
        interface: InterfaceId,
        signature: InterfaceSignature,
        causality: Causality,
    ) -> Self {
        Self {
            interface,
            signature,
            causality,
            requirement: QosRequirement::none(),
        }
    }

    /// Builder: sets the QoS requirement.
    pub fn with_requirement(mut self, requirement: QosRequirement) -> Self {
        self.requirement = requirement;
        self
    }
}

/// A primitive binding between two complementary interfaces.
#[derive(Debug, Clone, PartialEq)]
pub struct Binding {
    /// The binding identity.
    pub id: BindingId,
    /// The initiating (client/consumer/initiator) endpoint.
    pub user: BindingEndpoint,
    /// The accepting (server/producer/responder) endpoint.
    pub provider: BindingEndpoint,
    /// The established contract covering both requirements.
    pub contract: EnvironmentContract,
}

impl Binding {
    /// Establishes a primitive binding: checks causality complement,
    /// signature substitutability (the provider's signature must be a
    /// subtype of what the user expects), and the environment contract.
    ///
    /// # Errors
    ///
    /// Returns the first [`BindingError`] found.
    pub fn establish(
        id: BindingId,
        user: BindingEndpoint,
        provider: BindingEndpoint,
        offer: QosOffer,
        resolver: RefResolver<'_>,
    ) -> Result<Self, BindingError> {
        if user.causality.complement() != provider.causality {
            return Err(BindingError::CausalityClash {
                left: user.causality,
                right: provider.causality,
            });
        }
        is_subtype_with(&provider.signature, &user.signature, resolver)?;
        // Both sides' requirements must be met by the channel offer.
        let combined = strongest(&user.requirement, &provider.requirement);
        let contract = EnvironmentContract::establish(combined, offer)?;
        Ok(Self {
            id,
            user,
            provider,
            contract,
        })
    }
}

/// Combines two QoS requirements, keeping the stronger bound of each
/// clause.
fn strongest(a: &QosRequirement, b: &QosRequirement) -> QosRequirement {
    QosRequirement {
        max_latency: match (a.max_latency, b.max_latency) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, y) => x.or(y),
        },
        min_throughput: match (a.min_throughput, b.min_throughput) {
            (Some(x), Some(y)) => Some(x.max(y)),
            (x, y) => x.or(y),
        },
        min_availability: match (a.min_availability, b.min_availability) {
            (Some(x), Some(y)) => Some(x.max(y)),
            (x, y) => x.or(y),
        },
        reliable_delivery: a.reliable_delivery || b.reliable_delivery,
        security: a.security.max(b.security),
    }
}

/// A binding object: describes complex (multiparty) interaction between
/// objects, itself offering a control interface (§5).
#[derive(Debug, Clone, PartialEq)]
pub struct BindingObject {
    id: BindingId,
    control: InterfaceId,
    endpoints: Vec<BindingEndpoint>,
}

impl BindingObject {
    /// Creates a binding object with a control interface and no endpoints.
    pub fn new(id: BindingId, control: InterfaceId) -> Self {
        Self {
            id,
            control,
            endpoints: Vec::new(),
        }
    }

    /// The binding identity.
    pub fn id(&self) -> BindingId {
        self.id
    }

    /// The control interface through which the binding is managed.
    pub fn control(&self) -> InterfaceId {
        self.control
    }

    /// Adds an endpoint. Multiparty bindings admit many producers and
    /// consumers; signature compatibility is checked pairwise between each
    /// producer-like endpoint and each complementary endpoint.
    ///
    /// # Errors
    ///
    /// Returns a [`BindingError::Signature`] if the new endpoint is
    /// incompatible with an existing complementary endpoint.
    pub fn add_endpoint(
        &mut self,
        endpoint: BindingEndpoint,
        resolver: RefResolver<'_>,
    ) -> Result<(), BindingError> {
        for existing in &self.endpoints {
            if existing.causality == endpoint.causality.complement() {
                let (user, provider) = match endpoint.causality {
                    Causality::Client | Causality::Consumer | Causality::Initiator => {
                        (&endpoint, existing)
                    }
                    _ => (existing, &endpoint),
                };
                is_subtype_with(&provider.signature, &user.signature, resolver)?;
            }
        }
        self.endpoints.push(endpoint);
        Ok(())
    }

    /// Removes an endpoint.
    ///
    /// # Errors
    ///
    /// Returns [`BindingError::UnknownEndpoint`] if absent.
    pub fn remove_endpoint(&mut self, interface: InterfaceId) -> Result<(), BindingError> {
        let before = self.endpoints.len();
        self.endpoints.retain(|e| e.interface != interface);
        if self.endpoints.len() == before {
            return Err(BindingError::UnknownEndpoint { interface });
        }
        Ok(())
    }

    /// The current endpoints.
    pub fn endpoints(&self) -> &[BindingEndpoint] {
        &self.endpoints
    }

    /// Endpoints with a given causality.
    pub fn endpoints_with(&self, causality: Causality) -> Vec<&BindingEndpoint> {
        self.endpoints
            .iter()
            .filter(|e| e.causality == causality)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::{bank_teller_signature, FlowDirection, StreamSignature};
    use rmodp_core::dtype::DataType;
    use std::time::Duration;

    fn eq_resolver(a: &str, b: &str) -> bool {
        a == b
    }

    fn op_sig() -> InterfaceSignature {
        InterfaceSignature::Operational(bank_teller_signature())
    }

    #[test]
    fn complement_is_involutive() {
        for c in [
            Causality::Client,
            Causality::Server,
            Causality::Producer,
            Causality::Consumer,
            Causality::Initiator,
            Causality::Responder,
        ] {
            assert_eq!(c.complement().complement(), c);
        }
    }

    #[test]
    fn establish_happy_path() {
        let user = BindingEndpoint::new(InterfaceId::new(1), op_sig(), Causality::Client);
        let provider = BindingEndpoint::new(InterfaceId::new(2), op_sig(), Causality::Server);
        let b = Binding::establish(
            BindingId::new(1),
            user,
            provider,
            QosOffer::default(),
            &eq_resolver,
        )
        .unwrap();
        assert_eq!(b.user.causality, Causality::Client);
    }

    #[test]
    fn causality_clash_is_rejected() {
        let user = BindingEndpoint::new(InterfaceId::new(1), op_sig(), Causality::Client);
        let provider = BindingEndpoint::new(InterfaceId::new(2), op_sig(), Causality::Client);
        let err = Binding::establish(
            BindingId::new(1),
            user,
            provider,
            QosOffer::default(),
            &eq_resolver,
        )
        .unwrap_err();
        assert!(matches!(err, BindingError::CausalityClash { .. }));
    }

    #[test]
    fn provider_must_be_subtype_of_expected() {
        // Client expects full BankTeller; provider offers a poorer
        // signature with only Deposit.
        let poor = crate::signature::OperationalSignature::new("DepositOnly")
            .announcement("Deposit", [("d", DataType::Int)]);
        let user = BindingEndpoint::new(InterfaceId::new(1), op_sig(), Causality::Client);
        let provider = BindingEndpoint::new(
            InterfaceId::new(2),
            InterfaceSignature::Operational(poor),
            Causality::Server,
        );
        let err = Binding::establish(
            BindingId::new(1),
            user,
            provider,
            QosOffer::default(),
            &eq_resolver,
        )
        .unwrap_err();
        assert!(matches!(err, BindingError::Signature(_)));
    }

    #[test]
    fn contract_combines_both_requirements() {
        let user = BindingEndpoint::new(InterfaceId::new(1), op_sig(), Causality::Client)
            .with_requirement(QosRequirement::none().with_max_latency(Duration::from_millis(10)));
        let provider = BindingEndpoint::new(InterfaceId::new(2), op_sig(), Causality::Server)
            .with_requirement(QosRequirement::none().with_max_latency(Duration::from_millis(2)));
        // The offer satisfies the user's 10ms but not the provider's 2ms.
        let offer = QosOffer {
            latency: Duration::from_millis(5),
            ..QosOffer::default()
        };
        let err = Binding::establish(
            BindingId::new(1),
            user.clone(),
            provider.clone(),
            offer,
            &eq_resolver,
        )
        .unwrap_err();
        assert!(matches!(err, BindingError::Contract(_)));
        let fast = QosOffer {
            latency: Duration::from_millis(1),
            ..QosOffer::default()
        };
        assert!(Binding::establish(BindingId::new(1), user, provider, fast, &eq_resolver).is_ok());
    }

    #[test]
    fn binding_object_manages_multiparty_stream() {
        let produced = InterfaceSignature::Stream(StreamSignature::new("AV").flow(
            "audio",
            DataType::Blob,
            FlowDirection::Produced,
        ));
        // From a consumer's standpoint the flow is still described from the
        // producing interface's point of view; the consumer endpoint
        // declares the same signature with Consumer causality.
        let mut bo = BindingObject::new(BindingId::new(9), InterfaceId::new(100));
        bo.add_endpoint(
            BindingEndpoint::new(InterfaceId::new(1), produced.clone(), Causality::Producer),
            &eq_resolver,
        )
        .unwrap();
        bo.add_endpoint(
            BindingEndpoint::new(InterfaceId::new(2), produced.clone(), Causality::Consumer),
            &eq_resolver,
        )
        .unwrap();
        bo.add_endpoint(
            BindingEndpoint::new(InterfaceId::new(3), produced, Causality::Consumer),
            &eq_resolver,
        )
        .unwrap();
        assert_eq!(bo.endpoints().len(), 3);
        assert_eq!(bo.endpoints_with(Causality::Consumer).len(), 2);
        bo.remove_endpoint(InterfaceId::new(2)).unwrap();
        assert_eq!(bo.endpoints_with(Causality::Consumer).len(), 1);
        assert!(matches!(
            bo.remove_endpoint(InterfaceId::new(2)),
            Err(BindingError::UnknownEndpoint { .. })
        ));
    }

    #[test]
    fn causality_applies_to_signature_kinds() {
        let op = op_sig();
        let stream = InterfaceSignature::Stream(StreamSignature::new("S"));
        assert!(Causality::Client.applies_to(&op));
        assert!(Causality::Server.applies_to(&op));
        assert!(!Causality::Producer.applies_to(&op));
        assert!(Causality::Producer.applies_to(&stream));
        assert!(!Causality::Client.applies_to(&stream));
    }
}
