//! The branch's enterprise specification (§3).

use rmodp_enterprise::prelude::*;

/// Object identities used by the canonical branch community.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchRoster {
    /// The bank manager (active object).
    pub manager: u64,
    /// The tellers (active objects).
    pub tellers: [u64; 2],
    /// The customers (active objects).
    pub customers: [u64; 3],
}

impl Default for BranchRoster {
    fn default() -> Self {
        Self {
            manager: 1,
            tellers: [2, 3],
            customers: [10, 11, 12],
        }
    }
}

/// Builds the branch community: "a bank branch consists of a bank
/// manager, some tellers, and some bank accounts; the branch provides
/// banking services to a geographical area".
pub fn branch_community(roster: &BranchRoster) -> Community {
    let mut c = Community::new(1, "toowong-branch", "provide banking services to Toowong");
    for role in ["manager", "teller", "customer"] {
        c.add_role(role).expect("fresh community");
    }
    c.assign(roster.manager, "manager").expect("fresh roster");
    for t in roster.tellers {
        c.assign(t, "teller").expect("fresh roster");
    }
    for cu in roster.customers {
        c.assign(cu, "customer").expect("fresh roster");
    }
    c
}

/// Adopts the paper's policies into an engine:
///
/// - *permission*: "money can be deposited into an open account";
/// - *prohibition*: "customers must not withdraw more than $500 per day";
/// - *obligation*: "the bank manager must advise customers when the
///   interest rate changes";
/// - plus the §5 structural rule that accounts are created only through
///   the manager interface.
pub fn branch_policies() -> PolicyEngine {
    let mut e = PolicyEngine::new(Default::default());
    e.adopt(
        Policy::permission("deposit-open-account", "*", "deposit")
            .when("account_open")
            .expect("static predicate"),
    )
    .expect("fresh engine");
    e.adopt(
        Policy::permission("customer-withdraw", "customer", "withdraw")
            .when("amount > 0")
            .expect("static predicate"),
    )
    .expect("fresh engine");
    e.adopt(
        Policy::prohibition("daily-limit", "customer", "withdraw")
            .when("amount + withdrawn_today > 500")
            .expect("static predicate"),
    )
    .expect("fresh engine");
    e.adopt(Policy::permission(
        "manager-creates-accounts",
        "manager",
        "create_account",
    ))
    .expect("fresh engine");
    e.adopt(Policy::obligation(
        "advise-rate-change",
        "manager",
        "notify_customer",
    ))
    .expect("fresh engine");
    e
}

/// Performs the paper's performative action: the interest rate changes,
/// creating one obligation on the manager per customer. Returns the
/// obligation instance ids.
pub fn change_interest_rate(
    engine: &mut PolicyEngine,
    roster: &BranchRoster,
    new_rate_percent: f64,
    deadline: Option<u64>,
) -> Vec<u64> {
    roster
        .customers
        .iter()
        .map(|customer| {
            engine
                .create_obligation(
                    "advise-rate-change",
                    roster.manager,
                    format!("advise customer {customer} of rate {new_rate_percent}%"),
                    deadline,
                )
                .expect("advise-rate-change is adopted")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmodp_core::value::Value;

    fn withdraw_request(actor: u64, amount: i64, withdrawn_today: i64) -> ActionRequest {
        ActionRequest::new(actor, "withdraw").with_context(Value::record([
            ("amount", Value::Int(amount)),
            ("withdrawn_today", Value::Int(withdrawn_today)),
        ]))
    }

    #[test]
    fn community_has_papers_shape() {
        let roster = BranchRoster::default();
        let c = branch_community(&roster);
        assert_eq!(c.members_in("teller").len(), 2);
        assert_eq!(c.members_in("customer").len(), 3);
        assert!(c.fills(roster.manager, "manager"));
    }

    #[test]
    fn daily_limit_prohibition_dominates() {
        let roster = BranchRoster::default();
        let community = branch_community(&roster);
        let mut engine = branch_policies();
        let ok = withdraw_request(roster.customers[0], 400, 0);
        assert!(engine.decide(&community, &ok).unwrap().is_allowed());
        // The paper's exact afternoon scenario at the policy level.
        let blocked = withdraw_request(roster.customers[0], 200, 400);
        let d = engine.decide(&community, &blocked).unwrap();
        assert!(!d.is_allowed());
        assert_eq!(d.by(), "daily-limit");
    }

    #[test]
    fn only_managers_create_accounts() {
        let roster = BranchRoster::default();
        let community = branch_community(&roster);
        let mut engine = branch_policies();
        let manager_req = ActionRequest::new(roster.manager, "create_account");
        assert!(engine
            .decide(&community, &manager_req)
            .unwrap()
            .is_allowed());
        let teller_req = ActionRequest::new(roster.tellers[0], "create_account");
        assert!(!engine.decide(&community, &teller_req).unwrap().is_allowed());
    }

    #[test]
    fn deposits_require_open_accounts() {
        let roster = BranchRoster::default();
        let community = branch_community(&roster);
        let mut engine = branch_policies();
        let open = ActionRequest::new(roster.customers[0], "deposit")
            .with_context(Value::record([("account_open", Value::Bool(true))]));
        assert!(engine.decide(&community, &open).unwrap().is_allowed());
        let closed = ActionRequest::new(roster.customers[0], "deposit")
            .with_context(Value::record([("account_open", Value::Bool(false))]));
        assert!(!engine.decide(&community, &closed).unwrap().is_allowed());
    }

    #[test]
    fn rate_change_is_performative() {
        let roster = BranchRoster::default();
        let mut engine = branch_policies();
        engine.tick(100);
        let obligations = change_interest_rate(&mut engine, &roster, 5.25, Some(200));
        assert_eq!(obligations.len(), 3);
        assert_eq!(engine.obligations_in(ObligationState::Outstanding).len(), 3);
        // The manager notifies two customers in time; the third lapses.
        engine.discharge(obligations[0]).unwrap();
        engine.discharge(obligations[1]).unwrap();
        engine.tick(300);
        assert_eq!(engine.obligations_in(ObligationState::Fulfilled).len(), 2);
        assert_eq!(engine.obligations_in(ObligationState::Violated).len(), 1);
    }

    #[test]
    fn balance_queries_are_not_performative() {
        // §3: obtaining an account balance is not a performative action —
        // the enterprise spec need not (and here does not) mention it; the
        // decision falls through to the default.
        let roster = BranchRoster::default();
        let community = branch_community(&roster);
        let mut engine = branch_policies();
        let req = ActionRequest::new(roster.customers[0], "get_balance");
        let d = engine.decide(&community, &req).unwrap();
        assert_eq!(d.by(), "default");
    }
}
