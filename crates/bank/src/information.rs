//! The branch's information specification (§4).

use rmodp_core::dtype::DataType;
use rmodp_core::value::Value;
use rmodp_information::association::{AssociationSchema, Cardinality, CompositeSchema};
use rmodp_information::object::InformationObject;
use rmodp_information::schema::{DynamicSchema, InvariantSchema, StaticSchema};

/// The paper's daily withdrawal limit, in dollars.
pub const DAILY_LIMIT: i64 = 500;

/// The account static schema: "a bank account consists of a balance and
/// the amount withdrawn today"; at midnight the amount-withdrawn-today is
/// $0.
pub fn account_schema(opening_balance: i64) -> StaticSchema {
    StaticSchema::new(
        "Account",
        DataType::record([
            ("balance", DataType::Int),
            ("withdrawn_today", DataType::Int),
        ]),
        Value::record([
            ("balance", Value::Int(opening_balance)),
            ("withdrawn_today", Value::Int(0)),
        ]),
    )
    .expect("schema is well-formed")
}

/// The account invariants: the amount-withdrawn-today never exceeds $500,
/// never goes negative, and the balance never goes negative.
pub fn account_invariants() -> Vec<InvariantSchema> {
    vec![
        InvariantSchema::parse("DailyLimit", "withdrawn_today <= 500").expect("static predicate"),
        InvariantSchema::parse("NonNegativeWithdrawn", "withdrawn_today >= 0")
            .expect("static predicate"),
        InvariantSchema::parse("NonNegativeBalance", "balance >= 0").expect("static predicate"),
    ]
}

/// The withdraw dynamic schema: "a withdrawal of $X from an account
/// decreases the balance by $X and increases the amount-withdrawn-today
/// by $X".
pub fn withdraw_schema() -> DynamicSchema {
    DynamicSchema::builder("Withdraw")
        .param("x", DataType::Int)
        .guard("x > 0")
        .effect("balance", "balance - x")
        .effect("withdrawn_today", "withdrawn_today + x")
        .build()
        .expect("schema is well-formed")
}

/// The deposit dynamic schema.
pub fn deposit_schema() -> DynamicSchema {
    DynamicSchema::builder("Deposit")
        .param("x", DataType::Int)
        .guard("x > 0")
        .effect("balance", "balance + x")
        .build()
        .expect("schema is well-formed")
}

/// The midnight reset: "at midnight, the amount-withdrawn-today is $0".
pub fn midnight_reset_schema() -> DynamicSchema {
    DynamicSchema::builder("MidnightReset")
        .effect("withdrawn_today", "0")
        .build()
        .expect("schema is well-formed")
}

/// Creates an account information object with the standard invariants.
pub fn new_account(id: u64, opening_balance: i64) -> InformationObject {
    InformationObject::new(id, account_schema(opening_balance), account_invariants())
}

/// The *owns account* association: a customer may own many accounts, an
/// account has exactly one owner.
pub fn owns_account() -> AssociationSchema {
    AssociationSchema::new(
        "owns_account",
        "customer",
        Cardinality::Many,
        "account",
        Cardinality::One,
    )
}

/// The composite branch schema: "a bank branch consists of a set of
/// customers, a set of accounts, and the owns-account relationships".
pub fn branch_composite() -> CompositeSchema {
    let customer = StaticSchema::new(
        "Customer",
        DataType::record([("name", DataType::Text)]),
        Value::record([("name", Value::text(""))]),
    )
    .expect("schema is well-formed");
    CompositeSchema::new("BankBranch")
        .with_component("customer", customer)
        .expect("fresh composite")
        .with_component("account", account_schema(0))
        .expect("fresh composite")
        .with_association(owns_account())
        .expect("roles exist")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmodp_information::association::AssociationSet;
    use rmodp_information::schema::SchemaError;

    fn args(x: i64) -> Value {
        Value::record([("x", Value::Int(x))])
    }

    #[test]
    fn the_papers_exact_scenario() {
        // "$400 could be withdrawn in the morning but an additional $200
        // could not be withdrawn in the afternoon as the
        // amount-withdrawn-today cannot exceed $500."
        let mut account = new_account(1, 1_000);
        let withdraw = withdraw_schema();
        account.apply(&withdraw, args(400)).unwrap();
        assert_eq!(account.state().field("balance"), Some(&Value::Int(600)));
        let err = account.apply(&withdraw, args(200)).unwrap_err();
        assert_eq!(
            err,
            SchemaError::InvariantViolated {
                invariant: "DailyLimit".into()
            }
        );
        // State unchanged by the rejected transition.
        assert_eq!(
            account.state().field("withdrawn_today"),
            Some(&Value::Int(400))
        );
    }

    #[test]
    fn midnight_reset_reopens_the_limit() {
        let mut account = new_account(1, 1_000);
        let withdraw = withdraw_schema();
        account.apply(&withdraw, args(500)).unwrap();
        assert!(account.apply(&withdraw, args(1)).is_err());
        account
            .apply(&midnight_reset_schema(), Value::record::<&str, _>([]))
            .unwrap();
        assert_eq!(
            account.state().field("withdrawn_today"),
            Some(&Value::Int(0))
        );
        account.apply(&withdraw, args(100)).unwrap();
        assert_eq!(account.state().field("balance"), Some(&Value::Int(400)));
    }

    #[test]
    fn balance_cannot_go_negative() {
        let mut account = new_account(1, 100);
        let err = account.apply(&withdraw_schema(), args(200)).unwrap_err();
        assert_eq!(
            err,
            SchemaError::InvariantViolated {
                invariant: "NonNegativeBalance".into()
            }
        );
    }

    #[test]
    fn deposits_grow_the_balance_and_are_guarded() {
        let mut account = new_account(1, 0);
        account.apply(&deposit_schema(), args(250)).unwrap();
        assert_eq!(account.state().field("balance"), Some(&Value::Int(250)));
        assert!(matches!(
            account.apply(&deposit_schema(), args(-5)),
            Err(SchemaError::GuardFailed { .. })
        ));
    }

    #[test]
    fn transition_log_replays() {
        let mut account = new_account(1, 1_000);
        account.apply(&withdraw_schema(), args(100)).unwrap();
        account.apply(&deposit_schema(), args(50)).unwrap();
        account
            .apply(&midnight_reset_schema(), Value::record::<&str, _>([]))
            .unwrap();
        assert_eq!(account.log().len(), 3);
        assert!(account.replay_consistent());
    }

    #[test]
    fn owns_account_cardinalities_match_section3() {
        // "a customer should not be limited to having only one bank
        // account" — but an account has exactly one owner.
        let mut owns = AssociationSet::new(owns_account());
        owns.link(10, 100).unwrap();
        owns.link(10, 101).unwrap(); // second account for customer 10
        assert!(owns.link(11, 100).is_err()); // second owner for account 100
    }

    #[test]
    fn composite_branch_has_components_and_association() {
        let branch = branch_composite();
        assert_eq!(branch.components().len(), 2);
        assert_eq!(branch.associations().len(), 1);
        assert_eq!(branch.associations()[0].name(), "owns_account");
    }
}
