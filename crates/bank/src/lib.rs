//! # rmodp-bank — the paper's running example, in all five viewpoints
//!
//! The tutorial develops one application throughout: a bank branch. This
//! crate specifies it in each viewpoint language and deploys it on the
//! engineering infrastructure:
//!
//! - [`enterprise`] (§3) — the branch community: manager, tellers and
//!   customers; the $500/day prohibition; the obligation to advise
//!   customers when the interest rate changes;
//! - [`information`] (§4) — account schemas: static (balance and
//!   amount-withdrawn-today), invariant (≤ $500/day), dynamic (withdraw /
//!   deposit / the midnight reset), and the *owns account* association;
//! - [`computational`] (§5, Figures 2–3) — the BankTeller, BankManager
//!   and LoansOfficer interface types and the branch object template
//!   offering teller and manager interfaces;
//! - [`deployment`] (§6) — the branch as a basic engineering object with
//!   executable behaviour, deployed into a node/capsule/cluster, exported
//!   to the trader and relocator;
//! - [`technology`] (§7) — the technology specification: concrete
//!   choices (transfer syntaxes, simulator parameters) and the
//!   information required for testing.

pub mod computational;
pub mod deployment;
pub mod enterprise;
pub mod information;
pub mod technology;

pub use deployment::{deploy_branch, BankDeployment, BranchBehaviour};
