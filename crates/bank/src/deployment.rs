//! The branch's engineering deployment (§6): executable behaviour wired
//! into nodes, capsules, clusters and channels.

use rmodp_computational::signature::{InterfaceSignature, Invocation, Termination};
use rmodp_core::codec::SyntaxId;
use rmodp_core::id::{CapsuleId, ClusterId, NodeId, ObjectId};
use rmodp_core::value::Value;
use rmodp_engineering::behaviour::ServerBehaviour;
use rmodp_engineering::engine::{EngError, Engine};
use rmodp_engineering::structure::InterfaceRef;
use rmodp_information::schema::SchemaError;
use rmodp_trader::Trader;
use rmodp_typerepo::TypeRepository;

use crate::computational::{bank_manager, bank_teller, loans_officer};
use crate::information::{
    account_invariants, deposit_schema, midnight_reset_schema, withdraw_schema, DAILY_LIMIT,
};

/// The executable behaviour of the bank branch object.
///
/// Every state change goes through the information viewpoint's dynamic
/// schemas, checked against the invariant schemas — the engineering
/// realisation *implements* the information specification rather than
/// duplicating it. Interface discipline (only the manager interface
/// offers `CreateAccount`) is enforced by the computational type system
/// at binding time: a client bound with the BankTeller signature cannot
/// even name the operation.
#[derive(Debug, Default)]
pub struct BranchBehaviour;

impl BranchBehaviour {
    /// The initial branch state.
    pub fn initial_state() -> Value {
        Value::record([
            ("accounts", Value::record::<&str, _>([])),
            ("next_account", Value::Int(1)),
            ("daily_limit", Value::Int(DAILY_LIMIT)),
        ])
    }

    fn account_key(a: i64) -> String {
        format!("acct{a}")
    }

    fn with_account(
        state: &mut Value,
        a: i64,
        f: impl FnOnce(&Value) -> Result<Value, SchemaError>,
    ) -> Termination {
        let key = Self::account_key(a);
        let Some(account) = state.field("accounts").and_then(|r| r.field(&key)).cloned() else {
            return Termination::error(format!("no such account {a}"));
        };
        match f(&account) {
            Ok(new_account) => {
                let balance = new_account.field("balance").cloned().unwrap_or(Value::Null);
                state
                    .field_mut("accounts")
                    .expect("state has accounts")
                    .set_field(key, new_account);
                Termination::ok(Value::record([("new_balance", balance)]))
            }
            Err(SchemaError::InvariantViolated { invariant }) if invariant == "DailyLimit" => {
                let today = account
                    .field("withdrawn_today")
                    .cloned()
                    .unwrap_or(Value::Int(0));
                Termination::new(
                    "NotToday",
                    Value::record([("today", today), ("daily_limit", Value::Int(DAILY_LIMIT))]),
                )
            }
            Err(SchemaError::InvariantViolated { invariant })
                if invariant == "NonNegativeBalance" =>
            {
                Termination::error("insufficient funds")
            }
            Err(SchemaError::GuardFailed { .. }) => Termination::error("invalid amount"),
            Err(other) => Termination::error(other.to_string()),
        }
    }

    fn int_arg(invocation: &Invocation, name: &str) -> Option<i64> {
        invocation.args.field(name).and_then(Value::as_int)
    }
}

impl ServerBehaviour for BranchBehaviour {
    fn invoke(&mut self, state: &mut Value, invocation: &Invocation) -> Termination {
        match invocation.operation.as_str() {
            "Deposit" => {
                let Some(a) = Self::int_arg(invocation, "a") else {
                    return Termination::error("Deposit requires account a");
                };
                let Some(d) = Self::int_arg(invocation, "d") else {
                    return Termination::error("Deposit requires amount d");
                };
                Self::with_account(state, a, |account| {
                    deposit_schema().apply_checked(
                        account,
                        &Value::record([("x", Value::Int(d))]),
                        &account_invariants(),
                    )
                })
            }
            "Withdraw" => {
                let Some(a) = Self::int_arg(invocation, "a") else {
                    return Termination::error("Withdraw requires account a");
                };
                let Some(d) = Self::int_arg(invocation, "d") else {
                    return Termination::error("Withdraw requires amount d");
                };
                Self::with_account(state, a, |account| {
                    withdraw_schema().apply_checked(
                        account,
                        &Value::record([("x", Value::Int(d))]),
                        &account_invariants(),
                    )
                })
            }
            "CreateAccount" => {
                let Some(c) = Self::int_arg(invocation, "c") else {
                    return Termination::error("CreateAccount requires customer c");
                };
                let opening = Self::int_arg(invocation, "opening").unwrap_or(0);
                if opening < 0 {
                    return Termination::error("opening balance cannot be negative");
                }
                let n = state
                    .field("next_account")
                    .and_then(Value::as_int)
                    .unwrap_or(1);
                state.set_field("next_account", Value::Int(n + 1));
                let account = Value::record([
                    ("balance", Value::Int(opening)),
                    ("withdrawn_today", Value::Int(0)),
                    ("owner", Value::Int(c)),
                ]);
                state
                    .field_mut("accounts")
                    .expect("state has accounts")
                    .set_field(Self::account_key(n), account);
                Termination::ok(Value::record([("a", Value::Int(n))]))
            }
            "GetBalance" => {
                let Some(a) = Self::int_arg(invocation, "a") else {
                    return Termination::error("GetBalance requires account a");
                };
                let key = Self::account_key(a);
                match state.path(&["accounts", &key, "balance"]) {
                    Some(balance) => Termination::ok(Value::record([("balance", balance.clone())])),
                    None => Termination::error(format!("no such account {a}")),
                }
            }
            "ResetDay" => {
                // The midnight performative: reset every account.
                let keys: Vec<String> = state
                    .field("accounts")
                    .and_then(Value::as_record)
                    .map(|r| r.keys().cloned().collect())
                    .unwrap_or_default();
                for key in keys {
                    let account = state
                        .path(&["accounts", &key])
                        .cloned()
                        .expect("key enumerated above");
                    if let Ok(reset) = midnight_reset_schema().apply_checked(
                        &account,
                        &Value::record::<&str, _>([]),
                        &account_invariants(),
                    ) {
                        state
                            .field_mut("accounts")
                            .expect("state has accounts")
                            .set_field(key, reset);
                    }
                }
                Termination::ok(Value::record::<&str, _>([]))
            }
            other => Termination::error(format!("unknown operation {other}")),
        }
    }
}

/// A deployed branch: where everything landed.
#[derive(Debug, Clone, Copy)]
pub struct BankDeployment {
    /// The node hosting the branch.
    pub node: NodeId,
    /// Its capsule.
    pub capsule: CapsuleId,
    /// Its cluster.
    pub cluster: ClusterId,
    /// The branch object.
    pub object: ObjectId,
    /// The BankTeller interface (Figure 2's left interface).
    pub teller: InterfaceRef,
    /// The BankManager interface (Figure 2's right interface).
    pub manager: InterfaceRef,
}

/// Deploys a branch onto a fresh node of the engine: registers the
/// behaviour, builds node/capsule/cluster, and creates the branch object
/// with its two interfaces.
///
/// # Errors
///
/// Engineering failures (policy limits, unknown entities).
pub fn deploy_branch(engine: &mut Engine, native: SyntaxId) -> Result<BankDeployment, EngError> {
    if !engine.behaviours_mut().contains("bank-branch") {
        engine
            .behaviours_mut()
            .register("bank-branch", BranchBehaviour::default);
    }
    let node = engine.add_node(native);
    let capsule = engine.add_capsule(node)?;
    let cluster = engine.add_cluster(node, capsule)?;
    let (object, refs) = engine.create_object(
        node,
        capsule,
        cluster,
        "toowong-branch",
        "bank-branch",
        BranchBehaviour::initial_state(),
        2,
    )?;
    Ok(BankDeployment {
        node,
        capsule,
        cluster,
        object,
        teller: refs[0],
        manager: refs[1],
    })
}

/// Registers the bank's interface types with the type repository
/// (Figure 3's lattice emerges structurally).
///
/// # Errors
///
/// Duplicate registration.
pub fn register_types(repo: &mut TypeRepository) -> Result<(), rmodp_typerepo::TypeRepoError> {
    repo.register(InterfaceSignature::Operational(bank_teller()))?;
    repo.register(InterfaceSignature::Operational(bank_manager()))?;
    repo.register(InterfaceSignature::Operational(loans_officer()))?;
    Ok(())
}

/// Exports the deployed branch's interfaces to a trader with sensible
/// service properties.
///
/// # Errors
///
/// Trader failures.
pub fn export_to_trader(
    trader: &mut Trader,
    deployment: &BankDeployment,
) -> Result<(), rmodp_trader::TraderError> {
    trader.export(
        "BankTeller",
        deployment.teller.interface,
        Value::record([
            ("branch", Value::text("toowong")),
            ("daily_limit", Value::Int(DAILY_LIMIT)),
        ]),
    )?;
    trader.export(
        "BankManager",
        deployment.manager.interface,
        Value::record([("branch", Value::text("toowong"))]),
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmodp_engineering::channel::ChannelConfig;
    use rmodp_trader::ImportRequest;

    fn world() -> (Engine, BankDeployment, NodeId) {
        let mut engine = Engine::new(77);
        let deployment = deploy_branch(&mut engine, SyntaxId::Binary).unwrap();
        let client = engine.add_node(SyntaxId::Text);
        (engine, deployment, client)
    }

    fn dwa(c: i64, a: i64, d: i64) -> Value {
        Value::record([
            ("c", Value::Int(c)),
            ("a", Value::Int(a)),
            ("d", Value::Int(d)),
        ])
    }

    #[test]
    fn full_banking_day_through_real_channels() {
        let (mut e, dep, client) = world();
        let manager_ch = e
            .open_channel(client, dep.manager.interface, ChannelConfig::default())
            .unwrap();
        let teller_ch = e
            .open_channel(client, dep.teller.interface, ChannelConfig::default())
            .unwrap();

        // The manager opens an account for customer 10.
        let t = e
            .call(
                manager_ch,
                "CreateAccount",
                &Value::record([("c", Value::Int(10)), ("opening", Value::Int(1_000))]),
            )
            .unwrap();
        assert!(t.is_ok());
        let a = t.results.field("a").unwrap().as_int().unwrap();

        // Morning: $400 through the teller interface succeeds.
        let t = e.call(teller_ch, "Withdraw", &dwa(10, a, 400)).unwrap();
        assert_eq!(t.results.field("new_balance"), Some(&Value::Int(600)));

        // Afternoon: $200 more is refused with the paper's NotToday
        // termination carrying today's figure and the limit.
        let t = e.call(teller_ch, "Withdraw", &dwa(10, a, 200)).unwrap();
        assert_eq!(t.name, "NotToday");
        assert_eq!(t.results.field("today"), Some(&Value::Int(400)));
        assert_eq!(t.results.field("daily_limit"), Some(&Value::Int(500)));

        // Deposits still work, balance is intact.
        let t = e.call(teller_ch, "Deposit", &dwa(10, a, 50)).unwrap();
        assert_eq!(t.results.field("new_balance"), Some(&Value::Int(650)));

        // Midnight passes; the limit reopens.
        e.call(manager_ch, "ResetDay", &Value::record::<&str, _>([]))
            .unwrap();
        let t = e.call(teller_ch, "Withdraw", &dwa(10, a, 200)).unwrap();
        assert!(t.is_ok(), "{t:?}");
    }

    #[test]
    fn error_terminations() {
        let (mut e, dep, client) = world();
        let ch = e
            .open_channel(client, dep.teller.interface, ChannelConfig::default())
            .unwrap();
        let t = e.call(ch, "Withdraw", &dwa(1, 99, 10)).unwrap();
        assert_eq!(t.name, "Error");
        assert!(t
            .results
            .field("reason")
            .unwrap()
            .as_text()
            .unwrap()
            .contains("no such account"));
        let t = e
            .call(ch, "Deposit", &Value::record([("a", Value::Int(1))]))
            .unwrap();
        assert_eq!(t.name, "Error");
    }

    #[test]
    fn insufficient_funds_and_invalid_amounts() {
        let (mut e, dep, client) = world();
        let mch = e
            .open_channel(client, dep.manager.interface, ChannelConfig::default())
            .unwrap();
        let t = e
            .call(
                mch,
                "CreateAccount",
                &Value::record([("c", Value::Int(1)), ("opening", Value::Int(100))]),
            )
            .unwrap();
        let a = t.results.field("a").unwrap().as_int().unwrap();
        let t = e.call(mch, "Withdraw", &dwa(1, a, 400)).unwrap();
        assert_eq!(t.name, "Error");
        assert!(t
            .results
            .field("reason")
            .unwrap()
            .as_text()
            .unwrap()
            .contains("insufficient"));
        let t = e.call(mch, "Withdraw", &dwa(1, a, -5)).unwrap();
        assert_eq!(t.name, "Error");
        let t = e
            .call(
                mch,
                "CreateAccount",
                &Value::record([("c", Value::Int(1)), ("opening", Value::Int(-1))]),
            )
            .unwrap();
        assert_eq!(t.name, "Error");
    }

    #[test]
    fn get_balance_is_not_performative_but_works() {
        let (mut e, dep, client) = world();
        let mch = e
            .open_channel(client, dep.manager.interface, ChannelConfig::default())
            .unwrap();
        let t = e
            .call(
                mch,
                "CreateAccount",
                &Value::record([("c", Value::Int(2)), ("opening", Value::Int(77))]),
            )
            .unwrap();
        let a = t.results.field("a").unwrap().as_int().unwrap();
        let t = e
            .call(mch, "GetBalance", &Value::record([("a", Value::Int(a))]))
            .unwrap();
        assert_eq!(t.results.field("balance"), Some(&Value::Int(77)));
    }

    #[test]
    fn trader_and_typerepo_integration() {
        let (mut e, dep, _) = world();
        let mut repo = TypeRepository::new();
        register_types(&mut repo).unwrap();
        let mut trader = Trader::new("bank-district");
        export_to_trader(&mut trader, &dep).unwrap();
        // An importer needing a BankTeller finds both offers: the manager
        // offer matches by substitutability.
        let matches = trader.import(&ImportRequest::new("BankTeller"), Some(&repo));
        assert_eq!(matches.len(), 2);
        // An importer needing a BankManager gets exactly the manager.
        let matches = trader.import(&ImportRequest::new("BankManager"), Some(&repo));
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].offer.interface, dep.manager.interface);
        let _ = e.run_until_idle();
    }

    #[test]
    fn accounts_are_isolated_from_each_other() {
        let (mut e, dep, client) = world();
        let mch = e
            .open_channel(client, dep.manager.interface, ChannelConfig::default())
            .unwrap();
        let mut accounts = Vec::new();
        for c in 0..3 {
            let t = e
                .call(
                    mch,
                    "CreateAccount",
                    &Value::record([("c", Value::Int(c)), ("opening", Value::Int(1_000))]),
                )
                .unwrap();
            accounts.push(t.results.field("a").unwrap().as_int().unwrap());
        }
        // Max out account 0's daily limit; others are unaffected.
        e.call(mch, "Withdraw", &dwa(0, accounts[0], 500)).unwrap();
        let t = e.call(mch, "Withdraw", &dwa(0, accounts[0], 1)).unwrap();
        assert_eq!(t.name, "NotToday");
        let t = e.call(mch, "Withdraw", &dwa(1, accounts[1], 500)).unwrap();
        assert!(t.is_ok());
    }
}
