//! The branch's technology specification (§7).
//!
//! "A technology specification of an ODP system describes the
//! implementation of that system and the information required for
//! testing. RM-ODP has very few rules applicable to technology
//! specifications." Accordingly this module is descriptive: it pins the
//! concrete technology choices of the reference deployment and enumerates
//! the conformance test points a tester would exercise.

use rmodp_core::codec::SyntaxId;
use rmodp_netsim::time::SimDuration;

/// One conformance test point: where a tester observes the implementation
/// to check it against the specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConformancePoint {
    /// A short name.
    pub name: &'static str,
    /// What is observed there.
    pub observes: &'static str,
}

/// The concrete technology choices of the reference bank deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct TechnologySpec {
    /// Native transfer syntax of branch (server) nodes.
    pub server_syntax: SyntaxId,
    /// Native transfer syntax of customer (client) nodes.
    pub client_syntax: SyntaxId,
    /// Inter-node link latency of the reference topology.
    pub link_latency: SimDuration,
    /// The simulation seed of the reference runs (full determinism).
    pub seed: u64,
    /// The conformance test points.
    pub conformance: Vec<ConformancePoint>,
}

/// The standard technology specification used by the examples, tests and
/// benchmarks.
pub fn standard() -> TechnologySpec {
    TechnologySpec {
        server_syntax: SyntaxId::Binary,
        client_syntax: SyntaxId::Text,
        link_latency: SimDuration::from_millis(1),
        seed: 77,
        conformance: vec![
            ConformancePoint {
                name: "programmatic",
                observes: "terminations returned at the teller and manager interfaces",
            },
            ConformancePoint {
                name: "perceptual",
                observes: "wire envelopes at the protocol-object boundary",
            },
            ConformancePoint {
                name: "interworking",
                observes: "marshalled payload equivalence across native syntaxes",
            },
            ConformancePoint {
                name: "interchange",
                observes: "checkpoint bytes written through the storage function",
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_spec_is_heterogeneous() {
        let spec = standard();
        // Access transparency is only exercised when the ends differ.
        assert_ne!(spec.server_syntax, spec.client_syntax);
        assert!(spec.link_latency > SimDuration::ZERO);
    }

    #[test]
    fn conformance_points_cover_the_four_kinds() {
        let spec = standard();
        assert_eq!(spec.conformance.len(), 4);
        for p in &spec.conformance {
            assert!(!p.name.is_empty());
            assert!(!p.observes.is_empty());
        }
    }
}
