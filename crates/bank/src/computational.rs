//! The branch's computational specification (§5, Figures 2 and 3).

use rmodp_computational::binding::Causality;
use rmodp_computational::object::{InterfaceTemplate, ObjectTemplate};
use rmodp_computational::signature::{
    bank_teller_signature, InterfaceSignature, OperationKind, OperationalSignature,
    TerminationSignature,
};
use rmodp_core::dtype::DataType;
use rmodp_core::value::Value;

/// Extends a signature with every operation of another (the `subtype …`
/// notation of Figure 3).
fn extending(base: &OperationalSignature, name: &str) -> OperationalSignature {
    let mut out = OperationalSignature::new(name);
    for (op_name, op) in base.operations().clone() {
        out = match op.kind {
            OperationKind::Announcement => out.announcement(op_name, op.params),
            OperationKind::Interrogation { terminations } => {
                out.interrogation(op_name, op.params, terminations)
            }
        };
    }
    out
}

/// The BankTeller interface type of §5.1 (re-exported from the
/// computational crate, where it is the worked signature example).
pub fn bank_teller() -> OperationalSignature {
    bank_teller_signature()
}

/// The BankManager interface type: everything a teller does, plus
/// CreateAccount (Figure 3).
pub fn bank_manager() -> OperationalSignature {
    extending(&bank_teller(), "BankManager").interrogation(
        "CreateAccount",
        [("c", DataType::Int), ("opening", DataType::Int)],
        vec![
            TerminationSignature::new("OK", [("a", DataType::Int)]),
            TerminationSignature::new("Error", [("reason", DataType::Text)]),
        ],
    )
}

/// The LoansOfficer interface type: everything a teller does, plus
/// ApproveLoan (Figure 3).
pub fn loans_officer() -> OperationalSignature {
    extending(&bank_teller(), "LoansOfficer").interrogation(
        "ApproveLoan",
        [("c", DataType::Int), ("amount", DataType::Int)],
        vec![
            TerminationSignature::new("OK", [] as [(&str, DataType); 0]),
            TerminationSignature::new("Declined", [("reason", DataType::Text)]),
        ],
    )
}

/// Figure 2's bank branch object template: one object offering a
/// BankTeller interface and a BankManager interface, holding customer and
/// account information.
pub fn branch_template() -> ObjectTemplate {
    let teller = InterfaceTemplate::new(
        "teller",
        InterfaceSignature::Operational(bank_teller()),
        Causality::Server,
    )
    .expect("server causality fits operational signatures");
    let manager = InterfaceTemplate::new(
        "manager",
        InterfaceSignature::Operational(bank_manager()),
        Causality::Server,
    )
    .expect("server causality fits operational signatures");
    ObjectTemplate::new("BankBranch")
        .with_state(Value::record([
            ("accounts", Value::record::<&str, _>([])),
            ("next_account", Value::Int(1)),
            ("daily_limit", Value::Int(crate::information::DAILY_LIMIT)),
        ]))
        .with_interface(teller)
        .expect("fresh template")
        .with_interface(manager)
        .expect("fresh template")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmodp_computational::subtype::is_operational_subtype;
    use rmodp_core::id::IdGen;

    #[test]
    fn figure3_subtype_lattice() {
        let teller = bank_teller();
        let manager = bank_manager();
        let officer = loans_officer();
        assert!(is_operational_subtype(&manager, &teller).is_ok());
        assert!(is_operational_subtype(&officer, &teller).is_ok());
        assert!(is_operational_subtype(&teller, &manager).is_err());
        assert!(is_operational_subtype(&officer, &manager).is_err());
        assert!(is_operational_subtype(&manager, &officer).is_err());
    }

    #[test]
    fn figure2_branch_offers_teller_and_manager() {
        let template = branch_template();
        assert_eq!(template.interfaces().len(), 2);
        let objects = IdGen::new();
        let interfaces = IdGen::new();
        let branch = template.instantiate(&objects, &interfaces);
        let teller = branch.interface("teller").unwrap();
        let manager = branch.interface("manager").unwrap();
        // Both can deposit and withdraw; only the manager creates
        // accounts.
        let teller_sig = branch.signature_of(teller.id).unwrap();
        let manager_sig = branch.signature_of(manager.id).unwrap();
        match (teller_sig, manager_sig) {
            (InterfaceSignature::Operational(t), InterfaceSignature::Operational(m)) => {
                assert!(t.operation("Deposit").is_some());
                assert!(t.operation("Withdraw").is_some());
                assert!(t.operation("CreateAccount").is_none());
                assert!(m.operation("CreateAccount").is_some());
            }
            _ => panic!("expected operational signatures"),
        }
    }

    #[test]
    fn withdraw_declares_not_today_termination() {
        let teller = bank_teller();
        let w = teller.operation("Withdraw").unwrap();
        let nt = w.termination("NotToday").unwrap();
        let names: Vec<&str> = nt.results.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["today", "daily_limit"]);
    }
}
