//! The storage function (§8.3): a versioned repository of named byte
//! strings used by deactivation (storing cluster checkpoints), the
//! relocator's persistence, and applications.

use std::collections::BTreeMap;
use std::fmt;

use rmodp_core::naming::Name;

/// A storage failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// No value is stored under the name.
    NotFound { name: Name },
    /// A compare-and-swap expectation failed.
    VersionMismatch {
        name: Name,
        expected: u64,
        actual: u64,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NotFound { name } => write!(f, "nothing stored under {name}"),
            StorageError::VersionMismatch {
                name,
                expected,
                actual,
            } => write!(
                f,
                "version mismatch for {name}: expected {expected}, found {actual}"
            ),
        }
    }
}

impl std::error::Error for StorageError {}

#[derive(Debug, Clone)]
struct Entry {
    version: u64,
    data: Vec<u8>,
    history: Vec<Vec<u8>>,
}

/// A versioned key-value store.
#[derive(Debug, Default)]
pub struct StorageFunction {
    entries: BTreeMap<Name, Entry>,
}

impl StorageFunction {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores (or overwrites) a value; returns the new version (1 for a
    /// fresh name).
    pub fn put(&mut self, name: Name, data: Vec<u8>) -> u64 {
        let entry = self.entries.entry(name).or_insert(Entry {
            version: 0,
            data: Vec::new(),
            history: Vec::new(),
        });
        if entry.version > 0 {
            entry.history.push(std::mem::take(&mut entry.data));
        }
        entry.version += 1;
        entry.data = data;
        entry.version
    }

    /// Stores only if the current version matches `expected` (0 = must not
    /// exist). Returns the new version.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::VersionMismatch`] on a stale expectation.
    pub fn put_if(
        &mut self,
        name: Name,
        expected: u64,
        data: Vec<u8>,
    ) -> Result<u64, StorageError> {
        let actual = self.entries.get(&name).map(|e| e.version).unwrap_or(0);
        if actual != expected {
            return Err(StorageError::VersionMismatch {
                name,
                expected,
                actual,
            });
        }
        Ok(self.put(name, data))
    }

    /// Reads the current value and version.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::NotFound`] for unknown names.
    pub fn get(&self, name: &Name) -> Result<(&[u8], u64), StorageError> {
        self.entries
            .get(name)
            .map(|e| (e.data.as_slice(), e.version))
            .ok_or_else(|| StorageError::NotFound { name: name.clone() })
    }

    /// Reads a historical version (1-based; the current version included).
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::NotFound`] if the name or version is absent.
    pub fn get_version(&self, name: &Name, version: u64) -> Result<&[u8], StorageError> {
        let entry = self
            .entries
            .get(name)
            .ok_or_else(|| StorageError::NotFound { name: name.clone() })?;
        if version == entry.version {
            return Ok(&entry.data);
        }
        let idx = version.checked_sub(1).map(|v| v as usize);
        match idx.and_then(|i| entry.history.get(i)) {
            Some(d) => Ok(d),
            None => Err(StorageError::NotFound { name: name.clone() }),
        }
    }

    /// Deletes a name entirely; returns whether it existed.
    pub fn delete(&mut self, name: &Name) -> bool {
        self.entries.remove(name).is_some()
    }

    /// Names currently stored (sorted).
    pub fn names(&self) -> impl Iterator<Item = &Name> {
        self.entries.keys()
    }

    /// Number of stored names.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn put_get_versions() {
        let mut s = StorageFunction::new();
        assert_eq!(s.put(name("a/b"), vec![1]), 1);
        assert_eq!(s.put(name("a/b"), vec![2]), 2);
        let (data, version) = s.get(&name("a/b")).unwrap();
        assert_eq!((data, version), (&[2u8][..], 2));
        assert_eq!(s.get_version(&name("a/b"), 1).unwrap(), &[1]);
        assert_eq!(s.get_version(&name("a/b"), 2).unwrap(), &[2]);
        assert!(s.get_version(&name("a/b"), 3).is_err());
    }

    #[test]
    fn put_if_enforces_versions() {
        let mut s = StorageFunction::new();
        assert_eq!(s.put_if(name("k"), 0, vec![1]).unwrap(), 1);
        assert!(matches!(
            s.put_if(name("k"), 0, vec![9]),
            Err(StorageError::VersionMismatch {
                expected: 0,
                actual: 1,
                ..
            })
        ));
        assert_eq!(s.put_if(name("k"), 1, vec![2]).unwrap(), 2);
    }

    #[test]
    fn delete_and_not_found() {
        let mut s = StorageFunction::new();
        s.put(name("x"), vec![1]);
        assert!(s.delete(&name("x")));
        assert!(!s.delete(&name("x")));
        assert!(matches!(
            s.get(&name("x")),
            Err(StorageError::NotFound { .. })
        ));
        assert!(s.is_empty());
    }

    #[test]
    fn names_are_sorted() {
        let mut s = StorageFunction::new();
        s.put(name("b"), vec![]);
        s.put(name("a"), vec![]);
        let names: Vec<String> = s.names().map(|n| n.to_string()).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(s.len(), 2);
    }
}
