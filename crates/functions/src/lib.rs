//! # rmodp-functions — the ODP functions (§8)
//!
//! "The ODP functions are a collection of functions expected to be
//! required in ODP systems to support the needs of the computational
//! language (e.g. the trading function) and the engineering language
//! (e.g. the relocator)."
//!
//! This crate provides every function group of §8 except the trader
//! (which has its own crate, mirroring its separate standardisation) and
//! the transaction function (crate `rmodp-transactions`):
//!
//! - [`management`] — node / capsule / cluster / object management (§8.1)
//!   and coordinated checkpointing over the engineering engine;
//! - [`events`] — event notification (§8.2);
//! - [`group`] — groups and replication membership with views and primary
//!   election (§8.2), plus epoch-numbered elected views installed by
//!   majority acknowledgement;
//! - [`detect`] — heartbeat failure detection with deterministic
//!   virtual-time suspicion, feeding view changes;
//! - [`storage`] — the versioned storage function (§8.3);
//! - [`relation`] — the relationship repository (§8.3);
//! - [`relocator`] — the white-pages repository of interface locations
//!   behind relocation transparency (§8.3.3, §9.2);
//! - [`security`] — authentication, access control and audit, after the
//!   OSI security frameworks (§8.4).

pub mod detect;
pub mod events;
pub mod group;
pub mod management;
pub mod relation;
pub mod relocator;
pub mod security;
pub mod storage;

pub use detect::{Detection, DetectorConfig, FailureDetector};
pub use events::EventNotifier;
pub use group::{GroupManager, ReplicationPolicy};
pub use relocator::Relocator;
pub use security::{AccessController, Authenticator};
pub use storage::StorageFunction;
