//! The event-notification function (§8.2).
//!
//! Topic-based notification with durable history: subscribers register
//! interest in a topic and poll for events past their cursor, so
//! notification composes with the deterministic simulator (no hidden
//! callback ordering).

use std::collections::BTreeMap;

use rmodp_core::id::{IdGen, SubscriptionId};
use rmodp_core::value::Value;

/// One notified event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Position in the topic's history (0-based).
    pub offset: u64,
    /// The topic it was emitted on.
    pub topic: String,
    /// The event payload.
    pub payload: Value,
}

#[derive(Debug)]
struct Subscription {
    topic: String,
    cursor: u64,
}

/// The event-notification function.
#[derive(Debug, Default)]
pub struct EventNotifier {
    topics: BTreeMap<String, Vec<Value>>,
    subs: BTreeMap<SubscriptionId, Subscription>,
    sub_gen: IdGen<SubscriptionId>,
}

impl EventNotifier {
    /// Creates an empty notifier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Emits an event on a topic; returns its offset.
    pub fn emit(&mut self, topic: impl Into<String>, payload: Value) -> u64 {
        let history = self.topics.entry(topic.into()).or_default();
        history.push(payload);
        history.len() as u64 - 1
    }

    /// Subscribes to a topic. `from_start` replays history; otherwise only
    /// future events are delivered.
    pub fn subscribe(&mut self, topic: impl Into<String>, from_start: bool) -> SubscriptionId {
        let topic = topic.into();
        let cursor = if from_start {
            0
        } else {
            self.topics.get(&topic).map(|h| h.len() as u64).unwrap_or(0)
        };
        let id = self.sub_gen.fresh();
        self.subs.insert(id, Subscription { topic, cursor });
        id
    }

    /// Cancels a subscription; returns whether it existed.
    pub fn unsubscribe(&mut self, sub: SubscriptionId) -> bool {
        self.subs.remove(&sub).is_some()
    }

    /// Delivers all events past the subscription's cursor and advances it.
    pub fn poll(&mut self, sub: SubscriptionId) -> Vec<Event> {
        let Some(s) = self.subs.get_mut(&sub) else {
            return Vec::new();
        };
        let history = self.topics.get(&s.topic).map(Vec::as_slice).unwrap_or(&[]);
        let out: Vec<Event> = history
            .iter()
            .enumerate()
            .skip(s.cursor as usize)
            .map(|(i, payload)| Event {
                offset: i as u64,
                topic: s.topic.clone(),
                payload: payload.clone(),
            })
            .collect();
        s.cursor = history.len() as u64;
        out
    }

    /// The full history of a topic.
    pub fn history(&self, topic: &str) -> &[Value] {
        self.topics.get(topic).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The topics that have ever seen an event.
    pub fn topics(&self) -> impl Iterator<Item = &str> {
        self.topics.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_then_poll_in_order() {
        let mut n = EventNotifier::new();
        let sub = n.subscribe("rates", true);
        assert_eq!(n.emit("rates", Value::Float(5.0)), 0);
        assert_eq!(n.emit("rates", Value::Float(5.5)), 1);
        let events = n.poll(sub);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].offset, 0);
        assert_eq!(events[1].payload, Value::Float(5.5));
        // Cursor advanced: nothing new.
        assert!(n.poll(sub).is_empty());
        n.emit("rates", Value::Float(6.0));
        assert_eq!(n.poll(sub).len(), 1);
    }

    #[test]
    fn late_subscribers_miss_history_unless_from_start() {
        let mut n = EventNotifier::new();
        n.emit("t", Value::Int(1));
        let fresh = n.subscribe("t", false);
        let replay = n.subscribe("t", true);
        assert!(n.poll(fresh).is_empty());
        assert_eq!(n.poll(replay).len(), 1);
    }

    #[test]
    fn topics_are_independent() {
        let mut n = EventNotifier::new();
        let a = n.subscribe("a", true);
        n.emit("b", Value::Int(1));
        assert!(n.poll(a).is_empty());
        assert_eq!(n.history("b").len(), 1);
        assert_eq!(n.topics().collect::<Vec<_>>(), vec!["b"]);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let mut n = EventNotifier::new();
        let sub = n.subscribe("t", true);
        assert!(n.unsubscribe(sub));
        assert!(!n.unsubscribe(sub));
        n.emit("t", Value::Int(1));
        assert!(n.poll(sub).is_empty());
    }
}
