//! The management functions (§8.1) and coordinated checkpoint/recovery
//! (§8.2), layered over the engineering engine.
//!
//! The paper assigns each management function to a provider:
//!
//! - **node management** (the nucleus) — creating capsules and channels;
//! - **capsule management** (the capsule manager) — instantiating,
//!   checkpointing and deactivating clusters;
//! - **cluster management** (the cluster manager) — checkpointing,
//!   deactivating and migrating clusters;
//! - **object management** (the BEO itself) — checkpointing and deleting
//!   objects.
//!
//! [`ManagementFunctions`] groups those APIs and adds the coordination
//! function's *coordinated checkpoint*: a consistent snapshot of several
//! clusters stored through the storage function, restorable as a unit.

use rmodp_core::id::{CapsuleId, ClusterId, NodeId, ObjectId};
use rmodp_core::naming::Name;
use rmodp_engineering::engine::{EngError, Engine};
use rmodp_engineering::structure::{ClusterCheckpoint, ObjectCheckpoint};

use crate::storage::StorageFunction;

/// A named set of cluster checkpoints taken together.
#[derive(Debug, Clone, PartialEq)]
pub struct CoordinatedCheckpoint {
    /// A label for the checkpoint set.
    pub label: String,
    /// The per-cluster checkpoints with their source coordinates.
    pub clusters: Vec<(NodeId, CapsuleId, ClusterCheckpoint)>,
}

/// The §8.1 management functions over an [`Engine`].
#[derive(Debug)]
pub struct ManagementFunctions<'a> {
    engine: &'a mut Engine,
}

impl<'a> ManagementFunctions<'a> {
    /// Wraps an engine.
    pub fn new(engine: &'a mut Engine) -> Self {
        Self { engine }
    }

    /// Node management: creates a capsule (provided by the nucleus).
    ///
    /// # Errors
    ///
    /// See [`Engine::add_capsule`].
    pub fn create_capsule(&mut self, node: NodeId) -> Result<CapsuleId, EngError> {
        self.engine.add_capsule(node)
    }

    /// Capsule management: instantiates a cluster.
    ///
    /// # Errors
    ///
    /// See [`Engine::add_cluster`].
    pub fn instantiate_cluster(
        &mut self,
        node: NodeId,
        capsule: CapsuleId,
    ) -> Result<ClusterId, EngError> {
        self.engine.add_cluster(node, capsule)
    }

    /// Cluster management: checkpoints a cluster.
    ///
    /// # Errors
    ///
    /// See [`Engine::checkpoint_cluster`].
    pub fn checkpoint(
        &mut self,
        node: NodeId,
        capsule: CapsuleId,
        cluster: ClusterId,
    ) -> Result<ClusterCheckpoint, EngError> {
        self.engine.checkpoint_cluster(node, capsule, cluster)
    }

    /// Cluster management: deactivates a cluster.
    ///
    /// # Errors
    ///
    /// See [`Engine::deactivate_cluster`].
    pub fn deactivate(
        &mut self,
        node: NodeId,
        capsule: CapsuleId,
        cluster: ClusterId,
    ) -> Result<ClusterCheckpoint, EngError> {
        self.engine.deactivate_cluster(node, capsule, cluster)
    }

    /// Capsule management: reactivates a cluster from a checkpoint.
    ///
    /// # Errors
    ///
    /// See [`Engine::reactivate_cluster`].
    pub fn reactivate(
        &mut self,
        node: NodeId,
        capsule: CapsuleId,
        checkpoint: &ClusterCheckpoint,
    ) -> Result<ClusterId, EngError> {
        self.engine.reactivate_cluster(node, capsule, checkpoint)
    }

    /// Cluster management: migrates a cluster.
    ///
    /// # Errors
    ///
    /// See [`Engine::migrate_cluster`].
    pub fn migrate(
        &mut self,
        from: (NodeId, CapsuleId, ClusterId),
        to: (NodeId, CapsuleId),
    ) -> Result<ClusterId, EngError> {
        self.engine
            .migrate_cluster(from.0, from.1, from.2, to.0, to.1)
    }

    /// Object management: deletes an object.
    ///
    /// # Errors
    ///
    /// See [`Engine::delete_object`].
    pub fn delete_object(
        &mut self,
        node: NodeId,
        object: ObjectId,
    ) -> Result<ObjectCheckpoint, EngError> {
        self.engine.delete_object(node, object)
    }

    /// Coordination function: checkpoints several clusters as one
    /// consistent set. The engine is quiescent between
    /// [`Engine::run_until_idle`] calls, so snapshotting the clusters
    /// back-to-back yields a consistent cut.
    ///
    /// # Errors
    ///
    /// Fails atomically: if any cluster cannot be checkpointed, no
    /// checkpoint set is produced.
    pub fn coordinated_checkpoint(
        &mut self,
        label: impl Into<String>,
        clusters: &[(NodeId, CapsuleId, ClusterId)],
    ) -> Result<CoordinatedCheckpoint, EngError> {
        self.engine.run_until_idle();
        let mut out = Vec::with_capacity(clusters.len());
        for &(node, capsule, cluster) in clusters {
            let cp = self.engine.checkpoint_cluster(node, capsule, cluster)?;
            out.push((node, capsule, cp));
        }
        Ok(CoordinatedCheckpoint {
            label: label.into(),
            clusters: out,
        })
    }

    /// Recovery: deactivates whatever remains of the checkpointed
    /// clusters and reactivates every cluster of the set at its recorded
    /// node/capsule. Returns the new cluster ids in set order.
    ///
    /// # Errors
    ///
    /// Propagates reactivation failures (e.g. unregistered behaviours).
    pub fn coordinated_restore(
        &mut self,
        checkpoint: &CoordinatedCheckpoint,
    ) -> Result<Vec<ClusterId>, EngError> {
        let mut new_ids = Vec::with_capacity(checkpoint.clusters.len());
        for (node, capsule, cp) in &checkpoint.clusters {
            // Best effort: the old cluster may already be gone (crash).
            let _ = self.engine.deactivate_cluster(*node, *capsule, cp.cluster);
            let id = self.engine.reactivate_cluster(*node, *capsule, cp)?;
            new_ids.push(id);
        }
        Ok(new_ids)
    }
}

/// Serialises a coordinated checkpoint into the storage function under
/// `checkpoints/<label>`, one entry per cluster, using the binary transfer
/// syntax for object states.
pub fn store_checkpoint(
    storage: &mut StorageFunction,
    checkpoint: &CoordinatedCheckpoint,
) -> Vec<(Name, u64)> {
    use rmodp_core::codec::{syntax_for, SyntaxId};
    use rmodp_core::value::Value;

    let mut stored = Vec::new();
    for (i, (node, capsule, cp)) in checkpoint.clusters.iter().enumerate() {
        let name: Name = format!("checkpoints/{}/{}", checkpoint.label, i)
            .parse()
            .expect("valid checkpoint name");
        let states = Value::Seq(
            cp.objects
                .iter()
                .map(|o| {
                    Value::record([
                        ("object", Value::Int(o.record.object.raw() as i64)),
                        ("behaviour", Value::text(o.record.behaviour.clone())),
                        ("state", o.state.clone()),
                    ])
                })
                .collect(),
        );
        let meta = Value::record([
            ("node", Value::Int(node.raw() as i64)),
            ("capsule", Value::Int(capsule.raw() as i64)),
            ("cluster", Value::Int(cp.cluster.raw() as i64)),
            ("epoch", Value::Int(cp.epoch as i64)),
            ("objects", states),
        ]);
        let bytes = syntax_for(SyntaxId::Binary).encode(&meta);
        let version = storage.put(name.clone(), bytes);
        stored.push((name, version));
    }
    stored
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmodp_core::codec::SyntaxId;
    use rmodp_core::value::Value;
    use rmodp_engineering::behaviour::CounterBehaviour;
    use rmodp_engineering::channel::ChannelConfig;

    fn engine_with_counters() -> (
        Engine,
        Vec<(NodeId, CapsuleId, ClusterId)>,
        Vec<rmodp_engineering::structure::InterfaceRef>,
    ) {
        let mut e = Engine::new(5);
        e.behaviours_mut()
            .register("counter", CounterBehaviour::default);
        let mut clusters = Vec::new();
        let mut refs = Vec::new();
        for _ in 0..2 {
            let node = e.add_node(SyntaxId::Binary);
            let capsule = e.add_capsule(node).unwrap();
            let cluster = e.add_cluster(node, capsule).unwrap();
            let (_, r) = e
                .create_object(
                    node,
                    capsule,
                    cluster,
                    "c",
                    "counter",
                    CounterBehaviour::initial_state(),
                    1,
                )
                .unwrap();
            clusters.push((node, capsule, cluster));
            refs.push(r[0]);
        }
        (e, clusters, refs)
    }

    #[test]
    fn coordinated_checkpoint_and_restore_round_trip() {
        let (mut e, clusters, refs) = engine_with_counters();
        let client = e.add_node(SyntaxId::Binary);
        let ch0 = e
            .open_channel(client, refs[0].interface, ChannelConfig::default())
            .unwrap();
        let ch1 = e
            .open_channel(client, refs[1].interface, ChannelConfig::default())
            .unwrap();
        e.call(ch0, "Add", &Value::record([("k", Value::Int(10))]))
            .unwrap();
        e.call(ch1, "Add", &Value::record([("k", Value::Int(20))]))
            .unwrap();

        let checkpoint = {
            let mut mgmt = ManagementFunctions::new(&mut e);
            mgmt.coordinated_checkpoint("daily", &clusters).unwrap()
        };
        assert_eq!(checkpoint.clusters.len(), 2);

        // More work happens, then disaster: restore the coordinated cut.
        e.call(ch0, "Add", &Value::record([("k", Value::Int(999))]))
            .unwrap();
        {
            let mut mgmt = ManagementFunctions::new(&mut e);
            mgmt.coordinated_restore(&checkpoint).unwrap();
        }
        // Redirect to the reactivated interfaces and observe the cut.
        let r0 = e.lookup(refs[0].interface).unwrap();
        let r1 = e.lookup(refs[1].interface).unwrap();
        e.redirect_channel(ch0, r0).unwrap();
        e.redirect_channel(ch1, r1).unwrap();
        let t0 = e.call(ch0, "Get", &Value::record::<&str, _>([])).unwrap();
        let t1 = e.call(ch1, "Get", &Value::record::<&str, _>([])).unwrap();
        assert_eq!(t0.results.field("n"), Some(&Value::Int(10)));
        assert_eq!(t1.results.field("n"), Some(&Value::Int(20)));
    }

    #[test]
    fn checkpoint_fails_atomically_on_unknown_cluster() {
        let (mut e, mut clusters, _) = engine_with_counters();
        clusters.push((clusters[0].0, clusters[0].1, ClusterId::new(999)));
        let mut mgmt = ManagementFunctions::new(&mut e);
        assert!(mgmt.coordinated_checkpoint("bad", &clusters).is_err());
    }

    #[test]
    fn store_checkpoint_persists_states() {
        let (mut e, clusters, _) = engine_with_counters();
        let checkpoint = {
            let mut mgmt = ManagementFunctions::new(&mut e);
            mgmt.coordinated_checkpoint("persisted", &clusters).unwrap()
        };
        let mut storage = StorageFunction::new();
        let stored = store_checkpoint(&mut storage, &checkpoint);
        assert_eq!(stored.len(), 2);
        for (name, version) in stored {
            assert_eq!(version, 1);
            let (bytes, _) = storage.get(&name).unwrap();
            assert!(!bytes.is_empty());
        }
    }

    #[test]
    fn management_facade_migrates() {
        let (mut e, clusters, refs) = engine_with_counters();
        let (node0, capsule0, cluster0) = clusters[0];
        let target = e.add_node(SyntaxId::Text);
        let target_capsule = e.add_capsule(target).unwrap();
        let new_cluster = {
            let mut mgmt = ManagementFunctions::new(&mut e);
            mgmt.migrate((node0, capsule0, cluster0), (target, target_capsule))
                .unwrap()
        };
        assert_ne!(new_cluster, cluster0);
        assert_eq!(e.lookup(refs[0].interface).unwrap().location.node, target);
    }
}
