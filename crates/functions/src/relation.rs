//! The relationship repository (§8.3): a general store of typed
//! relationships between identified entities, queryable from either end.

use std::collections::BTreeSet;

/// One relationship triple.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Relationship {
    /// The relationship kind (e.g. `"owns"`, `"member_of"`).
    pub kind: String,
    /// The subject entity.
    pub subject: u64,
    /// The object entity.
    pub object: u64,
}

/// The general relationship repository.
#[derive(Debug, Default)]
pub struct RelationshipRepository {
    triples: BTreeSet<Relationship>,
}

impl RelationshipRepository {
    /// Creates an empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a relationship; returns `false` if it already existed.
    pub fn relate(&mut self, kind: impl Into<String>, subject: u64, object: u64) -> bool {
        self.triples.insert(Relationship {
            kind: kind.into(),
            subject,
            object,
        })
    }

    /// Removes a relationship; returns whether it existed.
    pub fn unrelate(&mut self, kind: &str, subject: u64, object: u64) -> bool {
        self.triples.remove(&Relationship {
            kind: kind.to_owned(),
            subject,
            object,
        })
    }

    /// Whether the relationship holds.
    pub fn holds(&self, kind: &str, subject: u64, object: u64) -> bool {
        self.triples.contains(&Relationship {
            kind: kind.to_owned(),
            subject,
            object,
        })
    }

    /// Objects related to a subject under a kind.
    pub fn objects_of(&self, kind: &str, subject: u64) -> Vec<u64> {
        self.triples
            .iter()
            .filter(|r| r.kind == kind && r.subject == subject)
            .map(|r| r.object)
            .collect()
    }

    /// Subjects related to an object under a kind.
    pub fn subjects_of(&self, kind: &str, object: u64) -> Vec<u64> {
        self.triples
            .iter()
            .filter(|r| r.kind == kind && r.object == object)
            .map(|r| r.subject)
            .collect()
    }

    /// Removes every relationship an entity participates in (either
    /// role); returns how many were removed.
    pub fn purge_entity(&mut self, entity: u64) -> usize {
        let before = self.triples.len();
        self.triples
            .retain(|r| r.subject != entity && r.object != entity);
        before - self.triples.len()
    }

    /// The transitive closure of a kind from a subject (e.g. nested
    /// community membership).
    pub fn reachable(&self, kind: &str, from: u64) -> Vec<u64> {
        let mut seen = BTreeSet::new();
        let mut frontier = vec![from];
        while let Some(node) = frontier.pop() {
            for next in self.objects_of(kind, node) {
                if seen.insert(next) {
                    frontier.push(next);
                }
            }
        }
        seen.into_iter().collect()
    }

    /// Number of stored relationships.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relate_query_unrelate() {
        let mut repo = RelationshipRepository::new();
        assert!(repo.relate("owns", 1, 100));
        assert!(!repo.relate("owns", 1, 100)); // duplicate
        repo.relate("owns", 1, 101);
        repo.relate("owns", 2, 100);
        assert!(repo.holds("owns", 1, 100));
        assert_eq!(repo.objects_of("owns", 1), vec![100, 101]);
        assert_eq!(repo.subjects_of("owns", 100), vec![1, 2]);
        assert!(repo.unrelate("owns", 1, 100));
        assert!(!repo.holds("owns", 1, 100));
    }

    #[test]
    fn kinds_are_disjoint() {
        let mut repo = RelationshipRepository::new();
        repo.relate("owns", 1, 2);
        repo.relate("manages", 1, 3);
        assert_eq!(repo.objects_of("owns", 1), vec![2]);
        assert_eq!(repo.objects_of("manages", 1), vec![3]);
        assert!(!repo.holds("owns", 1, 3));
    }

    #[test]
    fn purge_removes_both_roles() {
        let mut repo = RelationshipRepository::new();
        repo.relate("a", 1, 2);
        repo.relate("a", 2, 3);
        repo.relate("a", 4, 5);
        assert_eq!(repo.purge_entity(2), 2);
        assert_eq!(repo.len(), 1);
    }

    #[test]
    fn reachable_computes_transitive_closure() {
        let mut repo = RelationshipRepository::new();
        repo.relate("in", 1, 2);
        repo.relate("in", 2, 3);
        repo.relate("in", 3, 4);
        repo.relate("in", 9, 1); // irrelevant direction
        assert_eq!(repo.reachable("in", 1), vec![2, 3, 4]);
        assert_eq!(repo.reachable("in", 4), Vec::<u64>::new());
        // Cycles terminate.
        repo.relate("in", 4, 1);
        assert_eq!(repo.reachable("in", 1), vec![1, 2, 3, 4]);
    }
}
