//! Heartbeat-based failure detection on virtual time.
//!
//! A group view is only useful if something notices that a member has
//! stopped answering. The [`FailureDetector`] probes each watched
//! interface from a monitor node over an ordinary engineering channel
//! with a short one-shot timeout; every probe therefore consumes a
//! deterministic amount of *virtual* time whether it is answered or
//! not, so detection latency — and everything downstream of it, like
//! failover MTTR — is exactly reproducible for a given seed.
//!
//! A member missing [`DetectorConfig::suspect_after`] consecutive
//! probes becomes **suspected** (a `suspect` event, counted on
//! `detector.suspects`); a suspected member that answers again is
//! **restored** (`restore`, `detector.restores`). Suspicion is the
//! trigger for a quorum election
//! ([`ReplicatedService::fail_over`]); it is deliberately only a
//! *hint* — safety never depends on the detector being right, only
//! liveness does, because a wrongly suspected leader is fenced by the
//! epoch machinery rather than trusted to be dead.
//!
//! [`ReplicatedService::fail_over`]: ../../rmodp_transparency/replication/struct.ReplicatedService.html#method.fail_over

use std::collections::BTreeMap;

use rmodp_core::id::{InterfaceId, NodeId};
use rmodp_core::value::Value;
use rmodp_engineering::channel::{ChannelConfig, RetryPolicy};
use rmodp_engineering::engine::Engine;
use rmodp_netsim::time::SimDuration;
use rmodp_observe::{bus, event, EventKind, Layer};

/// Deterministic timing knobs of the [`FailureDetector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Virtual-time gap between probe rounds ([`FailureDetector::run_round`]
    /// idles the simulation up to one period from the round's start).
    pub period: SimDuration,
    /// How long a single probe waits for an answer.
    pub timeout: SimDuration,
    /// Consecutive misses before a member is suspected.
    pub suspect_after: u32,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            period: SimDuration::from_millis(20),
            timeout: SimDuration::from_millis(10),
            suspect_after: 2,
        }
    }
}

/// What a probe round observed about one member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detection {
    /// The member crossed the miss threshold and is now suspected.
    Suspected(InterfaceId),
    /// A suspected member answered and is trusted again.
    Restored(InterfaceId),
}

#[derive(Debug)]
struct MemberHealth {
    channel: Option<rmodp_core::id::ChannelId>,
    misses: u32,
    suspected: bool,
}

/// A heartbeat failure detector probing watched interfaces from one
/// monitor node. See the module docs for semantics.
#[derive(Debug)]
pub struct FailureDetector {
    monitor: NodeId,
    config: DetectorConfig,
    members: BTreeMap<InterfaceId, MemberHealth>,
}

impl FailureDetector {
    /// Creates a detector probing from `monitor`.
    pub fn new(monitor: NodeId, config: DetectorConfig) -> Self {
        Self {
            monitor,
            config,
            members: BTreeMap::new(),
        }
    }

    /// The timing configuration in force.
    pub fn config(&self) -> DetectorConfig {
        self.config
    }

    /// Starts watching an interface (idempotent).
    pub fn watch(&mut self, member: InterfaceId) {
        self.members.entry(member).or_insert(MemberHealth {
            channel: None,
            misses: 0,
            suspected: false,
        });
    }

    /// Stops watching an interface and forgets its health.
    pub fn unwatch(&mut self, member: InterfaceId) {
        self.members.remove(&member);
    }

    /// Whether a member is currently suspected.
    pub fn is_suspected(&self, member: InterfaceId) -> bool {
        self.members
            .get(&member)
            .map(|h| h.suspected)
            .unwrap_or(false)
    }

    /// All currently suspected members, in id order.
    pub fn suspected(&self) -> Vec<InterfaceId> {
        self.members
            .iter()
            .filter(|(_, h)| h.suspected)
            .map(|(m, _)| *m)
            .collect()
    }

    /// All members that are watched and *not* suspected, in id order.
    pub fn trusted(&self) -> Vec<InterfaceId> {
        self.members
            .iter()
            .filter(|(_, h)| !h.suspected)
            .map(|(m, _)| *m)
            .collect()
    }

    /// Probes every watched member once, in id order, then idles the
    /// simulation to one detector period past the round's start (so
    /// repeated rounds tick deterministically even when every member
    /// answers fast). Returns the suspicion transitions of this round.
    pub fn run_round(&mut self, engine: &mut Engine) -> Vec<Detection> {
        let round_start = engine.now();
        let mut transitions = Vec::new();
        let ids: Vec<InterfaceId> = self.members.keys().copied().collect();
        for member in ids {
            let answered = self.probe(engine, member);
            let health = self.members.get_mut(&member).expect("watched");
            if answered {
                health.misses = 0;
                if health.suspected {
                    health.suspected = false;
                    bus::counter_add("detector.restores", 1);
                    event(Layer::Functions, EventKind::Restore)
                        .in_context()
                        .detail(format!("member={}", member.raw()))
                        .emit();
                    transitions.push(Detection::Restored(member));
                }
            } else {
                health.misses += 1;
                if !health.suspected && health.misses >= self.config.suspect_after {
                    health.suspected = true;
                    bus::counter_add("detector.suspects", 1);
                    event(Layer::Functions, EventKind::Suspect)
                        .in_context()
                        .detail(format!("member={} misses={}", member.raw(), health.misses))
                        .emit();
                    transitions.push(Detection::Suspected(member));
                }
            }
        }
        let next = round_start + self.config.period;
        if engine.now() < next {
            engine.sim_mut().run_until(next);
        }
        transitions
    }

    /// Runs rounds until `deadline` (at least one). Convenience for
    /// soaks: the detector self-paces on its period.
    pub fn run_until(
        &mut self,
        engine: &mut Engine,
        deadline: rmodp_netsim::time::SimTime,
    ) -> Vec<Detection> {
        let mut all = Vec::new();
        loop {
            all.extend(self.run_round(engine));
            if engine.now() >= deadline {
                return all;
            }
        }
    }

    /// One probe: any termination (even an application `Error`) counts
    /// as liveness; only transport-level failure counts as a miss.
    fn probe(&mut self, engine: &mut Engine, member: InterfaceId) -> bool {
        let health = self.members.get_mut(&member).expect("watched");
        if health.channel.is_none() {
            let config = ChannelConfig {
                retry: Some(
                    RetryPolicy::one_shot()
                        .with_timeout(self.config.timeout)
                        .with_deadline(self.config.timeout),
                ),
                ..ChannelConfig::default()
            };
            health.channel = engine.open_channel(self.monitor, member, config).ok();
        }
        let Some(channel) = health.channel else {
            return false;
        };
        bus::counter_add("detector.probes", 1);
        let answered = engine
            .call(channel, "Ping", &Value::record::<&str, _>([]))
            .is_ok();
        event(Layer::Functions, EventKind::Heartbeat)
            .in_context()
            .detail(format!(
                "member={} {}",
                member.raw(),
                if answered { "ack" } else { "miss" }
            ))
            .emit();
        answered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmodp_core::codec::SyntaxId;
    use rmodp_engineering::behaviour::CounterBehaviour;

    fn world() -> (Engine, NodeId, InterfaceId) {
        let mut engine = Engine::new(7);
        engine
            .behaviours_mut()
            .register("counter", CounterBehaviour::default);
        let server = engine.add_node(SyntaxId::Binary);
        let capsule = engine.add_capsule(server).unwrap();
        let cluster = engine.add_cluster(server, capsule).unwrap();
        let (_, refs) = engine
            .create_object(
                server,
                capsule,
                cluster,
                "c",
                "counter",
                CounterBehaviour::initial_state(),
                1,
            )
            .unwrap();
        (engine, server, refs[0].interface)
    }

    #[test]
    fn suspects_after_threshold_and_restores_on_answer() {
        let (mut engine, server, interface) = world();
        let mut detector =
            FailureDetector::new(engine.add_node(SyntaxId::Binary), DetectorConfig::default());
        detector.watch(interface);
        assert!(detector.run_round(&mut engine).is_empty());
        assert!(!detector.is_suspected(interface));

        let idx = engine.sim_node(server).unwrap();
        engine.sim_mut().topology_mut().crash(idx);
        // First miss: below the threshold of 2.
        assert!(detector.run_round(&mut engine).is_empty());
        // Second miss: suspected.
        assert_eq!(
            detector.run_round(&mut engine),
            vec![Detection::Suspected(interface)]
        );
        assert_eq!(detector.suspected(), vec![interface]);
        assert!(detector.trusted().is_empty());
        // Stays suspected without re-announcing.
        assert!(detector.run_round(&mut engine).is_empty());

        engine.sim_mut().topology_mut().restart(idx);
        assert_eq!(
            detector.run_round(&mut engine),
            vec![Detection::Restored(interface)]
        );
        assert!(!detector.is_suspected(interface));
        assert!(bus::counter("detector.probes") >= 5);
        assert_eq!(bus::counter("detector.suspects"), 1);
        assert_eq!(bus::counter("detector.restores"), 1);
    }

    #[test]
    fn rounds_consume_deterministic_virtual_time() {
        let (mut engine, _server, interface) = world();
        let monitor = engine.add_node(SyntaxId::Binary);
        let mut detector = FailureDetector::new(monitor, DetectorConfig::default());
        detector.watch(interface);
        let t0 = engine.now();
        detector.run_round(&mut engine);
        let after_one = engine.now();
        // A healthy round still advances exactly one period.
        assert_eq!(after_one, t0 + DetectorConfig::default().period);
        detector.run_round(&mut engine);
        assert_eq!(engine.now(), after_one + DetectorConfig::default().period);
    }
}
