//! Groups and replication membership (§8.2).
//!
//! Replication transparency (§9) needs a *group* abstraction: a set of
//! replica interfaces presented behind a common interface. This module
//! manages group membership as numbered **views** with deterministic
//! primary election; the transparency layer disseminates updates to the
//! members of the current view.

use std::collections::BTreeMap;
use std::fmt;

use rmodp_core::id::{GroupId, IdGen, InterfaceId};
use rmodp_observe::{bus, event, EventKind, Layer};

/// How many views a group's [`view_log`] retains before evicting the
/// oldest: long chaos soaks churn views without bounding memory
/// otherwise. Evictions are counted per group and on the
/// `group.view_log_evicted` bus counter.
///
/// [`view_log`]: GroupManager::view_log
pub const VIEW_LOG_CAP: usize = 64;

/// How updates are propagated to the group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationPolicy {
    /// All updates go to the primary, which is re-elected on failure;
    /// reads may go anywhere.
    PrimaryCopy,
    /// Every update goes to every member.
    Active,
}

/// One numbered membership view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct View {
    /// Monotone view number (starts at 1).
    pub number: u64,
    /// Fencing epoch. Membership changes (`join`/`leave`) bump `number`
    /// but keep the epoch; only an elected view installed by majority
    /// acknowledgement ([`GroupManager::install_view`]) advances it.
    pub epoch: u64,
    /// Members in deterministic (insertion) order.
    pub members: Vec<InterfaceId>,
    /// The primary (lowest-id member) — meaningful under
    /// [`ReplicationPolicy::PrimaryCopy`].
    pub primary: Option<InterfaceId>,
    /// The elected leader holding this view's epoch, once a quorum
    /// election has run ([`GroupManager::install_view`]); `None` for
    /// purely membership-managed groups.
    pub leader: Option<InterfaceId>,
}

impl View {
    /// How many acknowledgements constitute a majority of this view.
    pub fn majority(&self) -> usize {
        self.members.len() / 2 + 1
    }
}

/// A group-management failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupError {
    /// The group does not exist.
    UnknownGroup { group: GroupId },
    /// The member is already in the group.
    AlreadyMember { member: InterfaceId },
    /// The member is not in the group.
    NotMember { member: InterfaceId },
    /// A view install carried an epoch at or below the current one.
    StaleEpoch { epoch: u64, current: u64 },
    /// A view install was acknowledged by fewer than a majority of the
    /// previous view's members.
    NoQuorum { acks: usize, needed: usize },
}

impl fmt::Display for GroupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupError::UnknownGroup { group } => write!(f, "unknown group {group}"),
            GroupError::AlreadyMember { member } => write!(f, "{member} is already a member"),
            GroupError::NotMember { member } => write!(f, "{member} is not a member"),
            GroupError::StaleEpoch { epoch, current } => {
                write!(f, "epoch {epoch} is not above the current epoch {current}")
            }
            GroupError::NoQuorum { acks, needed } => {
                write!(f, "{acks} acks where a majority needs {needed}")
            }
        }
    }
}

impl std::error::Error for GroupError {}

#[derive(Debug)]
struct Group {
    policy: ReplicationPolicy,
    members: Vec<InterfaceId>,
    view_number: u64,
    epoch: u64,
    leader: Option<InterfaceId>,
    view_log: Vec<View>,
    view_log_evicted: u64,
}

impl Group {
    fn current_view(&self) -> View {
        View {
            number: self.view_number,
            epoch: self.epoch,
            members: self.members.clone(),
            primary: self.members.iter().min().copied(),
            leader: self.leader,
        }
    }

    fn bump(&mut self) {
        self.view_number += 1;
        let v = self.current_view();
        self.view_log.push(v);
        // The log is a ring of the most recent VIEW_LOG_CAP views.
        while self.view_log.len() > VIEW_LOG_CAP {
            self.view_log.remove(0);
            self.view_log_evicted += 1;
            bus::counter_add("group.view_log_evicted", 1);
        }
    }
}

/// The group/replication function: creates groups, manages membership
/// views, answers "who should receive this update".
#[derive(Debug, Default)]
pub struct GroupManager {
    groups: BTreeMap<GroupId, Group>,
    gen: IdGen<GroupId>,
}

impl GroupManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a group with initial members.
    pub fn create(
        &mut self,
        policy: ReplicationPolicy,
        members: impl IntoIterator<Item = InterfaceId>,
    ) -> GroupId {
        let id = self.gen.fresh();
        let mut group = Group {
            policy,
            members: members.into_iter().collect(),
            view_number: 0,
            epoch: 0,
            leader: None,
            view_log: Vec::new(),
            view_log_evicted: 0,
        };
        group.bump();
        self.groups.insert(id, group);
        id
    }

    /// The current view of a group.
    ///
    /// # Errors
    ///
    /// Unknown group.
    pub fn view(&self, group: GroupId) -> Result<View, GroupError> {
        Ok(self
            .groups
            .get(&group)
            .ok_or(GroupError::UnknownGroup { group })?
            .current_view())
    }

    /// The group's replication policy.
    ///
    /// # Errors
    ///
    /// Unknown group.
    pub fn policy(&self, group: GroupId) -> Result<ReplicationPolicy, GroupError> {
        Ok(self
            .groups
            .get(&group)
            .ok_or(GroupError::UnknownGroup { group })?
            .policy)
    }

    /// Adds a member, creating a new view.
    ///
    /// # Errors
    ///
    /// Unknown group or duplicate member.
    pub fn join(&mut self, group: GroupId, member: InterfaceId) -> Result<View, GroupError> {
        let g = self
            .groups
            .get_mut(&group)
            .ok_or(GroupError::UnknownGroup { group })?;
        if g.members.contains(&member) {
            return Err(GroupError::AlreadyMember { member });
        }
        g.members.push(member);
        g.bump();
        Ok(g.current_view())
    }

    /// Removes a member (e.g. on failure detection), creating a new view.
    /// Primary re-election is implicit: the new view's primary is its
    /// lowest-id member.
    ///
    /// # Errors
    ///
    /// Unknown group or non-member.
    pub fn leave(&mut self, group: GroupId, member: InterfaceId) -> Result<View, GroupError> {
        let g = self
            .groups
            .get_mut(&group)
            .ok_or(GroupError::UnknownGroup { group })?;
        let before = g.members.len();
        g.members.retain(|m| *m != member);
        if g.members.len() == before {
            return Err(GroupError::NotMember { member });
        }
        g.bump();
        Ok(g.current_view())
    }

    /// The members an *update* must reach under the group's policy.
    ///
    /// # Errors
    ///
    /// Unknown group.
    pub fn update_targets(&self, group: GroupId) -> Result<Vec<InterfaceId>, GroupError> {
        let g = self
            .groups
            .get(&group)
            .ok_or(GroupError::UnknownGroup { group })?;
        Ok(match g.policy {
            ReplicationPolicy::Active => g.members.clone(),
            ReplicationPolicy::PrimaryCopy => g.members.iter().min().copied().into_iter().collect(),
        })
    }

    /// A deterministic member to serve a *read* (round-robin by request
    /// number so load spreads yet stays reproducible).
    ///
    /// # Errors
    ///
    /// Unknown group.
    pub fn read_target(
        &self,
        group: GroupId,
        request_no: u64,
    ) -> Result<Option<InterfaceId>, GroupError> {
        let g = self
            .groups
            .get(&group)
            .ok_or(GroupError::UnknownGroup { group })?;
        if g.members.is_empty() {
            return Ok(None);
        }
        Ok(Some(
            g.members[(request_no % g.members.len() as u64) as usize],
        ))
    }

    /// Installs an **elected** view at a strictly higher epoch, on the
    /// strength of `acks` election acknowledgements. The quorum rule is
    /// the heart of the no-split-brain argument: the install is refused
    /// unless a majority *of the previous view's members* acknowledged
    /// the new epoch, so any two installed epochs share an acker, and a
    /// replica that acked epoch `e+1` fences every write at epoch `e`.
    ///
    /// Emits a `view_change` event (group/epoch/leader/watermark detail)
    /// and bumps the `group.view_changes` counter.
    ///
    /// # Errors
    ///
    /// Unknown group, stale epoch, leader outside `members`, or fewer
    /// acks than a majority of the previous view.
    pub fn install_view(
        &mut self,
        group: GroupId,
        epoch: u64,
        leader: InterfaceId,
        members: Vec<InterfaceId>,
        acks: usize,
        commit_watermark: u64,
    ) -> Result<View, GroupError> {
        let g = self
            .groups
            .get_mut(&group)
            .ok_or(GroupError::UnknownGroup { group })?;
        if epoch <= g.epoch {
            return Err(GroupError::StaleEpoch {
                epoch,
                current: g.epoch,
            });
        }
        if !members.contains(&leader) {
            return Err(GroupError::NotMember { member: leader });
        }
        let needed = g.current_view().majority();
        if acks < needed {
            return Err(GroupError::NoQuorum { acks, needed });
        }
        g.epoch = epoch;
        g.leader = Some(leader);
        g.members = members;
        g.bump();
        bus::counter_add("group.view_changes", 1);
        event(Layer::Functions, EventKind::ViewChange)
            .in_context()
            .detail(format!(
                "group={} epoch={} leader={} members={} acks={} watermark={}",
                group.raw(),
                epoch,
                leader.raw(),
                g.members.len(),
                acks,
                commit_watermark,
            ))
            .emit();
        Ok(g.current_view())
    }

    /// The full view history of a group.
    pub fn view_log(&self, group: GroupId) -> &[View] {
        self.groups
            .get(&group)
            .map(|g| g.view_log.as_slice())
            .unwrap_or(&[])
    }

    /// How many old views have been evicted from a group's bounded
    /// view log (ring of the last [`VIEW_LOG_CAP`]).
    pub fn view_log_evicted(&self, group: GroupId) -> u64 {
        self.groups
            .get(&group)
            .map(|g| g.view_log_evicted)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ifc(i: u64) -> InterfaceId {
        InterfaceId::new(i)
    }

    #[test]
    fn create_and_view() {
        let mut gm = GroupManager::new();
        let g = gm.create(ReplicationPolicy::Active, [ifc(3), ifc(1), ifc(2)]);
        let v = gm.view(g).unwrap();
        assert_eq!(v.number, 1);
        assert_eq!(v.members, vec![ifc(3), ifc(1), ifc(2)]);
        assert_eq!(v.primary, Some(ifc(1)));
    }

    #[test]
    fn join_and_leave_bump_views() {
        let mut gm = GroupManager::new();
        let g = gm.create(ReplicationPolicy::PrimaryCopy, [ifc(1), ifc(2)]);
        let v = gm.join(g, ifc(3)).unwrap();
        assert_eq!(v.number, 2);
        assert!(matches!(
            gm.join(g, ifc(3)),
            Err(GroupError::AlreadyMember { .. })
        ));
        let v = gm.leave(g, ifc(1)).unwrap();
        assert_eq!(v.number, 3);
        // Primary re-elected deterministically.
        assert_eq!(v.primary, Some(ifc(2)));
        assert!(matches!(
            gm.leave(g, ifc(1)),
            Err(GroupError::NotMember { .. })
        ));
        assert_eq!(gm.view_log(g).len(), 3);
    }

    #[test]
    fn update_targets_follow_policy() {
        let mut gm = GroupManager::new();
        let active = gm.create(ReplicationPolicy::Active, [ifc(1), ifc(2), ifc(3)]);
        let primary = gm.create(ReplicationPolicy::PrimaryCopy, [ifc(5), ifc(4)]);
        assert_eq!(
            gm.update_targets(active).unwrap(),
            vec![ifc(1), ifc(2), ifc(3)]
        );
        assert_eq!(gm.update_targets(primary).unwrap(), vec![ifc(4)]);
    }

    #[test]
    fn read_targets_round_robin() {
        let mut gm = GroupManager::new();
        let g = gm.create(ReplicationPolicy::Active, [ifc(1), ifc(2)]);
        assert_eq!(gm.read_target(g, 0).unwrap(), Some(ifc(1)));
        assert_eq!(gm.read_target(g, 1).unwrap(), Some(ifc(2)));
        assert_eq!(gm.read_target(g, 2).unwrap(), Some(ifc(1)));
        let empty = gm.create(ReplicationPolicy::Active, []);
        assert_eq!(gm.read_target(empty, 0).unwrap(), None);
    }

    #[test]
    fn install_view_demands_majority_and_fresh_epoch() {
        let mut gm = GroupManager::new();
        let g = gm.create(ReplicationPolicy::Active, [ifc(1), ifc(2), ifc(3)]);
        // 1 ack of a 3-member view is short of the majority (2).
        assert_eq!(
            gm.install_view(g, 1, ifc(2), vec![ifc(2), ifc(3)], 1, 0),
            Err(GroupError::NoQuorum { acks: 1, needed: 2 })
        );
        let v = gm
            .install_view(g, 1, ifc(2), vec![ifc(2), ifc(3)], 2, 0)
            .unwrap();
        assert_eq!(v.epoch, 1);
        assert_eq!(v.leader, Some(ifc(2)));
        assert_eq!(v.members, vec![ifc(2), ifc(3)]);
        // A competing install at the same epoch is stale.
        assert_eq!(
            gm.install_view(g, 1, ifc(3), vec![ifc(3)], 2, 0),
            Err(GroupError::StaleEpoch {
                epoch: 1,
                current: 1
            })
        );
        // A leader outside the proposed membership is refused.
        assert!(matches!(
            gm.install_view(g, 2, ifc(9), vec![ifc(2), ifc(3)], 2, 0),
            Err(GroupError::NotMember { .. })
        ));
        // Membership churn keeps the epoch.
        let v = gm.join(g, ifc(4)).unwrap();
        assert_eq!(v.epoch, 1);
        assert_eq!(v.leader, Some(ifc(2)));
    }

    #[test]
    fn view_log_is_a_bounded_ring() {
        let mut gm = GroupManager::new();
        let g = gm.create(ReplicationPolicy::Active, [ifc(1)]);
        for i in 0..(VIEW_LOG_CAP as u64 + 20) {
            gm.join(g, ifc(100 + i)).unwrap();
            gm.leave(g, ifc(100 + i)).unwrap();
        }
        let log = gm.view_log(g);
        assert_eq!(log.len(), VIEW_LOG_CAP);
        // 1 create + 2 per iteration, minus what the ring retains.
        let total = 1 + 2 * (VIEW_LOG_CAP as u64 + 20);
        assert_eq!(gm.view_log_evicted(g), total - VIEW_LOG_CAP as u64);
        // The retained suffix is the most recent views, in order.
        assert_eq!(log.last().unwrap().number, total);
        assert_eq!(log.first().unwrap().number, total - VIEW_LOG_CAP as u64 + 1);
        assert_eq!(gm.view_log_evicted(GroupId::new(77)), 0);
    }

    #[test]
    fn unknown_group_errors() {
        let gm = GroupManager::new();
        let ghost = GroupId::new(99);
        assert!(matches!(
            gm.view(ghost),
            Err(GroupError::UnknownGroup { .. })
        ));
        assert!(matches!(
            gm.update_targets(ghost),
            Err(GroupError::UnknownGroup { .. })
        ));
        assert!(gm.view_log(ghost).is_empty());
    }
}
