//! The relocator: a repository of interface locations (§8.3.3).
//!
//! "The relocator is a repository of interface locations (a white pages
//! service). This information is needed by relocation transparency."
//! Binders register and retrieve interface locations here; when a cached
//! location turns out stale, the binder requeries, reconnects and replays
//! (§9.2).

use std::collections::BTreeMap;
use std::fmt;

use rmodp_core::id::InterfaceId;
use rmodp_engineering::structure::InterfaceRef;

/// A relocator failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelocatorError {
    /// The interface has never been registered.
    Unknown { interface: InterfaceId },
    /// An update regressed the epoch (updates must be monotone).
    StaleUpdate {
        interface: InterfaceId,
        current: u64,
        offered: u64,
    },
}

impl fmt::Display for RelocatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelocatorError::Unknown { interface } => {
                write!(f, "relocator knows nothing about {interface}")
            }
            RelocatorError::StaleUpdate {
                interface,
                current,
                offered,
            } => write!(
                f,
                "stale update for {interface}: epoch {offered} <= current {current}"
            ),
        }
    }
}

impl std::error::Error for RelocatorError {}

/// Counters for the relocator's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelocatorStats {
    /// Successful lookups.
    pub lookups: u64,
    /// Lookups for unknown or deactivated interfaces.
    pub misses: u64,
    /// Location updates accepted.
    pub updates: u64,
    /// Updates rejected as stale.
    pub stale_updates: u64,
}

/// The white-pages repository of interface locations.
#[derive(Debug, Default)]
pub struct Relocator {
    /// Active locations by interface.
    locations: BTreeMap<InterfaceId, InterfaceRef>,
    /// Highest epoch ever seen per interface (survives deactivation).
    epochs: BTreeMap<InterfaceId, u64>,
    stats: RelocatorStats,
}

impl Relocator {
    /// Creates an empty relocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers or updates an interface's location. Epochs must be
    /// strictly increasing across updates.
    ///
    /// # Errors
    ///
    /// Returns [`RelocatorError::StaleUpdate`] for non-monotone epochs.
    pub fn register(&mut self, r: InterfaceRef) -> Result<(), RelocatorError> {
        let current = self.epochs.get(&r.interface).copied().unwrap_or(0);
        if r.epoch <= current && self.locations.contains_key(&r.interface) {
            self.stats.stale_updates += 1;
            return Err(RelocatorError::StaleUpdate {
                interface: r.interface,
                current,
                offered: r.epoch,
            });
        }
        if r.epoch < current {
            self.stats.stale_updates += 1;
            return Err(RelocatorError::StaleUpdate {
                interface: r.interface,
                current,
                offered: r.epoch,
            });
        }
        self.epochs.insert(r.interface, r.epoch);
        self.locations.insert(r.interface, r);
        self.stats.updates += 1;
        Ok(())
    }

    /// Marks an interface deactivated (no current location). The epoch
    /// memory is retained.
    pub fn deactivate(&mut self, interface: InterfaceId) -> bool {
        self.locations.remove(&interface).is_some()
    }

    /// Looks up the current location.
    pub fn lookup(&mut self, interface: InterfaceId) -> Option<InterfaceRef> {
        match self.locations.get(&interface) {
            Some(r) => {
                self.stats.lookups += 1;
                Some(*r)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Looks up without touching the counters (for diagnostics).
    pub fn peek(&self, interface: InterfaceId) -> Option<InterfaceRef> {
        self.locations.get(&interface).copied()
    }

    /// The highest epoch ever registered for an interface.
    pub fn epoch_of(&self, interface: InterfaceId) -> Option<u64> {
        self.epochs.get(&interface).copied()
    }

    /// Activity counters.
    pub fn stats(&self) -> RelocatorStats {
        self.stats
    }

    /// Number of active registrations.
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// Whether no interfaces are registered.
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmodp_core::id::{CapsuleId, ClusterId, NodeId};
    use rmodp_engineering::structure::Location;

    fn iref(ifc: u64, node: u64, epoch: u64) -> InterfaceRef {
        InterfaceRef {
            interface: InterfaceId::new(ifc),
            location: Location {
                node: NodeId::new(node),
                capsule: CapsuleId::new(1),
                cluster: ClusterId::new(1),
            },
            epoch,
        }
    }

    #[test]
    fn register_lookup_update() {
        let mut r = Relocator::new();
        r.register(iref(1, 1, 1)).unwrap();
        assert_eq!(
            r.lookup(InterfaceId::new(1)).unwrap().location.node,
            NodeId::new(1)
        );
        r.register(iref(1, 2, 2)).unwrap();
        assert_eq!(
            r.lookup(InterfaceId::new(1)).unwrap().location.node,
            NodeId::new(2)
        );
        assert_eq!(r.epoch_of(InterfaceId::new(1)), Some(2));
        assert_eq!(r.stats().lookups, 2);
        assert_eq!(r.stats().updates, 2);
    }

    #[test]
    fn stale_updates_rejected() {
        let mut r = Relocator::new();
        r.register(iref(1, 1, 5)).unwrap();
        let err = r.register(iref(1, 2, 5)).unwrap_err();
        assert!(matches!(
            err,
            RelocatorError::StaleUpdate {
                current: 5,
                offered: 5,
                ..
            }
        ));
        let err = r.register(iref(1, 2, 3)).unwrap_err();
        assert!(matches!(err, RelocatorError::StaleUpdate { .. }));
        assert_eq!(r.stats().stale_updates, 2);
        // The good registration is untouched.
        assert_eq!(
            r.peek(InterfaceId::new(1)).unwrap().location.node,
            NodeId::new(1)
        );
    }

    #[test]
    fn deactivate_hides_but_remembers_epoch() {
        let mut r = Relocator::new();
        r.register(iref(1, 1, 3)).unwrap();
        assert!(r.deactivate(InterfaceId::new(1)));
        assert!(!r.deactivate(InterfaceId::new(1)));
        assert_eq!(r.lookup(InterfaceId::new(1)), None);
        assert_eq!(r.stats().misses, 1);
        assert_eq!(r.epoch_of(InterfaceId::new(1)), Some(3));
        // Reactivation at a later epoch succeeds; at the same epoch while
        // inactive it is also accepted (epoch equal but no active entry).
        r.register(iref(1, 2, 4)).unwrap();
        assert_eq!(r.lookup(InterfaceId::new(1)).unwrap().epoch, 4);
    }

    #[test]
    fn unknown_lookup_is_a_miss() {
        let mut r = Relocator::new();
        assert!(r.lookup(InterfaceId::new(9)).is_none());
        assert_eq!(r.stats().misses, 1);
        assert!(r.is_empty());
    }
}
