//! Security functions (§8.4): authentication, access control and audit,
//! modelled after the OSI security frameworks the paper cites.
//!
//! Secrets never cross a channel in this realisation: authentication
//! exchanges a (name, secret) pair for a bearer token with an expiry in
//! simulator time; access control evaluates ACL rules over principals and
//! their roles; every decision lands in the audit trail.

use std::collections::BTreeMap;
use std::fmt;

use rmodp_core::id::{IdGen, PrincipalId};

/// A bearer token proving authentication until it expires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// The authenticated principal.
    pub principal: PrincipalId,
    /// Opaque token value.
    pub value: u64,
    /// Expiry instant (simulator microseconds).
    pub expires_at: u64,
}

/// An authentication failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthError {
    /// Unknown principal or wrong secret (deliberately indistinguishable).
    BadCredentials,
    /// The token is unknown, expired, or revoked.
    InvalidToken,
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::BadCredentials => write!(f, "authentication failed"),
            AuthError::InvalidToken => write!(f, "token is invalid or expired"),
        }
    }
}

impl std::error::Error for AuthError {}

#[derive(Debug)]
struct PrincipalRecord {
    name: String,
    secret: String,
}

/// The authentication function.
#[derive(Debug, Default)]
pub struct Authenticator {
    principals: BTreeMap<PrincipalId, PrincipalRecord>,
    by_name: BTreeMap<String, PrincipalId>,
    tokens: BTreeMap<u64, Token>,
    gen: IdGen<PrincipalId>,
    next_token: u64,
    /// Token lifetime in simulator microseconds.
    token_ttl: u64,
}

impl Authenticator {
    /// Creates an authenticator with the given token lifetime
    /// (simulator microseconds).
    pub fn new(token_ttl: u64) -> Self {
        Self {
            token_ttl,
            next_token: 1,
            ..Self::default()
        }
    }

    /// Enrols a principal; returns its identity. Re-enrolling a name
    /// replaces its secret.
    pub fn enrol(&mut self, name: impl Into<String>, secret: impl Into<String>) -> PrincipalId {
        let name = name.into();
        let id = *self
            .by_name
            .entry(name.clone())
            .or_insert_with(|| self.gen.fresh());
        self.principals.insert(
            id,
            PrincipalRecord {
                name,
                secret: secret.into(),
            },
        );
        id
    }

    /// The name of a principal.
    pub fn name_of(&self, principal: PrincipalId) -> Option<&str> {
        self.principals.get(&principal).map(|r| r.name.as_str())
    }

    /// Exchanges credentials for a token.
    ///
    /// # Errors
    ///
    /// [`AuthError::BadCredentials`] for unknown names or wrong secrets.
    pub fn authenticate(&mut self, name: &str, secret: &str, now: u64) -> Result<Token, AuthError> {
        let id = self.by_name.get(name).ok_or(AuthError::BadCredentials)?;
        let record = self.principals.get(id).ok_or(AuthError::BadCredentials)?;
        if record.secret != secret {
            return Err(AuthError::BadCredentials);
        }
        let token = Token {
            principal: *id,
            value: self.next_token,
            expires_at: now + self.token_ttl,
        };
        self.next_token += 1;
        self.tokens.insert(token.value, token);
        Ok(token)
    }

    /// Validates a token value at a point in time.
    ///
    /// # Errors
    ///
    /// [`AuthError::InvalidToken`] for unknown, expired or revoked tokens.
    pub fn validate(&self, token_value: u64, now: u64) -> Result<PrincipalId, AuthError> {
        match self.tokens.get(&token_value) {
            Some(t) if t.expires_at > now => Ok(t.principal),
            _ => Err(AuthError::InvalidToken),
        }
    }

    /// Revokes a token; returns whether it existed.
    pub fn revoke(&mut self, token_value: u64) -> bool {
        self.tokens.remove(&token_value).is_some()
    }
}

/// An access-control rule: `(principal-or-role, operation pattern)` →
/// allow. `"*"` matches any operation.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Subject {
    Principal(PrincipalId),
    Role(String),
}

/// One audit-trail entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    /// When (simulator microseconds).
    pub at: u64,
    /// Which principal.
    pub principal: PrincipalId,
    /// What operation was attempted.
    pub operation: String,
    /// Whether it was allowed.
    pub allowed: bool,
}

/// The access-control + audit function.
#[derive(Debug, Default)]
pub struct AccessController {
    rules: Vec<(Subject, String)>,
    roles: BTreeMap<PrincipalId, Vec<String>>,
    audit: Vec<AuditRecord>,
}

impl AccessController {
    /// Creates an empty controller (default deny).
    pub fn new() -> Self {
        Self::default()
    }

    /// Grants an operation (or `"*"`) to a principal.
    pub fn allow_principal(&mut self, principal: PrincipalId, operation: impl Into<String>) {
        self.rules
            .push((Subject::Principal(principal), operation.into()));
    }

    /// Grants an operation (or `"*"`) to a role.
    pub fn allow_role(&mut self, role: impl Into<String>, operation: impl Into<String>) {
        self.rules
            .push((Subject::Role(role.into()), operation.into()));
    }

    /// Assigns a role to a principal.
    pub fn assign_role(&mut self, principal: PrincipalId, role: impl Into<String>) {
        self.roles.entry(principal).or_default().push(role.into());
    }

    /// Decides (and audits) whether a principal may perform an operation.
    pub fn check(&mut self, principal: PrincipalId, operation: &str, now: u64) -> bool {
        let roles = self.roles.get(&principal).cloned().unwrap_or_default();
        let allowed = self.rules.iter().any(|(subject, op)| {
            let subject_matches = match subject {
                Subject::Principal(p) => *p == principal,
                Subject::Role(r) => roles.iter().any(|have| have == r),
            };
            subject_matches && (op == operation || op == "*")
        });
        self.audit.push(AuditRecord {
            at: now,
            principal,
            operation: operation.to_owned(),
            allowed,
        });
        allowed
    }

    /// The audit trail.
    pub fn audit(&self) -> &[AuditRecord] {
        &self.audit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn authenticate_and_validate() {
        let mut auth = Authenticator::new(1_000);
        let alice = auth.enrol("alice", "sesame");
        let token = auth.authenticate("alice", "sesame", 100).unwrap();
        assert_eq!(token.principal, alice);
        assert_eq!(auth.validate(token.value, 500), Ok(alice));
        // Expired.
        assert_eq!(
            auth.validate(token.value, 1_100),
            Err(AuthError::InvalidToken)
        );
        assert_eq!(auth.name_of(alice), Some("alice"));
    }

    #[test]
    fn bad_credentials_are_indistinguishable() {
        let mut auth = Authenticator::new(1_000);
        auth.enrol("alice", "sesame");
        assert_eq!(
            auth.authenticate("alice", "wrong", 0),
            Err(AuthError::BadCredentials)
        );
        assert_eq!(
            auth.authenticate("nobody", "sesame", 0),
            Err(AuthError::BadCredentials)
        );
    }

    #[test]
    fn revocation_invalidates_tokens() {
        let mut auth = Authenticator::new(1_000);
        auth.enrol("alice", "s");
        let token = auth.authenticate("alice", "s", 0).unwrap();
        assert!(auth.revoke(token.value));
        assert!(!auth.revoke(token.value));
        assert_eq!(auth.validate(token.value, 1), Err(AuthError::InvalidToken));
    }

    #[test]
    fn re_enrol_replaces_secret_keeps_identity() {
        let mut auth = Authenticator::new(1_000);
        let a = auth.enrol("alice", "old");
        let b = auth.enrol("alice", "new");
        assert_eq!(a, b);
        assert!(auth.authenticate("alice", "old", 0).is_err());
        assert!(auth.authenticate("alice", "new", 0).is_ok());
    }

    #[test]
    fn access_control_by_principal_and_role() {
        let mut auth = Authenticator::new(1_000);
        let manager = auth.enrol("mgr", "s");
        let teller = auth.enrol("tlr", "s");
        let mut ac = AccessController::new();
        ac.allow_role("teller", "Deposit");
        ac.allow_role("teller", "Withdraw");
        ac.allow_principal(manager, "*");
        ac.assign_role(teller, "teller");

        assert!(ac.check(teller, "Deposit", 1));
        assert!(!ac.check(teller, "CreateAccount", 2));
        assert!(ac.check(manager, "CreateAccount", 3));
        // Default deny for strangers.
        let stranger = auth.enrol("x", "s");
        assert!(!ac.check(stranger, "Deposit", 4));

        let audit = ac.audit();
        assert_eq!(audit.len(), 4);
        assert!(audit[0].allowed);
        assert!(!audit[1].allowed);
        assert_eq!(audit[1].operation, "CreateAccount");
    }
}
