//! Cross-function integration: the relocator fed by migrations, storage
//! holding checkpoints, events announcing them, groups tracking replica
//! views — the §8 functions cooperating the way §9's transparencies need
//! them to.

use rmodp_core::codec::SyntaxId;
use rmodp_core::naming::Name;
use rmodp_core::value::Value;
use rmodp_engineering::behaviour::CounterBehaviour;
use rmodp_engineering::engine::Engine;
use rmodp_functions::events::EventNotifier;
use rmodp_functions::group::{GroupManager, ReplicationPolicy};
use rmodp_functions::management::{store_checkpoint, CoordinatedCheckpoint, ManagementFunctions};
use rmodp_functions::relation::RelationshipRepository;
use rmodp_functions::relocator::Relocator;
use rmodp_functions::storage::StorageFunction;

fn engine_with_counter() -> (
    Engine,
    rmodp_engineering::structure::InterfaceRef,
    (
        rmodp_core::id::NodeId,
        rmodp_core::id::CapsuleId,
        rmodp_core::id::ClusterId,
    ),
) {
    let mut e = Engine::new(13);
    e.behaviours_mut()
        .register("counter", CounterBehaviour::default);
    let node = e.add_node(SyntaxId::Binary);
    let capsule = e.add_capsule(node).unwrap();
    let cluster = e.add_cluster(node, capsule).unwrap();
    let (_, refs) = e
        .create_object(
            node,
            capsule,
            cluster,
            "c",
            "counter",
            CounterBehaviour::initial_state(),
            1,
        )
        .unwrap();
    (e, refs[0], (node, capsule, cluster))
}

#[test]
fn relocator_tracks_engine_migrations_with_monotone_epochs() {
    let (mut engine, iref, home) = engine_with_counter();
    let mut relocator = Relocator::new();
    relocator.register(iref).unwrap();

    let mut last_epoch = iref.epoch;
    let mut current = home;
    for _ in 0..3 {
        let node = engine.add_node(SyntaxId::Text);
        let capsule = engine.add_capsule(node).unwrap();
        let new_cluster = engine
            .migrate_cluster(current.0, current.1, current.2, node, capsule)
            .unwrap();
        current = (node, capsule, new_cluster);
        let fresh = engine.lookup(iref.interface).unwrap();
        assert!(fresh.epoch > last_epoch);
        relocator.register(fresh).unwrap();
        // Replaying the stale registration is rejected.
        assert!(relocator
            .register(rmodp_engineering::structure::InterfaceRef {
                epoch: last_epoch,
                ..fresh
            })
            .is_err());
        last_epoch = fresh.epoch;
    }
    assert_eq!(
        relocator.lookup(iref.interface).unwrap().location.node,
        current.0
    );
    assert_eq!(relocator.stats().stale_updates, 3);
}

#[test]
fn coordinated_checkpoint_flows_into_storage_and_events() {
    let (mut engine, iref, home) = engine_with_counter();
    engine
        .invoke_local(
            home.0,
            iref.interface,
            "Add",
            &Value::record([("k", Value::Int(9))]),
        )
        .unwrap();
    let checkpoint: CoordinatedCheckpoint = {
        let mut mgmt = ManagementFunctions::new(&mut engine);
        mgmt.coordinated_checkpoint("nightly", &[home]).unwrap()
    };
    let mut storage = StorageFunction::new();
    let stored = store_checkpoint(&mut storage, &checkpoint);
    let mut events = EventNotifier::new();
    let sub = events.subscribe("checkpoints", true);
    for (name, version) in &stored {
        events.emit(
            "checkpoints",
            Value::record([
                ("name", Value::text(name.to_string())),
                ("version", Value::Int(*version as i64)),
            ]),
        );
    }
    let delivered = events.poll(sub);
    assert_eq!(delivered.len(), stored.len());
    // The checkpoint bytes are durably addressable.
    let name: Name = "checkpoints/nightly/0".parse().unwrap();
    let (bytes, version) = storage.get(&name).unwrap();
    assert_eq!(version, 1);
    assert!(!bytes.is_empty());
}

#[test]
fn relationship_repository_models_the_engineering_containment() {
    let (engine, _iref, home) = engine_with_counter();
    let mut rel = RelationshipRepository::new();
    let (node, capsule, cluster) = home;
    rel.relate("contains", node.raw(), capsule.raw());
    rel.relate("contains", capsule.raw(), cluster.raw());
    // Transitive reachability mirrors Figure 5's nesting.
    let reachable = rel.reachable("contains", node.raw());
    assert!(reachable.contains(&capsule.raw()));
    assert!(reachable.contains(&cluster.raw()));
    let _ = engine;
}

#[test]
fn group_views_survive_member_churn_deterministically() {
    let mut gm = GroupManager::new();
    let members: Vec<rmodp_core::id::InterfaceId> =
        (1..=5).map(rmodp_core::id::InterfaceId::new).collect();
    let g = gm.create(ReplicationPolicy::PrimaryCopy, members.clone());
    // Kill the primary repeatedly; the next-lowest member takes over.
    for expected_primary in 2..=5u64 {
        let view = gm
            .leave(g, rmodp_core::id::InterfaceId::new(expected_primary - 1))
            .unwrap();
        assert_eq!(
            view.primary,
            Some(rmodp_core::id::InterfaceId::new(expected_primary))
        );
    }
    assert_eq!(gm.view(g).unwrap().members.len(), 1);
    assert_eq!(gm.view_log(g).len(), 5);
}
