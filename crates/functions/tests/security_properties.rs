//! Property tests for the security functions: token uniqueness and
//! expiry boundaries, credential isolation, and ACL soundness.

use proptest::prelude::*;

use rmodp_functions::security::{AccessController, Authenticator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Tokens are unique and valid exactly until (not at) their expiry.
    #[test]
    fn token_expiry_boundary(ttl in 1u64..10_000, issued_at in 0u64..10_000, probe in 0u64..30_000) {
        let mut auth = Authenticator::new(ttl);
        auth.enrol("alice", "s3cret");
        let token = auth.authenticate("alice", "s3cret", issued_at).unwrap();
        prop_assert_eq!(token.expires_at, issued_at + ttl);
        let valid = auth.validate(token.value, probe).is_ok();
        prop_assert_eq!(valid, probe < issued_at + ttl);
    }

    /// Distinct authentications yield distinct token values.
    #[test]
    fn tokens_are_unique(count in 1usize..50) {
        let mut auth = Authenticator::new(1_000);
        auth.enrol("alice", "s");
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..count {
            let t = auth.authenticate("alice", "s", i as u64).unwrap();
            prop_assert!(seen.insert(t.value), "duplicate token value");
        }
    }

    /// A principal's secret never authenticates another principal, and
    /// revoked tokens stay invalid forever after.
    #[test]
    fn credential_isolation_and_revocation(now in 0u64..1_000) {
        let mut auth = Authenticator::new(10_000);
        let alice = auth.enrol("alice", "apple");
        let bob = auth.enrol("bob", "banana");
        prop_assert_ne!(alice, bob);
        prop_assert!(auth.authenticate("alice", "banana", now).is_err());
        prop_assert!(auth.authenticate("bob", "apple", now).is_err());
        let t = auth.authenticate("bob", "banana", now).unwrap();
        prop_assert_eq!(auth.validate(t.value, now), Ok(bob));
        prop_assert!(auth.revoke(t.value));
        prop_assert!(auth.validate(t.value, now).is_err());
    }

    /// ACL soundness: a check passes iff some rule grants it — mirrored
    /// against an independent ground-truth evaluation.
    #[test]
    fn acl_matches_ground_truth(
        rules in proptest::collection::vec((0u8..2, 0u8..3, 0u8..4), 0..10),
        principal_roles in proptest::collection::vec(0u8..3, 0..3),
        op in 0u8..4,
    ) {
        let mut auth = Authenticator::new(1_000);
        let p = auth.enrol("p", "s");
        let mut ac = AccessController::new();
        for role in &principal_roles {
            ac.assign_role(p, format!("role{role}"));
        }
        // kind 0: principal rule; kind 1: role rule. op 3 encodes "*".
        for (kind, role, rule_op) in &rules {
            let op_name = if *rule_op == 3 { "*".to_owned() } else { format!("op{rule_op}") };
            if *kind == 0 {
                ac.allow_principal(p, op_name);
            } else {
                ac.allow_role(format!("role{role}"), op_name);
            }
        }
        let expected = rules.iter().any(|(kind, role, rule_op)| {
            let op_matches = *rule_op == 3 || *rule_op == op;
            let subject_matches = *kind == 0 || principal_roles.contains(role);
            op_matches && subject_matches
        });
        let got = ac.check(p, &format!("op{op}"), 0);
        prop_assert_eq!(got, expected);
        // The decision is in the audit trail either way.
        prop_assert_eq!(ac.audit().len(), 1);
        prop_assert_eq!(ac.audit()[0].allowed, expected);
    }
}
