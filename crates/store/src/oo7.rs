//! An OO7-class object-database workload over the store engine.
//!
//! OO7 (Carey, DeWitt & Naughton) is the classic object-database
//! benchmark: a design library of **composite parts**, each a graph of
//! **atomic parts** with a **document**, hung off a tree of
//! **assemblies**. This module rebuilds that shape in the information
//! viewpoint — every object is a typed state validated against a
//! [`StaticSchema`] — and persists it through [`StoreEngine`] batches,
//! so the benchmark exercises exactly the write-ahead path the
//! persistence transparency uses.
//!
//! Everything is a pure function of `(config, seed)`: attribute values
//! come from a splitmix mix of the seed and the object id, never from a
//! stateful RNG, so loads, traversal checksums and query answers are
//! byte-stable across runs and platforms.
//!
//! The workload pieces mirror the OO7 operations the bench drives:
//!
//! - **T1** dense traversal — full assembly→composite→atomic-graph DFS;
//! - **T6** sparse traversal — assemblies down to each composite's root
//!   atomic only;
//! - **update batches** — bump `x`/`y` of selected composites' atomics,
//!   one store batch each (the workload a crash interrupts);
//! - **queries** — exact composite lookup and a `build_date` range scan
//!   over a B-tree index built at load.

use std::collections::BTreeMap;

use rmodp_core::codec::{syntax_for, SyntaxId};
use rmodp_core::dtype::DataType;
use rmodp_core::value::Value;
use rmodp_information::schema::StaticSchema;

use crate::engine::{StoreEngine, StoreError};
use crate::media::StableMedia;
use crate::wal::fnv1a;

/// Deterministic 64-bit mixer (splitmix64 finaliser).
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(i.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Shape of the generated design library.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Oo7Config {
    /// Depth of the assembly tree (root counts as level 1).
    pub assembly_levels: u32,
    /// Children per complex assembly.
    pub assembly_fanout: u32,
    /// Composite parts in the library.
    pub composites: u32,
    /// Atomic parts per composite.
    pub atomics_per_composite: u32,
    /// Outgoing connections per atomic part (≥ 1; the first closes the
    /// ring that keeps the graph connected).
    pub connections_per_atomic: u32,
    /// Composites referenced by each base assembly.
    pub composites_per_base: u32,
    /// Characters of text per document.
    pub doc_chars: u32,
    /// Objects per load batch (commit granularity).
    pub load_batch: u32,
    /// Spread of `build_date` values.
    pub date_range: u32,
}

impl Oo7Config {
    /// CI-smoke scale: ~1.2k objects, seconds to run.
    pub fn small() -> Self {
        Self {
            assembly_levels: 3,
            assembly_fanout: 3,
            composites: 50,
            atomics_per_composite: 20,
            connections_per_atomic: 3,
            composites_per_base: 3,
            doc_chars: 200,
            load_batch: 200,
            date_range: 40,
        }
    }

    /// Medium scale: ~100k objects.
    pub fn medium() -> Self {
        Self {
            assembly_levels: 5,
            assembly_fanout: 3,
            composites: 2_000,
            atomics_per_composite: 50,
            connections_per_atomic: 3,
            composites_per_base: 3,
            doc_chars: 500,
            load_batch: 2_000,
            date_range: 400,
        }
    }

    /// Full scale: ~1M typed information objects.
    pub fn full() -> Self {
        Self {
            assembly_levels: 7,
            assembly_fanout: 3,
            composites: 12_000,
            atomics_per_composite: 81,
            connections_per_atomic: 3,
            composites_per_base: 3,
            doc_chars: 500,
            load_batch: 10_000,
            date_range: 400,
        }
    }

    /// Number of assemblies in the tree.
    pub fn assemblies(&self) -> u64 {
        let f = u64::from(self.assembly_fanout);
        let mut total = 0u64;
        let mut width = 1u64;
        for _ in 0..self.assembly_levels {
            total += width;
            width *= f;
        }
        total
    }

    /// Total objects the load creates (assemblies + composites + atomics
    /// + documents).
    pub fn total_objects(&self) -> u64 {
        self.assemblies()
            + u64::from(self.composites)
            + u64::from(self.composites) * u64::from(self.atomics_per_composite)
            + u64::from(self.composites)
    }
}

/// The information-viewpoint schemas every OO7 object conforms to.
#[derive(Debug, Clone)]
pub struct Oo7Schemas {
    /// An atomic part: position, build date, outgoing connections.
    pub atomic: StaticSchema,
    /// A composite part: its document, build date, atomic count.
    pub composite: StaticSchema,
    /// An assembly: level, sub-assemblies or referenced composites.
    pub assembly: StaticSchema,
    /// A design document.
    pub document: StaticSchema,
}

impl Oo7Schemas {
    /// Builds the four schemas.
    pub fn new() -> Self {
        let atomic = StaticSchema::new(
            "oo7.atomic",
            DataType::record([
                ("id", DataType::Int),
                ("x", DataType::Int),
                ("y", DataType::Int),
                ("build_date", DataType::Int),
                ("conn", DataType::Seq(Box::new(DataType::Int))),
            ]),
            Value::record([
                ("id", Value::Int(0)),
                ("x", Value::Int(0)),
                ("y", Value::Int(0)),
                ("build_date", Value::Int(0)),
                ("conn", Value::Seq(vec![])),
            ]),
        )
        .expect("atomic schema is well-formed");
        let composite = StaticSchema::new(
            "oo7.composite",
            DataType::record([
                ("id", DataType::Int),
                ("build_date", DataType::Int),
                ("doc", DataType::Int),
                ("atomics", DataType::Int),
            ]),
            Value::record([
                ("id", Value::Int(0)),
                ("build_date", Value::Int(0)),
                ("doc", Value::Int(0)),
                ("atomics", Value::Int(0)),
            ]),
        )
        .expect("composite schema is well-formed");
        let assembly = StaticSchema::new(
            "oo7.assembly",
            DataType::record([
                ("id", DataType::Int),
                ("level", DataType::Int),
                ("children", DataType::Seq(Box::new(DataType::Int))),
                ("composites", DataType::Seq(Box::new(DataType::Int))),
            ]),
            Value::record([
                ("id", Value::Int(0)),
                ("level", Value::Int(1)),
                ("children", Value::Seq(vec![])),
                ("composites", Value::Seq(vec![])),
            ]),
        )
        .expect("assembly schema is well-formed");
        let document = StaticSchema::new(
            "oo7.document",
            DataType::record([
                ("id", DataType::Int),
                ("title", DataType::Text),
                ("text", DataType::Text),
            ]),
            Value::record([
                ("id", Value::Int(0)),
                ("title", Value::text("")),
                ("text", Value::text("")),
            ]),
        )
        .expect("document schema is well-formed");
        Self {
            atomic,
            composite,
            assembly,
            document,
        }
    }
}

impl Default for Oo7Schemas {
    fn default() -> Self {
        Self::new()
    }
}

/// What the load pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadReport {
    /// Objects written.
    pub objects: u64,
    /// Store batches committed.
    pub batches: u64,
}

/// Outcome of a traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraversalReport {
    /// Objects visited.
    pub visited: u64,
    /// Order-sensitive checksum over the visited attributes.
    pub checksum: u64,
}

/// The generated workload: shape, seed, schemas and the `build_date`
/// index the range query uses.
#[derive(Debug)]
pub struct Oo7Workload {
    config: Oo7Config,
    seed: u64,
    schemas: Oo7Schemas,
    /// `build_date` → composite ids carrying it (filled by `load`).
    date_index: BTreeMap<i64, Vec<u32>>,
}

impl Oo7Workload {
    /// A workload for `(config, seed)`.
    pub fn new(config: Oo7Config, seed: u64) -> Self {
        Self {
            config,
            seed,
            schemas: Oo7Schemas::new(),
            date_index: BTreeMap::new(),
        }
    }

    /// The shape.
    pub fn config(&self) -> &Oo7Config {
        &self.config
    }

    /// The schemas.
    pub fn schemas(&self) -> &Oo7Schemas {
        &self.schemas
    }

    fn atomic_key(composite: u32, local: u32) -> String {
        format!("oo7/atomic/{composite}/{local}")
    }

    fn composite_key(id: u32) -> String {
        format!("oo7/composite/{id}")
    }

    fn assembly_key(id: u64) -> String {
        format!("oo7/assembly/{id}")
    }

    fn document_key(id: u32) -> String {
        format!("oo7/doc/{id}")
    }

    fn composite_build_date(&self, id: u32) -> i64 {
        1000 + (mix(self.seed, 0x00c0_0000 + u64::from(id)) % u64::from(self.config.date_range))
            as i64
    }

    fn atomic_state(&self, composite: u32, local: u32) -> Value {
        let n = self.config.atomics_per_composite;
        let h = mix(
            self.seed,
            0x00a0_0000 + u64::from(composite) * u64::from(n) + u64::from(local),
        );
        let mut conn = vec![Value::Int(i64::from((local + 1) % n))];
        for c in 1..self.config.connections_per_atomic {
            conn.push(Value::Int((mix(h, u64::from(c)) % u64::from(n)) as i64));
        }
        Value::record([
            ("id", Value::Int(i64::from(local))),
            ("x", Value::Int((h % 100_000) as i64)),
            ("y", Value::Int(((h >> 32) % 100_000) as i64)),
            (
                "build_date",
                Value::Int(self.composite_build_date(composite)),
            ),
            ("conn", Value::Seq(conn)),
        ])
    }

    fn composite_state(&self, id: u32) -> Value {
        Value::record([
            ("id", Value::Int(i64::from(id))),
            ("build_date", Value::Int(self.composite_build_date(id))),
            ("doc", Value::Int(i64::from(id))),
            (
                "atomics",
                Value::Int(i64::from(self.config.atomics_per_composite)),
            ),
        ])
    }

    fn document_state(&self, id: u32) -> Value {
        let seedling = format!("Design notes for composite part {id}. ");
        let mut text = String::with_capacity(self.config.doc_chars as usize + seedling.len());
        while text.len() < self.config.doc_chars as usize {
            text.push_str(&seedling);
        }
        text.truncate(self.config.doc_chars as usize);
        Value::record([
            ("id", Value::Int(i64::from(id))),
            ("title", Value::text(format!("Composite part {id}"))),
            ("text", Value::text(text)),
        ])
    }

    /// Children of assembly `id` in the heap-ordered tree.
    fn assembly_children(&self, id: u64) -> Vec<u64> {
        let f = u64::from(self.assembly_fanout());
        let total = self.config.assemblies();
        (0..f)
            .map(|j| id * f + 1 + j)
            .filter(|&c| c < total)
            .collect()
    }

    fn assembly_fanout(&self) -> u32 {
        self.config.assembly_fanout
    }

    fn assembly_level(&self, id: u64) -> u32 {
        let f = u64::from(self.assembly_fanout());
        let mut level = 1;
        let mut first = 0u64;
        let mut width = 1u64;
        while id >= first + width {
            first += width;
            width *= f;
            level += 1;
        }
        level
    }

    /// Composites referenced by base assembly `id` (leaf of the tree).
    fn base_composites(&self, id: u64) -> Vec<u32> {
        let k = u64::from(self.config.composites_per_base);
        let m = u64::from(self.config.composites);
        (0..k).map(|j| ((id * k + j) % m) as u32).collect()
    }

    fn assembly_state(&self, id: u64) -> Value {
        let children = self.assembly_children(id);
        let composites = if children.is_empty() {
            self.base_composites(id)
        } else {
            Vec::new()
        };
        Value::record([
            ("id", Value::Int(id as i64)),
            ("level", Value::Int(i64::from(self.assembly_level(id)))),
            (
                "children",
                Value::Seq(children.iter().map(|&c| Value::Int(c as i64)).collect()),
            ),
            (
                "composites",
                Value::Seq(
                    composites
                        .iter()
                        .map(|&c| Value::Int(i64::from(c)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Loads the whole library into the engine in `load_batch`-sized
    /// committed batches, validating every state against its schema and
    /// building the `build_date` index.
    ///
    /// # Errors
    ///
    /// Store misuse (propagated) — schema violations panic, as they mean
    /// the generator itself is broken.
    pub fn load<M: StableMedia>(
        &mut self,
        engine: &mut StoreEngine<M>,
    ) -> Result<LoadReport, StoreError> {
        let mut report = LoadReport::default();
        let mut in_batch = 0u32;
        let write = |engine: &mut StoreEngine<M>,
                     report: &mut LoadReport,
                     in_batch: &mut u32,
                     key: String,
                     state: Value|
         -> Result<(), StoreError> {
            if *in_batch == 0 {
                engine.begin()?;
            }
            engine.put(&key, state)?;
            *in_batch += 1;
            report.objects += 1;
            if *in_batch >= self.config.load_batch {
                engine.commit()?;
                report.batches += 1;
                *in_batch = 0;
            }
            Ok(())
        };

        for id in 0..self.config.assemblies() {
            let state = self.assembly_state(id);
            self.schemas
                .assembly
                .check(&state)
                .expect("generated assembly conforms");
            write(
                engine,
                &mut report,
                &mut in_batch,
                Self::assembly_key(id),
                state,
            )?;
        }
        for id in 0..self.config.composites {
            let state = self.composite_state(id);
            self.schemas
                .composite
                .check(&state)
                .expect("generated composite conforms");
            self.date_index
                .entry(self.composite_build_date(id))
                .or_default()
                .push(id);
            write(
                engine,
                &mut report,
                &mut in_batch,
                Self::composite_key(id),
                state,
            )?;
            let doc = self.document_state(id);
            self.schemas
                .document
                .check(&doc)
                .expect("generated document conforms");
            write(
                engine,
                &mut report,
                &mut in_batch,
                Self::document_key(id),
                doc,
            )?;
            for local in 0..self.config.atomics_per_composite {
                let atomic = self.atomic_state(id, local);
                self.schemas
                    .atomic
                    .check(&atomic)
                    .expect("generated atomic conforms");
                write(
                    engine,
                    &mut report,
                    &mut in_batch,
                    Self::atomic_key(id, local),
                    atomic,
                )?;
            }
        }
        if in_batch > 0 {
            engine.commit()?;
            report.batches += 1;
        }
        Ok(report)
    }

    /// T1: dense traversal — DFS of the assembly tree, then the *full*
    /// atomic graph of every referenced composite (each atomic visited
    /// once, ring + cross connections followed).
    pub fn traverse_dense<M: StableMedia>(&self, engine: &StoreEngine<M>) -> TraversalReport {
        let mut report = TraversalReport::default();
        let mut checksum = 0xcbf2_9ce4_8422_2325u64;
        let mut stack = vec![0u64];
        while let Some(id) = stack.pop() {
            report.visited += 1;
            let children = self.assembly_children(id);
            if children.is_empty() {
                for composite in self.base_composites(id) {
                    report.visited += 1;
                    let n = self.config.atomics_per_composite;
                    let mut seen = vec![false; n as usize];
                    let mut atomic_stack = vec![0u32];
                    while let Some(local) = atomic_stack.pop() {
                        if std::mem::replace(&mut seen[local as usize], true) {
                            continue;
                        }
                        report.visited += 1;
                        let state = engine
                            .get(&Self::atomic_key(composite, local))
                            .expect("loaded atomic exists");
                        let x = state.field("x").and_then(Value::as_int).expect("typed");
                        checksum = fnv1a(&(checksum ^ x as u64).to_le_bytes());
                        for conn in state.field("conn").and_then(Value::as_seq).expect("typed") {
                            let next = conn.as_int().expect("typed") as u32;
                            if !seen[next as usize] {
                                atomic_stack.push(next);
                            }
                        }
                    }
                }
            } else {
                // Reverse so the DFS visits children left-to-right.
                stack.extend(children.into_iter().rev());
            }
        }
        report.checksum = checksum;
        report
    }

    /// T6: sparse traversal — the assembly tree down to each referenced
    /// composite's *root* atomic only.
    pub fn traverse_sparse<M: StableMedia>(&self, engine: &StoreEngine<M>) -> TraversalReport {
        let mut report = TraversalReport::default();
        let mut checksum = 0xcbf2_9ce4_8422_2325u64;
        let mut stack = vec![0u64];
        while let Some(id) = stack.pop() {
            report.visited += 1;
            let children = self.assembly_children(id);
            if children.is_empty() {
                for composite in self.base_composites(id) {
                    report.visited += 1;
                    let state = engine
                        .get(&Self::atomic_key(composite, 0))
                        .expect("loaded atomic exists");
                    let x = state.field("x").and_then(Value::as_int).expect("typed");
                    checksum = fnv1a(&(checksum ^ x as u64).to_le_bytes());
                }
            } else {
                stack.extend(children.into_iter().rev());
            }
        }
        report.checksum = checksum;
        report
    }

    /// One update batch: for every composite with `id % stride ==
    /// batch_no % stride`, increment `x` and `y` of all its atomic
    /// parts. One store batch — all-or-nothing under a crash.
    ///
    /// # Errors
    ///
    /// Store misuse (propagated).
    pub fn update_batch<M: StableMedia>(
        &self,
        engine: &mut StoreEngine<M>,
        batch_no: u64,
        stride: u32,
    ) -> Result<u64, StoreError> {
        let lane = (batch_no % u64::from(stride)) as u32;
        engine.begin()?;
        let mut updated = 0u64;
        for composite in (0..self.config.composites).filter(|c| c % stride == lane) {
            for local in 0..self.config.atomics_per_composite {
                let key = Self::atomic_key(composite, local);
                let mut state = engine.get(&key).expect("loaded atomic exists").clone();
                for coord in ["x", "y"] {
                    if let Some(Value::Int(v)) = state.field_mut(coord) {
                        *v += 1;
                    }
                }
                self.schemas
                    .atomic
                    .check(&state)
                    .expect("updated atomic conforms");
                engine.put(&key, state)?;
                updated += 1;
            }
        }
        engine.commit()?;
        Ok(updated)
    }

    /// Exact-match query: the composite and its document, schema-checked.
    /// Returns a checksum of the pair.
    pub fn query_exact<M: StableMedia>(&self, engine: &StoreEngine<M>, id: u32) -> u64 {
        let composite = engine
            .get(&Self::composite_key(id))
            .expect("loaded composite exists");
        self.schemas
            .composite
            .check(composite)
            .expect("stored composite conforms");
        let doc = engine
            .get(&Self::document_key(id))
            .expect("loaded document exists");
        self.schemas
            .document
            .check(doc)
            .expect("stored doc conforms");
        let date = composite
            .field("build_date")
            .and_then(Value::as_int)
            .expect("typed");
        let title_len = doc
            .field("title")
            .and_then(Value::as_text)
            .expect("typed")
            .len();
        fnv1a(&(date as u64 ^ ((title_len as u64) << 32)).to_le_bytes())
    }

    /// Range query over the `build_date` index: composites built within
    /// `[lo, hi]`, verified against the stored state. Returns `(matches,
    /// checksum)`.
    pub fn query_range<M: StableMedia>(
        &self,
        engine: &StoreEngine<M>,
        lo: i64,
        hi: i64,
    ) -> (u64, u64) {
        let mut matches = 0u64;
        let mut checksum = 0xcbf2_9ce4_8422_2325u64;
        for (&date, ids) in self.date_index.range(lo..=hi) {
            for &id in ids {
                let stored = engine
                    .get(&Self::composite_key(id))
                    .and_then(|c| c.field("build_date"))
                    .and_then(Value::as_int)
                    .expect("loaded composite has a date");
                assert_eq!(stored, date, "index and store agree");
                matches += 1;
                checksum = fnv1a(&(checksum ^ (id as u64) ^ (date as u64)).to_le_bytes());
            }
        }
        (matches, checksum)
    }

    /// Validates every stored OO7 object against its schema; returns the
    /// number checked. A wrong count or a panic means recovery returned
    /// a state the information viewpoint rejects.
    pub fn validate_all<M: StableMedia>(&self, engine: &StoreEngine<M>) -> u64 {
        let mut checked = 0u64;
        for (key, state) in engine.state() {
            let schema = if key.starts_with("oo7/atomic/") {
                &self.schemas.atomic
            } else if key.starts_with("oo7/composite/") {
                &self.schemas.composite
            } else if key.starts_with("oo7/assembly/") {
                &self.schemas.assembly
            } else if key.starts_with("oo7/doc/") {
                &self.schemas.document
            } else {
                continue;
            };
            schema
                .check(state)
                .unwrap_or_else(|e| panic!("{key} violates its schema: {e}"));
            checked += 1;
        }
        checked
    }
}

/// An order-sensitive checksum of the engine's whole committed state —
/// the equality the crash-recovery assertions compare.
pub fn state_checksum<M: StableMedia>(engine: &StoreEngine<M>) -> u64 {
    let codec = syntax_for(SyntaxId::Binary);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for (key, value) in engine.state() {
        h = fnv1a(&h.to_le_bytes()) ^ fnv1a(key.as_bytes()) ^ fnv1a(&codec.encode(value));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StoreConfig;
    use crate::media::MemMedia;

    fn loaded() -> (Oo7Workload, StoreEngine<MemMedia>) {
        let mut engine = StoreEngine::open(MemMedia::new(), StoreConfig::default()).unwrap();
        let mut wl = Oo7Workload::new(Oo7Config::small(), 7);
        let report = wl.load(&mut engine).unwrap();
        assert_eq!(report.objects, wl.config().total_objects());
        (wl, engine)
    }

    #[test]
    fn load_is_deterministic() {
        let (wl_a, engine_a) = loaded();
        let (wl_b, engine_b) = loaded();
        assert_eq!(state_checksum(&engine_a), state_checksum(&engine_b));
        assert_eq!(
            wl_a.traverse_dense(&engine_a).checksum,
            wl_b.traverse_dense(&engine_b).checksum
        );
    }

    #[test]
    fn dense_traversal_visits_every_atomic_once() {
        let (wl, engine) = loaded();
        let t1 = wl.traverse_dense(&engine);
        let cfg = wl.config();
        let leaves = u64::from(cfg.assembly_fanout).pow(cfg.assembly_levels - 1);
        let expected = cfg.assemblies()
            + leaves
                * u64::from(cfg.composites_per_base)
                * (1 + u64::from(cfg.atomics_per_composite));
        assert_eq!(t1.visited, expected);
        let t6 = wl.traverse_sparse(&engine);
        assert!(t6.visited < t1.visited);
    }

    #[test]
    fn updates_change_the_dense_checksum_only() {
        let (wl, mut engine) = loaded();
        let before = wl.traverse_dense(&engine).checksum;
        let range_before = wl.query_range(&engine, 1000, 1040);
        let updated = wl.update_batch(&mut engine, 0, 10).unwrap();
        assert!(updated > 0);
        assert_ne!(wl.traverse_dense(&engine).checksum, before);
        assert_eq!(wl.query_range(&engine, 1000, 1040), range_before);
    }

    #[test]
    fn updates_survive_crash_and_recovery() {
        let (wl, mut engine) = loaded();
        wl.update_batch(&mut engine, 0, 10).unwrap();
        let committed = state_checksum(&engine);
        let mut media = engine.into_media();
        media.crash();
        let engine = StoreEngine::open(media, StoreConfig::default()).unwrap();
        assert_eq!(state_checksum(&engine), committed);
        assert_eq!(wl.validate_all(&engine), wl.config().total_objects());
    }

    #[test]
    fn queries_are_consistent_with_the_store() {
        let (wl, engine) = loaded();
        let (matches, _) = wl.query_range(&engine, i64::MIN, i64::MAX);
        assert_eq!(matches, u64::from(wl.config().composites));
        let a = wl.query_exact(&engine, 1);
        assert_eq!(a, wl.query_exact(&engine, 1));
    }
}
