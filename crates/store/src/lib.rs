//! rmodp-store: the durable object store behind the persistence
//! transparency.
//!
//! RM-ODP's persistence transparency (§5.3) masks deactivation and
//! reactivation of objects; its failure transparency (§9) masks crashes
//! by checkpointing and recovery. Both bottom out in *some* place where
//! state outlives a capsule. This crate is that place: a deterministic,
//! seed-stable storage engine built from
//!
//! - a **write-ahead log** ([`wal`]) framing the redo/undo records of
//!   [`rmodp_transactions::log`] with per-frame checksums,
//! - **periodic snapshots** ([`snapshot`]) and **log compaction**
//!   (snapshot-then-reset, crash-ordered),
//! - **recovery on restart** ([`engine`]): longest-valid-prefix scan,
//!   transaction classification, idempotent redo,
//! - an explicit **crash model** ([`media`]): only synced bytes survive.
//!
//! The [`PersistentStore`] trait is the seam the transparencies plug
//! into: the in-memory [`StorageFunction`] implements it (the old
//! behaviour, nothing durable), and [`StoreEngine`] implements it with
//! full write-ahead durability — so a capsule kill followed by restart
//! replays the log and loses no committed update.
//!
//! [`oo7`] builds the OO7-class object-database workload (information
//! viewpoint: typed assemblies, composite and atomic parts, documents)
//! that `rmodp-bench` drives against the engine.

pub mod engine;
pub mod media;
pub mod oo7;
pub mod snapshot;
pub mod wal;

pub use engine::{RecoveryReport, StoreConfig, StoreEngine, StoreError, StoreStats};
pub use media::{FileMedia, MemMedia, StableMedia};
pub use oo7::{state_checksum, Oo7Config, Oo7Schemas, Oo7Workload};

use rmodp_core::naming::Name;
use rmodp_core::value::Value;
use rmodp_functions::storage::StorageFunction;

/// The seam between the transparencies and whatever keeps their bytes.
///
/// Keys are slash-separated paths (they must parse as [`Name`]s for the
/// [`StorageFunction`] implementation). Implementations differ only in
/// durability: [`StorageFunction`] keeps bytes in memory (lost with the
/// process), [`StoreEngine`] write-ahead-logs every mutation so a crash
/// loses nothing committed.
pub trait PersistentStore {
    /// Stores (or overwrites) bytes under a key.
    fn persist(&mut self, key: &str, bytes: Vec<u8>);

    /// Reads the bytes stored under a key.
    fn fetch(&self, key: &str) -> Option<Vec<u8>>;

    /// Removes a key; returns whether it existed.
    fn remove(&mut self, key: &str) -> bool;

    /// Every stored key, sorted.
    fn stored_keys(&self) -> Vec<String>;
}

impl PersistentStore for StorageFunction {
    fn persist(&mut self, key: &str, bytes: Vec<u8>) {
        let name: Name = key.parse().expect("store key forms a valid name");
        self.put(name, bytes);
    }

    fn fetch(&self, key: &str) -> Option<Vec<u8>> {
        let name: Name = key.parse().ok()?;
        self.get(&name).ok().map(|(bytes, _)| bytes.to_vec())
    }

    fn remove(&mut self, key: &str) -> bool {
        match key.parse::<Name>() {
            Ok(name) => self.delete(&name),
            Err(_) => false,
        }
    }

    fn stored_keys(&self) -> Vec<String> {
        self.names().map(ToString::to_string).collect()
    }
}

impl<M: StableMedia> PersistentStore for StoreEngine<M> {
    /// Durable: one write-ahead-logged, synced batch per call (or a
    /// staged write if a batch is already open — durable at its commit).
    fn persist(&mut self, key: &str, bytes: Vec<u8>) {
        let standalone = !self.has_open_batch();
        if standalone {
            self.begin().expect("no batch is open");
        }
        self.put(key, Value::Blob(bytes)).expect("a batch is open");
        if standalone {
            self.commit().expect("a batch is open");
        }
    }

    fn fetch(&self, key: &str) -> Option<Vec<u8>> {
        match self.get(key) {
            Some(Value::Blob(bytes)) => Some(bytes.clone()),
            _ => None,
        }
    }

    fn remove(&mut self, key: &str) -> bool {
        let existed = self.get(key).is_some();
        if existed {
            let standalone = !self.has_open_batch();
            if standalone {
                self.begin().expect("no batch is open");
            }
            self.delete(key).expect("a batch is open");
            if standalone {
                self.commit().expect("a batch is open");
            }
        }
        existed
    }

    fn stored_keys(&self) -> Vec<String> {
        self.state().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &mut dyn PersistentStore) {
        store.persist("persistent/acct", vec![1, 2, 3]);
        store.persist("persistent/acct", vec![4]);
        store.persist("guard/a/op/0", vec![9]);
        assert_eq!(store.fetch("persistent/acct"), Some(vec![4]));
        assert_eq!(store.fetch("missing"), None);
        assert_eq!(
            store.stored_keys(),
            vec!["guard/a/op/0".to_owned(), "persistent/acct".to_owned()]
        );
        assert!(store.remove("guard/a/op/0"));
        assert!(!store.remove("guard/a/op/0"));
    }

    #[test]
    fn storage_function_implements_the_seam() {
        exercise(&mut StorageFunction::new());
    }

    #[test]
    fn store_engine_implements_the_seam_durably() {
        let mut engine = StoreEngine::open(MemMedia::new(), StoreConfig::default()).unwrap();
        exercise(&mut engine);
        // And the engine's copy survives a crash.
        let mut media = engine.into_media();
        media.crash();
        let engine = StoreEngine::open(media, StoreConfig::default()).unwrap();
        assert_eq!(engine.fetch("persistent/acct"), Some(vec![4]));
        assert_eq!(engine.fetch("guard/a/op/0"), None);
    }
}
