//! The storage engine: batches in, durable state out.
//!
//! [`StoreEngine`] keeps the committed keyspace in memory and makes it
//! durable through the write-ahead discipline of
//! [`rmodp_transactions::log`]: every mutation is framed onto the
//! [`StableMedia`] WAL *before* it touches the in-memory state, a commit
//! syncs the log, and only then is the batch applied. Recovery is the
//! inverse — load the last snapshot, scan the log's valid frame prefix,
//! classify transactions with [`WriteAheadLog::analyze`], and redo the
//! committed writes in order. Redo is idempotent (writes carry absolute
//! after-images; [`Value::Null`] is the delete tombstone), so replaying
//! an over-long log onto a newer snapshot converges to the same state.
//!
//! Compaction bounds the log: when the WAL outgrows
//! [`StoreConfig::compact_wal_bytes`], the engine stages a snapshot,
//! **syncs it**, and only then atomically resets the WAL. A crash
//! between the two steps leaves snapshot + over-long log — tolerated —
//! never a short log without its covering snapshot.

use std::collections::BTreeMap;

use rmodp_core::id::TxId;
use rmodp_core::value::Value;
use rmodp_observe::bus;
use rmodp_observe::event::{EventBuilder, EventKind, Layer};
use rmodp_transactions::log::{LogRecord, WriteAheadLog};

use crate::media::StableMedia;
use crate::snapshot::{decode_snapshot, encode_snapshot, Snapshot};
use crate::wal::{decode_frames, encode_frame};

/// A store failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The durable snapshot could not be decoded. Unlike a torn WAL tail
    /// (expected after a crash, silently discarded) a damaged snapshot is
    /// unrecoverable corruption — installation is atomic, so this never
    /// arises from a crash alone.
    CorruptSnapshot(String),
    /// A batch operation was issued with no batch open.
    NoOpenBatch,
    /// `begin` was called while a batch was already open.
    BatchAlreadyOpen,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::CorruptSnapshot(why) => write!(f, "corrupt snapshot: {why}"),
            StoreError::NoOpenBatch => write!(f, "no open batch"),
            StoreError::BatchAlreadyOpen => write!(f, "a batch is already open"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Tuning knobs for the engine.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Compact (snapshot + reset the WAL) once the log exceeds this many
    /// bytes. `usize::MAX` disables auto-compaction.
    pub compact_wal_bytes: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            compact_wal_bytes: 1 << 20,
        }
    }
}

/// What recovery found and did when the engine opened.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Whether a durable snapshot was loaded first.
    pub snapshot_loaded: bool,
    /// WAL records scanned from the valid frame prefix.
    pub records_scanned: usize,
    /// Committed write records redone onto the state.
    pub writes_replayed: usize,
    /// Whether a torn/corrupt WAL tail was discarded.
    pub tail_discarded: bool,
    /// Transactions the log left unresolved (active or in doubt) whose
    /// effects were therefore *not* applied.
    pub unresolved_txs: usize,
}

#[derive(Debug)]
struct OpenBatch {
    tx: TxId,
    /// Staged after-images, applied on commit ([`Value::Null`] deletes).
    ops: Vec<(String, Value)>,
}

/// Counters the engine accumulates over its lifetime (mirrored onto the
/// observe bus under `store.*`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Batches committed.
    pub commits: u64,
    /// Batches aborted.
    pub aborts: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// Committed writes replayed by the last recovery.
    pub recovery_replayed: u64,
}

/// A durable key→[`Value`] store over some [`StableMedia`].
#[derive(Debug)]
pub struct StoreEngine<M: StableMedia> {
    media: M,
    config: StoreConfig,
    state: BTreeMap<String, Value>,
    next_batch: u64,
    open: Option<OpenBatch>,
    stats: StoreStats,
    recovery: RecoveryReport,
}

impl<M: StableMedia> StoreEngine<M> {
    /// Opens the engine over `media`, recovering whatever committed
    /// state the media holds: snapshot first, then redo of the WAL's
    /// valid frame prefix.
    ///
    /// # Errors
    ///
    /// [`StoreError::CorruptSnapshot`] if a snapshot exists but cannot
    /// be decoded (real corruption, not a crash artefact).
    pub fn open(media: M, config: StoreConfig) -> Result<Self, StoreError> {
        let mut report = RecoveryReport::default();
        let snapshot = match media.snapshot_bytes() {
            Some(bytes) => {
                report.snapshot_loaded = true;
                decode_snapshot(bytes).map_err(StoreError::CorruptSnapshot)?
            }
            None => Snapshot::default(),
        };
        let decoded = decode_frames(media.wal_bytes());
        report.records_scanned = decoded.records.len();
        report.tail_discarded = decoded.truncated_tail;

        let mut state = snapshot.state;
        let log = WriteAheadLog::from_records(decoded.records);
        let analysis = log.analyze();
        report.unresolved_txs = analysis.active.len() + analysis.in_doubt.len();
        let mut max_tx = 0u64;
        for record in log.records() {
            max_tx = max_tx.max(record.tx().raw());
            if let LogRecord::Write {
                tx, item, after, ..
            } = record
            {
                if analysis.committed.contains(tx) {
                    report.writes_replayed += 1;
                    if matches!(after, Value::Null) {
                        state.remove(item);
                    } else {
                        state.insert(item.clone(), after.clone());
                    }
                }
            }
        }
        let next_batch = snapshot.next_batch.max(max_tx + 1);

        let stats = StoreStats {
            recovery_replayed: report.writes_replayed as u64,
            ..StoreStats::default()
        };
        bus::counter_add("store.recovery_replayed", stats.recovery_replayed);
        EventBuilder::new(Layer::Store, EventKind::StoreRecovery)
            .detail(format!(
                "snapshot={} scanned={} replayed={} torn_tail={} unresolved={}",
                report.snapshot_loaded,
                report.records_scanned,
                report.writes_replayed,
                report.tail_discarded,
                report.unresolved_txs
            ))
            .emit();

        let engine = Self {
            media,
            config,
            state,
            next_batch,
            open: None,
            stats,
            recovery: report,
        };
        engine.publish_sizes();
        Ok(engine)
    }

    /// What the opening recovery pass found.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Lifetime counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// The committed keyspace (reads never see an open batch's writes).
    pub fn state(&self) -> &BTreeMap<String, Value> {
        &self.state
    }

    /// Reads a committed value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.state.get(key)
    }

    /// Number of committed keys.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// Whether no key is committed.
    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }

    /// Whether a batch is currently open.
    pub fn has_open_batch(&self) -> bool {
        self.open.is_some()
    }

    /// Current WAL size in bytes.
    pub fn log_bytes(&self) -> usize {
        self.media.wal_len()
    }

    /// Current durable snapshot size in bytes.
    pub fn snapshot_bytes(&self) -> usize {
        self.media.snapshot_len()
    }

    /// The media, for crash probes in tests.
    pub fn media_mut(&mut self) -> &mut M {
        &mut self.media
    }

    /// Consumes the engine, returning its media (e.g. to reopen after a
    /// simulated crash).
    pub fn into_media(self) -> M {
        self.media
    }

    /// Opens a batch.
    ///
    /// # Errors
    ///
    /// [`StoreError::BatchAlreadyOpen`] if one is already open.
    pub fn begin(&mut self) -> Result<TxId, StoreError> {
        if self.open.is_some() {
            return Err(StoreError::BatchAlreadyOpen);
        }
        let tx = TxId::new(self.next_batch);
        self.next_batch += 1;
        self.append(&LogRecord::Begin { tx });
        self.open = Some(OpenBatch {
            tx,
            ops: Vec::new(),
        });
        Ok(tx)
    }

    /// Stages a write into the open batch (logged write-ahead).
    ///
    /// [`Value::Null`] is reserved as the delete tombstone; storing it
    /// is equivalent to [`delete`](Self::delete).
    ///
    /// # Errors
    ///
    /// [`StoreError::NoOpenBatch`] without a batch.
    pub fn put(&mut self, key: &str, value: Value) -> Result<(), StoreError> {
        let before = self.state.get(key).cloned();
        let batch = self.open.as_mut().ok_or(StoreError::NoOpenBatch)?;
        let record = LogRecord::Write {
            tx: batch.tx,
            item: key.to_owned(),
            before,
            after: value.clone(),
        };
        batch.ops.push((key.to_owned(), value));
        self.append(&record);
        Ok(())
    }

    /// Stages a delete (a [`Value::Null`] tombstone) into the open batch.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoOpenBatch`] without a batch.
    pub fn delete(&mut self, key: &str) -> Result<(), StoreError> {
        self.put(key, Value::Null)
    }

    /// Commits the open batch: logs the commit record, syncs the WAL
    /// (the durability point), then applies the staged writes.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoOpenBatch`] without a batch.
    pub fn commit(&mut self) -> Result<(), StoreError> {
        let batch = self.open.take().ok_or(StoreError::NoOpenBatch)?;
        self.append(&LogRecord::Commit { tx: batch.tx });
        self.media.sync();
        let ops = batch.ops.len();
        for (key, value) in batch.ops {
            if matches!(value, Value::Null) {
                self.state.remove(&key);
            } else {
                self.state.insert(key, value);
            }
        }
        self.stats.commits += 1;
        bus::counter_add("store.commits", 1);
        EventBuilder::new(Layer::Store, EventKind::WalCommit)
            .detail(format!("tx={} ops={ops}", batch.tx.raw()))
            .emit();
        self.publish_sizes();
        if self.media.wal_len() > self.config.compact_wal_bytes {
            self.compact();
        }
        Ok(())
    }

    /// Aborts the open batch: logs the abort, discards the staged
    /// writes. The state was never touched, so there is nothing to undo.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoOpenBatch`] without a batch.
    pub fn abort(&mut self) -> Result<(), StoreError> {
        let batch = self.open.take().ok_or(StoreError::NoOpenBatch)?;
        self.append(&LogRecord::Abort { tx: batch.tx });
        self.stats.aborts += 1;
        bus::counter_add("store.aborts", 1);
        Ok(())
    }

    /// Compacts: snapshot the committed state, sync it durable, then
    /// atomically reset the WAL. Ordering is load-bearing — the reset
    /// must not happen before its covering snapshot is stable.
    pub fn compact(&mut self) {
        self.media
            .snapshot_write(&encode_snapshot(&self.state, self.next_batch));
        self.media.sync();
        EventBuilder::new(Layer::Store, EventKind::StoreSnapshot)
            .detail(format!("keys={}", self.state.len()))
            .emit();
        // If an uncommitted batch is open its records must survive the
        // reset, or recovery could mistake its later commit frame for a
        // full transaction. Re-frame the open batch's prefix into the
        // fresh log.
        let mut tail = Vec::new();
        if let Some(batch) = &self.open {
            tail.extend_from_slice(&encode_frame(&LogRecord::Begin { tx: batch.tx }));
            for (key, value) in &batch.ops {
                tail.extend_from_slice(&encode_frame(&LogRecord::Write {
                    tx: batch.tx,
                    item: key.clone(),
                    before: None,
                    after: value.clone(),
                }));
            }
        }
        self.media.wal_reset(&tail);
        self.stats.compactions += 1;
        bus::counter_add("store.compactions", 1);
        EventBuilder::new(Layer::Store, EventKind::StoreCompaction)
            .detail(format!("log_bytes={}", self.media.wal_len()))
            .emit();
        self.publish_sizes();
    }

    fn append(&mut self, record: &LogRecord) {
        self.media.wal_append(&encode_frame(record));
    }

    fn publish_sizes(&self) {
        bus::gauge_set("store.log_bytes", self.media.wal_len() as i64);
        bus::gauge_set("store.snapshot_bytes", self.media.snapshot_len() as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::MemMedia;

    fn open_mem() -> StoreEngine<MemMedia> {
        StoreEngine::open(MemMedia::new(), StoreConfig::default()).unwrap()
    }

    fn commit_one(engine: &mut StoreEngine<MemMedia>, key: &str, v: i64) {
        engine.begin().unwrap();
        engine.put(key, Value::Int(v)).unwrap();
        engine.commit().unwrap();
    }

    #[test]
    fn committed_batches_survive_a_crash() {
        let mut engine = open_mem();
        commit_one(&mut engine, "a", 1);
        engine.begin().unwrap();
        engine.put("b", Value::Int(2)).unwrap();
        // No commit: crash with the batch in flight.
        let mut media = engine.into_media();
        media.crash();
        let engine = StoreEngine::open(media, StoreConfig::default()).unwrap();
        assert_eq!(engine.get("a"), Some(&Value::Int(1)));
        assert_eq!(engine.get("b"), None, "uncommitted batch must vanish");
        assert_eq!(engine.recovery_report().writes_replayed, 1);
    }

    #[test]
    fn deletes_are_tombstones() {
        let mut engine = open_mem();
        commit_one(&mut engine, "k", 7);
        engine.begin().unwrap();
        engine.delete("k").unwrap();
        engine.commit().unwrap();
        assert_eq!(engine.get("k"), None);
        let engine = StoreEngine::open(engine.into_media(), StoreConfig::default()).unwrap();
        assert_eq!(engine.get("k"), None, "tombstone replays as a delete");
    }

    #[test]
    fn abort_leaves_state_untouched() {
        let mut engine = open_mem();
        commit_one(&mut engine, "x", 1);
        engine.begin().unwrap();
        engine.put("x", Value::Int(99)).unwrap();
        engine.abort().unwrap();
        assert_eq!(engine.get("x"), Some(&Value::Int(1)));
        let engine = StoreEngine::open(engine.into_media(), StoreConfig::default()).unwrap();
        assert_eq!(engine.get("x"), Some(&Value::Int(1)));
    }

    #[test]
    fn compaction_preserves_state_and_resets_the_log() {
        let mut engine = StoreEngine::open(
            MemMedia::new(),
            StoreConfig {
                compact_wal_bytes: 1,
            },
        )
        .unwrap();
        for i in 0..10 {
            commit_one(&mut engine, &format!("k{i}"), i);
        }
        assert!(engine.stats().compactions >= 9, "every commit over-filled");
        assert!(engine.log_bytes() < 64);
        assert!(engine.snapshot_bytes() > 0);
        let engine = StoreEngine::open(engine.into_media(), StoreConfig::default()).unwrap();
        assert_eq!(engine.len(), 10);
        assert_eq!(engine.get("k9"), Some(&Value::Int(9)));
    }

    #[test]
    fn crash_between_snapshot_and_reset_is_tolerated() {
        // Simulate the window by syncing a snapshot but never resetting.
        let mut engine = open_mem();
        commit_one(&mut engine, "a", 1);
        let snap_bytes = encode_snapshot(engine.state(), 5);
        let media = engine.media_mut();
        media.snapshot_write(&snap_bytes);
        media.sync();
        // Crash: snapshot installed, full WAL still present.
        let mut media = engine.into_media();
        media.crash();
        let engine = StoreEngine::open(media, StoreConfig::default()).unwrap();
        assert_eq!(engine.get("a"), Some(&Value::Int(1)), "redo is idempotent");
        assert!(engine.recovery_report().snapshot_loaded);
    }

    #[test]
    fn batch_ids_stay_monotone_across_restart_and_compaction() {
        let mut engine = open_mem();
        let t1 = engine.begin().unwrap();
        engine.put("a", Value::Int(1)).unwrap();
        engine.commit().unwrap();
        engine.compact();
        let engine = StoreEngine::open(engine.into_media(), StoreConfig::default()).unwrap();
        let mut engine = engine;
        let t2 = engine.begin().unwrap();
        assert!(t2.raw() > t1.raw());
    }

    #[test]
    fn open_batch_survives_compaction() {
        let mut engine = open_mem();
        commit_one(&mut engine, "a", 1);
        engine.begin().unwrap();
        engine.put("b", Value::Int(2)).unwrap();
        engine.compact();
        engine.commit().unwrap();
        let engine = StoreEngine::open(engine.into_media(), StoreConfig::default()).unwrap();
        assert_eq!(engine.get("b"), Some(&Value::Int(2)));
    }

    #[test]
    fn misuse_is_reported() {
        let mut engine = open_mem();
        assert_eq!(engine.commit(), Err(StoreError::NoOpenBatch));
        assert_eq!(engine.abort(), Err(StoreError::NoOpenBatch));
        assert_eq!(engine.put("k", Value::Int(1)), Err(StoreError::NoOpenBatch));
        engine.begin().unwrap();
        assert_eq!(engine.begin().unwrap_err(), StoreError::BatchAlreadyOpen);
    }
}
