//! Stable media: the boundary between what survives a crash and what
//! does not.
//!
//! The store engine never talks to bytes-at-rest directly; it appends to
//! a WAL and stages snapshots through a [`StableMedia`], and only what
//! has been [`sync`](StableMedia::sync)ed is promised to survive
//! [`crash`](StableMedia::crash). Two implementations:
//!
//! - [`MemMedia`] — deterministic in-memory media with an explicit
//!   synced watermark, the medium every simulation and property test
//!   uses. `crash()` discards the unsynced WAL tail and any staged
//!   snapshot, exactly like power loss under a buffered file.
//! - [`FileMedia`] — the same contract over real files (append-only WAL
//!   file, snapshot replaced via write-to-temp + rename), for runs that
//!   want bytes on disk. Writes are buffered in memory until `sync`, so
//!   `crash()` models the same loss window.
//!
//! Snapshot replacement is atomic at sync: a crash either keeps the old
//! snapshot or installs the new one, never a torn mixture. Resetting
//! the WAL ([`wal_reset`](StableMedia::wal_reset)) is likewise atomic —
//! it models a rename, not an in-place truncate — and the engine orders
//! it strictly after the covering snapshot's sync, so a crash between
//! the two leaves snapshot + over-long log, which replay tolerates.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Durable byte storage with an explicit crash model.
pub trait StableMedia {
    /// Appends bytes to the WAL (volatile until [`sync`](Self::sync)).
    fn wal_append(&mut self, bytes: &[u8]);

    /// All readable WAL bytes, including the unsynced tail.
    fn wal_bytes(&self) -> &[u8];

    /// Atomically replaces the whole WAL (compaction). Durable
    /// immediately, like a rename over the old log.
    fn wal_reset(&mut self, bytes: &[u8]);

    /// Stages a snapshot, atomically replacing the previous one at the
    /// next [`sync`](Self::sync).
    fn snapshot_write(&mut self, bytes: &[u8]);

    /// The current durable snapshot, if one has ever been synced.
    fn snapshot_bytes(&self) -> Option<&[u8]>;

    /// Makes every appended WAL byte and any staged snapshot
    /// crash-proof.
    fn sync(&mut self);

    /// Simulates power loss: the unsynced WAL tail and any staged (but
    /// unsynced) snapshot are gone; everything synced survives.
    fn crash(&mut self);

    /// Bytes currently occupied by the WAL (synced or not).
    fn wal_len(&self) -> usize {
        self.wal_bytes().len()
    }

    /// Bytes occupied by the durable snapshot.
    fn snapshot_len(&self) -> usize {
        self.snapshot_bytes().map_or(0, <[u8]>::len)
    }
}

/// Deterministic in-memory stable media.
#[derive(Debug, Default, Clone)]
pub struct MemMedia {
    wal: Vec<u8>,
    synced: usize,
    snapshot: Option<Vec<u8>>,
    staged_snapshot: Option<Vec<u8>>,
}

impl MemMedia {
    /// Fresh, empty media.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many WAL bytes are currently durable.
    pub fn synced_len(&self) -> usize {
        self.synced
    }

    /// Truncates the *durable* WAL to `len` bytes — the probe the
    /// crash-at-every-prefix property test uses to stand at each
    /// possible crash point.
    pub fn truncate_wal(&mut self, len: usize) {
        self.wal.truncate(len);
        self.synced = self.synced.min(len);
    }
}

impl StableMedia for MemMedia {
    fn wal_append(&mut self, bytes: &[u8]) {
        self.wal.extend_from_slice(bytes);
    }

    fn wal_bytes(&self) -> &[u8] {
        &self.wal
    }

    fn wal_reset(&mut self, bytes: &[u8]) {
        self.wal = bytes.to_vec();
        self.synced = self.wal.len();
    }

    fn snapshot_write(&mut self, bytes: &[u8]) {
        self.staged_snapshot = Some(bytes.to_vec());
    }

    fn snapshot_bytes(&self) -> Option<&[u8]> {
        self.snapshot.as_deref()
    }

    fn sync(&mut self) {
        self.synced = self.wal.len();
        if let Some(staged) = self.staged_snapshot.take() {
            self.snapshot = Some(staged);
        }
    }

    fn crash(&mut self) {
        self.wal.truncate(self.synced);
        self.staged_snapshot = None;
    }
}

/// [`StableMedia`] over two real files: `<base>.wal` and `<base>.snap`.
///
/// Appends are buffered in memory and written + flushed at `sync`; the
/// snapshot goes through `<base>.snap.tmp` and a rename. `crash()` drops
/// the buffer and re-reads the files, modelling the same loss window as
/// [`MemMedia`].
#[derive(Debug)]
pub struct FileMedia {
    wal_path: PathBuf,
    snap_path: PathBuf,
    /// Full WAL image: durable prefix + buffered tail.
    wal: Vec<u8>,
    /// How many of `wal`'s bytes are on disk.
    on_disk: usize,
    snapshot: Option<Vec<u8>>,
    staged_snapshot: Option<Vec<u8>>,
}

impl FileMedia {
    /// Opens (or creates) media at `<base>.wal` / `<base>.snap`.
    ///
    /// # Errors
    ///
    /// Propagates file-system failures.
    pub fn open(base: &Path) -> std::io::Result<Self> {
        let wal_path = base.with_extension("wal");
        let snap_path = base.with_extension("snap");
        if let Some(dir) = base.parent() {
            fs::create_dir_all(dir)?;
        }
        let wal = match fs::read(&wal_path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let snapshot = match fs::read(&snap_path) {
            Ok(bytes) => Some(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        let on_disk = wal.len();
        Ok(Self {
            wal_path,
            snap_path,
            wal,
            on_disk,
            snapshot,
            staged_snapshot: None,
        })
    }

    fn persist(&mut self) -> std::io::Result<()> {
        if self.wal.len() > self.on_disk {
            let mut f = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.wal_path)?;
            f.write_all(&self.wal[self.on_disk..])?;
            f.sync_data()?;
            self.on_disk = self.wal.len();
        }
        if let Some(staged) = self.staged_snapshot.take() {
            let tmp = self.snap_path.with_extension("snap.tmp");
            fs::write(&tmp, &staged)?;
            fs::rename(&tmp, &self.snap_path)?;
            self.snapshot = Some(staged);
        }
        Ok(())
    }
}

impl StableMedia for FileMedia {
    fn wal_append(&mut self, bytes: &[u8]) {
        self.wal.extend_from_slice(bytes);
    }

    fn wal_bytes(&self) -> &[u8] {
        &self.wal
    }

    fn wal_reset(&mut self, bytes: &[u8]) {
        let tmp = self.wal_path.with_extension("wal.tmp");
        fs::write(&tmp, bytes).expect("write compacted WAL");
        fs::rename(&tmp, &self.wal_path).expect("install compacted WAL");
        self.wal = bytes.to_vec();
        self.on_disk = self.wal.len();
    }

    fn snapshot_write(&mut self, bytes: &[u8]) {
        self.staged_snapshot = Some(bytes.to_vec());
    }

    fn snapshot_bytes(&self) -> Option<&[u8]> {
        self.snapshot.as_deref()
    }

    fn sync(&mut self) {
        self.persist().expect("sync stable media");
    }

    fn crash(&mut self) {
        self.wal.truncate(self.on_disk);
        self.staged_snapshot = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_media_crash_loses_only_the_unsynced_tail() {
        let mut m = MemMedia::new();
        m.wal_append(b"abc");
        m.sync();
        m.wal_append(b"def");
        m.snapshot_write(b"snap");
        assert_eq!(m.wal_bytes(), b"abcdef");
        m.crash();
        assert_eq!(m.wal_bytes(), b"abc");
        assert_eq!(m.snapshot_bytes(), None, "staged snapshot is lost");
        m.snapshot_write(b"snap2");
        m.sync();
        m.crash();
        assert_eq!(m.snapshot_bytes(), Some(&b"snap2"[..]));
    }

    #[test]
    fn mem_media_reset_is_durable() {
        let mut m = MemMedia::new();
        m.wal_append(b"old records");
        m.sync();
        m.wal_reset(b"tail");
        m.crash();
        assert_eq!(m.wal_bytes(), b"tail");
        assert_eq!(m.synced_len(), 4);
    }

    #[test]
    fn file_media_round_trips_across_reopen() {
        let base = std::env::temp_dir().join(format!(
            "rmodp-store-media-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_file(base.with_extension("wal"));
        let _ = fs::remove_file(base.with_extension("snap"));

        let mut m = FileMedia::open(&base).unwrap();
        m.wal_append(b"r1");
        m.sync();
        m.wal_append(b"r2-unsynced");
        m.crash();
        assert_eq!(m.wal_bytes(), b"r1", "unsynced tail gone");
        m.snapshot_write(b"state");
        m.sync();
        drop(m);

        let m = FileMedia::open(&base).unwrap();
        assert_eq!(m.wal_bytes(), b"r1");
        assert_eq!(m.snapshot_bytes(), Some(&b"state"[..]));
        let _ = fs::remove_file(base.with_extension("wal"));
        let _ = fs::remove_file(base.with_extension("snap"));
    }
}
