//! Frame encoding for the durable write-ahead log.
//!
//! The in-memory redo/undo machinery lives in
//! [`rmodp_transactions::log`]; this module gives its [`LogRecord`]s a
//! byte form safe to read back after an arbitrary crash point. Each
//! record is framed as
//!
//! ```text
//! [len: u32 LE] [fnv1a(payload): u64 LE] [payload: binary-syntax Value]
//! ```
//!
//! and decoding stops at the first frame that is incomplete or fails its
//! checksum: whatever a crash left beyond the last fully-synced frame is
//! discarded, never misread. That is exactly the property the
//! crash-at-every-prefix test pins — the decoded stream equals the
//! longest valid frame prefix, byte-truncation anywhere included.

use rmodp_core::codec::{syntax_for, SyntaxId};
use rmodp_transactions::log::LogRecord;

/// FNV-1a over a byte slice — the per-frame checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encodes one record as a checksummed frame.
pub fn encode_frame(record: &LogRecord) -> Vec<u8> {
    let payload = syntax_for(SyntaxId::Binary).encode(&record.to_value());
    let mut out = Vec::with_capacity(12 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// The outcome of scanning a WAL image.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedWal {
    /// Every record recovered, in log order.
    pub records: Vec<LogRecord>,
    /// How many leading bytes formed valid frames.
    pub valid_len: usize,
    /// Whether trailing bytes were discarded (torn frame, bad checksum,
    /// or undecodable payload).
    pub truncated_tail: bool,
}

/// Scans a WAL image, returning the longest valid frame prefix.
pub fn decode_frames(bytes: &[u8]) -> DecodedWal {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while let Some(header) = bytes.get(pos..pos + 12) {
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
        let Some(payload) = bytes.get(pos + 12..pos + 12 + len) else {
            break;
        };
        if fnv1a(payload) != crc {
            break;
        }
        let Ok(value) = syntax_for(SyntaxId::Binary).decode(payload) else {
            break;
        };
        let Ok(record) = LogRecord::from_value(&value) else {
            break;
        };
        records.push(record);
        pos += 12 + len;
    }
    DecodedWal {
        records,
        valid_len: pos,
        truncated_tail: pos != bytes.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmodp_core::id::TxId;
    use rmodp_core::value::Value;

    fn sample() -> Vec<LogRecord> {
        vec![
            LogRecord::Begin { tx: TxId::new(1) },
            LogRecord::Write {
                tx: TxId::new(1),
                item: "oo7/atomic/3".to_owned(),
                before: None,
                after: Value::record([("x", Value::Int(9))]),
            },
            LogRecord::Commit { tx: TxId::new(1) },
        ]
    }

    #[test]
    fn frames_round_trip() {
        let mut image = Vec::new();
        for r in sample() {
            image.extend_from_slice(&encode_frame(&r));
        }
        let decoded = decode_frames(&image);
        assert_eq!(decoded.records, sample());
        assert_eq!(decoded.valid_len, image.len());
        assert!(!decoded.truncated_tail);
    }

    #[test]
    fn truncation_at_every_byte_yields_a_frame_prefix() {
        let mut image = Vec::new();
        let mut boundaries = vec![0usize];
        for r in sample() {
            image.extend_from_slice(&encode_frame(&r));
            boundaries.push(image.len());
        }
        for cut in 0..=image.len() {
            let decoded = decode_frames(&image[..cut]);
            let frames_complete = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(
                decoded.records.len(),
                frames_complete,
                "cut at byte {cut} must recover exactly the whole frames before it"
            );
            assert_eq!(decoded.records, sample()[..frames_complete]);
        }
    }

    #[test]
    fn corrupt_byte_stops_the_scan() {
        let mut image = Vec::new();
        for r in sample() {
            image.extend_from_slice(&encode_frame(&r));
        }
        // Flip one payload byte of the second frame.
        let first = encode_frame(&sample()[0]).len();
        image[first + 13] ^= 0xff;
        let decoded = decode_frames(&image);
        assert_eq!(decoded.records.len(), 1, "scan stops at the bad frame");
        assert!(decoded.truncated_tail);
        assert_eq!(decoded.valid_len, first);
    }
}
