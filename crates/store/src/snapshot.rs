//! Snapshot codec: the full committed state as one checksummed blob.
//!
//! A snapshot is the compaction point — everything the WAL had applied
//! when it was taken — plus the batch-id high-water mark, so identifiers
//! stay monotone across restarts. It is framed exactly like a WAL
//! record (`len`/`fnv1a`/payload), and installation is atomic at the
//! media layer, so recovery sees either the old or the new snapshot in
//! full, never a torn one.

use std::collections::BTreeMap;

use rmodp_core::codec::{syntax_for, SyntaxId};
use rmodp_core::value::Value;

use crate::wal::fnv1a;

/// A decoded snapshot.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// The committed keyspace at the compaction point.
    pub state: BTreeMap<String, Value>,
    /// The next batch id the engine should hand out.
    pub next_batch: u64,
}

/// Encodes a snapshot as one checksummed frame. Takes the live state by
/// reference so compaction never clones the whole keyspace (values are
/// cloned entry-wise into the transfer form only).
pub fn encode_snapshot(state: &BTreeMap<String, Value>, next_batch: u64) -> Vec<u8> {
    let entries = Value::Seq(
        state
            .iter()
            .map(|(k, v)| Value::record([("k", Value::text(k.clone())), ("v", v.clone())]))
            .collect(),
    );
    let doc = Value::record([
        ("entries", entries),
        ("next_batch", Value::Int(next_batch as i64)),
    ]);
    let payload = syntax_for(SyntaxId::Binary).encode(&doc);
    let mut out = Vec::with_capacity(12 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes a snapshot frame.
///
/// # Errors
///
/// A description of the first structural problem (truncation, checksum
/// mismatch, bad payload).
pub fn decode_snapshot(bytes: &[u8]) -> Result<Snapshot, String> {
    let header = bytes.get(..12).ok_or("snapshot shorter than its header")?;
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
    let crc = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
    let payload = bytes
        .get(12..12 + len)
        .ok_or("snapshot payload truncated")?;
    if fnv1a(payload) != crc {
        return Err("snapshot checksum mismatch".to_owned());
    }
    let doc = syntax_for(SyntaxId::Binary)
        .decode(payload)
        .map_err(|e| e.to_string())?;
    let mut state = BTreeMap::new();
    for entry in doc
        .field("entries")
        .and_then(Value::as_seq)
        .ok_or("snapshot without entries")?
    {
        let k = entry
            .field("k")
            .and_then(Value::as_text)
            .ok_or("entry without key")?
            .to_owned();
        let v = entry.field("v").cloned().ok_or("entry without value")?;
        state.insert(k, v);
    }
    let next_batch = doc
        .field("next_batch")
        .and_then(Value::as_int)
        .ok_or("snapshot without next_batch")? as u64;
    Ok(Snapshot { state, next_batch })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips() {
        let mut state = BTreeMap::new();
        state.insert("a".to_owned(), Value::Int(1));
        state.insert(
            "b".to_owned(),
            Value::record([("nested", Value::text("x"))]),
        );
        let snap = Snapshot {
            state,
            next_batch: 42,
        };
        let bytes = encode_snapshot(&snap.state, snap.next_batch);
        assert_eq!(decode_snapshot(&bytes).unwrap(), snap);
    }

    #[test]
    fn damage_is_detected() {
        let mut bytes = encode_snapshot(&BTreeMap::new(), 0);
        assert!(decode_snapshot(&bytes[..bytes.len() - 1]).is_err());
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(decode_snapshot(&bytes).is_err());
        assert!(decode_snapshot(&[]).is_err());
    }
}
