//! Crash-at-every-prefix: truncate the WAL at *each byte* and check the
//! recovered state equals exactly the committed prefix.
//!
//! This is the store's core durability property. For any batch history
//! and any crash point, recovery must reconstruct precisely the state
//! after the last batch whose commit frame fully survived — never a
//! torn mixture, never a lost committed write, never a leaked
//! uncommitted one.

use std::collections::BTreeMap;

use proptest::prelude::*;

use rmodp_core::value::Value;
use rmodp_store::{MemMedia, StableMedia, StoreConfig, StoreEngine};

/// One staged operation: `Some(v)` puts, `None` deletes.
type Op = (u8, Option<i64>);

/// A batch of operations plus whether it commits (vs aborts).
type Batch = (Vec<Op>, bool);

fn arb_history() -> impl Strategy<Value = Vec<Batch>> {
    proptest::collection::vec(
        (
            proptest::collection::vec((0u8..6, proptest::option::of(-100i64..100)), 0..5),
            any::<bool>(),
        ),
        1..10,
    )
}

fn key(k: u8) -> String {
    format!("item/{k}")
}

/// A WAL length at which a commit frame ends, with the state expected
/// when recovery stops exactly there.
type CommitPoint = (usize, BTreeMap<String, Value>);

/// Runs the history, recording after each committed batch the WAL length
/// at which its commit frame ends and the expected state at that point.
fn run_history(history: &[Batch]) -> (MemMedia, Vec<CommitPoint>) {
    let mut engine = StoreEngine::open(MemMedia::new(), StoreConfig::default()).unwrap();
    let mut shadow: BTreeMap<String, Value> = BTreeMap::new();
    let mut commit_points = vec![(0usize, shadow.clone())];
    for (ops, commits) in history {
        engine.begin().unwrap();
        for (k, op) in ops {
            match op {
                Some(v) => engine.put(&key(*k), Value::Int(*v)).unwrap(),
                None => engine.delete(&key(*k)).unwrap(),
            }
        }
        if *commits {
            engine.commit().unwrap();
            for (k, op) in ops {
                match op {
                    Some(v) => {
                        shadow.insert(key(*k), Value::Int(*v));
                    }
                    None => {
                        shadow.remove(&key(*k));
                    }
                }
            }
            commit_points.push((engine.log_bytes(), shadow.clone()));
        } else {
            engine.abort().unwrap();
        }
    }
    (engine.into_media(), commit_points)
}

fn assert_every_prefix_recovers(history: &[Batch]) {
    let (media, commit_points) = run_history(history);
    let total = media.wal_len();
    for cut in 0..=total {
        let mut crashed = media.clone();
        crashed.truncate_wal(cut);
        let recovered = StoreEngine::open(crashed, StoreConfig::default()).unwrap();
        let expected = &commit_points
            .iter()
            .rev()
            .find(|(end, _)| *end <= cut)
            .expect("point 0 always qualifies")
            .1;
        assert_eq!(
            recovered.state(),
            expected,
            "cut at byte {cut}/{total}: recovered state must equal the committed prefix"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn recovery_equals_committed_prefix_at_every_byte(history in arb_history()) {
        assert_every_prefix_recovers(&history);
    }
}

#[test]
fn recovery_equals_committed_prefix_for_a_dense_history() {
    // Deterministic exhaustive case: overwrites, deletes, an abort in
    // the middle, re-creation after delete.
    let history: Vec<Batch> = vec![
        (vec![(0, Some(1)), (1, Some(2))], true),
        (vec![(0, Some(10)), (2, Some(3))], true),
        (vec![(1, None)], true),
        (vec![(0, Some(-5)), (3, Some(4))], false), // aborted
        (vec![(1, Some(20)), (0, None)], true),
    ];
    assert_every_prefix_recovers(&history);
}

#[test]
fn recovery_equals_committed_prefix_across_compaction() {
    // Same property but with a compaction inside the history: cuts into
    // the post-compaction WAL must recover snapshot + surviving tail.
    let mut engine = StoreEngine::open(MemMedia::new(), StoreConfig::default()).unwrap();
    engine.begin().unwrap();
    engine.put("a", Value::Int(1)).unwrap();
    engine.commit().unwrap();
    engine.compact();
    let mut commit_points = vec![(engine.log_bytes(), engine.state().clone())];
    for i in 0..4 {
        engine.begin().unwrap();
        engine.put("b", Value::Int(i)).unwrap();
        engine.commit().unwrap();
        commit_points.push((engine.log_bytes(), engine.state().clone()));
    }
    let media = engine.into_media();
    for cut in 0..=media.wal_len() {
        let mut crashed = media.clone();
        crashed.truncate_wal(cut);
        let recovered = StoreEngine::open(crashed, StoreConfig::default()).unwrap();
        let expected = &commit_points
            .iter()
            .rev()
            .find(|(end, _)| *end <= cut)
            .expect("compaction point always qualifies")
            .1;
        assert_eq!(recovered.state(), expected, "cut at byte {cut}");
    }
}
