//! # rmodp-profile — critical-path analysis over the observability stream
//!
//! The tutorial makes monitoring a first-class function of the
//! infrastructure; PR 2's event bus records *what happened*, and this
//! crate answers *where the time went*. [`analyze`] walks the span graph
//! of every completed invocation in a trace and attributes its
//! end-to-end virtual-time latency to named segments:
//!
//! | segment          | meaning                                             |
//! |------------------|-----------------------------------------------------|
//! | `marshal`        | client-side stack traversal before the first send   |
//! | `link.request`   | request frame in flight                             |
//! | `queue.wait`     | parked in the server's admission queue              |
//! | `server.service` | server-side dispatch and execution                  |
//! | `link.reply`     | reply frame in flight                               |
//! | `reply.path`     | reply delivered but not yet collected by the caller |
//! | `retry.wait`     | client waiting out a loss: timeout and backoff      |
//!
//! The attribution is **exact by construction**: segments partition the
//! interval from `CallStart` to `CallEnd`, with boundaries at the
//! trace's own milestone events, so their sum always equals the observed
//! latency — the property tests assert it for every invocation in every
//! scenario. Outputs are deterministic (same trace, same bytes):
//! [`folded_stacks`] renders flamegraph-compatible folded lines and
//! [`attribution_table`] a per-operation breakdown.

use rmodp_observe::event::{Event, EventKind, Layer, SpanId};
use std::collections::{BTreeMap, BTreeSet};

/// The fixed segment vocabulary, in display order.
pub const SEGMENTS: [&str; 7] = [
    "marshal",
    "link.request",
    "queue.wait",
    "server.service",
    "link.reply",
    "reply.path",
    "retry.wait",
];

/// Where one invocation's virtual time went.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvocationProfile {
    /// The invocation's call span.
    pub span: SpanId,
    /// Operation name, parsed from the `CallStart` detail.
    pub op: String,
    /// Channel the call travelled on, if recorded.
    pub channel: Option<u64>,
    /// `CallStart` virtual time, µs.
    pub start_us: u64,
    /// `CallEnd` virtual time, µs.
    pub end_us: u64,
    /// Outcome, parsed from the `CallEnd` detail (termination name or
    /// `error: …`).
    pub outcome: String,
    /// Microseconds attributed to each segment, keyed by [`SEGMENTS`]
    /// order; zero-valued segments are included so rows align.
    pub segments: Vec<(&'static str, u64)>,
}

impl InvocationProfile {
    /// End-to-end virtual-time latency, µs.
    pub fn total_us(&self) -> u64 {
        self.end_us - self.start_us
    }

    /// Sum of attributed segments — equals [`total_us`] by construction.
    ///
    /// [`total_us`]: Self::total_us
    pub fn segment_sum(&self) -> u64 {
        self.segments.iter().map(|&(_, v)| v).sum()
    }

    /// Microseconds attributed to one segment (0 if unknown name).
    pub fn segment(&self, name: &str) -> u64 {
        self.segments
            .iter()
            .find(|&&(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }
}

/// Parses `op=NAME …` details.
fn parse_op(detail: &str) -> String {
    detail
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("op="))
        .unwrap_or("?")
        .to_owned()
}

/// Parses the outcome from `op=NAME -> OUTCOME` details.
fn parse_outcome(detail: &str) -> String {
    match detail.split_once("-> ") {
        Some((_, rest)) => rest.to_owned(),
        None => String::new(),
    }
}

/// Profiles every completed invocation (a span with both `CallStart` and
/// `CallEnd`) in the trace, in start order. Invocations still in flight
/// at the end of the trace are skipped — they have no end to attribute
/// to. On a sampled trace this simply profiles the invocations the
/// sampler kept; head-based sampling keeps whole trees, so each kept
/// profile is identical to its unsampled counterpart.
pub fn analyze(events: &[Event]) -> Vec<InvocationProfile> {
    // Span → first-declared parent, and span → events (by index).
    let mut parent_of: BTreeMap<SpanId, SpanId> = BTreeMap::new();
    let mut events_of: BTreeMap<SpanId, Vec<usize>> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        if let Some(span) = e.span {
            events_of.entry(span).or_default().push(i);
            if let Some(parent) = e.parent {
                parent_of.entry(span).or_insert(parent);
            }
        }
    }
    // Message spans: allocated by the network at send time, so their
    // first event is a netsim Send or Drop.
    let is_message_span = |span: SpanId| -> bool {
        events_of.get(&span).is_some_and(|idxs| {
            idxs.first().is_some_and(|&i| {
                events[i].layer == Layer::Netsim
                    && matches!(events[i].kind, EventKind::Send | EventKind::Drop)
            })
        })
    };
    // Children of each span, for request/reply discovery.
    let mut children_of: BTreeMap<SpanId, Vec<SpanId>> = BTreeMap::new();
    for (&span, &parent) in &parent_of {
        children_of.entry(parent).or_default().push(span);
    }

    let mut profiles = Vec::new();
    for (&call_span, idxs) in &events_of {
        let start = idxs
            .iter()
            .map(|&i| &events[i])
            .find(|e| e.kind == EventKind::CallStart);
        let end = idxs
            .iter()
            .map(|&i| &events[i])
            .find(|e| e.kind == EventKind::CallEnd);
        let (Some(start), Some(end)) = (start, end) else {
            continue;
        };

        // Request messages: message spans parented directly on the call;
        // replies: message spans parented on a request message. (A
        // nested call's spans parent on the nested call span, so they
        // never leak into this invocation's attribution.)
        let request_spans: BTreeSet<SpanId> = children_of
            .get(&call_span)
            .into_iter()
            .flatten()
            .copied()
            .filter(|&s| is_message_span(s))
            .collect();
        let reply_spans: BTreeSet<SpanId> = request_spans
            .iter()
            .filter_map(|s| children_of.get(s))
            .flatten()
            .copied()
            .filter(|&s| is_message_span(s))
            .collect();

        // Member events in emission order, bounded by the call's own
        // lifetime (a late duplicate reply lands after CallEnd and must
        // not perturb the attribution).
        let mut member: Vec<&Event> = Vec::new();
        for &s in std::iter::once(&call_span)
            .chain(request_spans.iter())
            .chain(reply_spans.iter())
        {
            member.extend(
                events_of[&s]
                    .iter()
                    .map(|&i| &events[i])
                    .filter(|e| e.seq >= start.seq && e.seq <= end.seq),
            );
        }
        member.sort_by_key(|e| e.seq);

        // Label state machine: each milestone closes the running segment
        // at its own timestamp and opens the next. Segments therefore
        // partition [start, end] exactly.
        let mut totals: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut label: &'static str = "marshal";
        let mut since = start.t_us;
        for e in &member {
            let next: Option<&'static str> = match e.kind {
                EventKind::Send if e.span.is_some_and(|s| request_spans.contains(&s)) => {
                    Some("link.request")
                }
                EventKind::Send if e.span.is_some_and(|s| reply_spans.contains(&s)) => {
                    Some("link.reply")
                }
                EventKind::Drop => Some("retry.wait"),
                EventKind::Deliver if e.span.is_some_and(|s| request_spans.contains(&s)) => {
                    Some("server.service")
                }
                EventKind::Deliver if e.span.is_some_and(|s| reply_spans.contains(&s)) => {
                    Some("reply.path")
                }
                EventKind::AdmissionEnqueue => Some("queue.wait"),
                EventKind::AdmissionDispatch => Some("server.service"),
                EventKind::Retry => Some("retry.wait"),
                _ => None,
            };
            if let Some(next) = next {
                *totals.entry(label).or_insert(0) += e.t_us.saturating_sub(since);
                since = e.t_us;
                label = next;
            }
        }
        *totals.entry(label).or_insert(0) += end.t_us.saturating_sub(since);

        profiles.push(InvocationProfile {
            span: call_span,
            op: parse_op(&start.detail),
            channel: start.channel,
            start_us: start.t_us,
            end_us: end.t_us,
            outcome: parse_outcome(&end.detail),
            segments: SEGMENTS
                .iter()
                .map(|&s| (s, totals.get(s).copied().unwrap_or(0)))
                .collect(),
        });
    }
    profiles.sort_by_key(|p| (p.start_us, p.span));
    profiles
}

/// Renders profiles as flamegraph-compatible folded stacks: one line per
/// `(operation, segment)` with the µs total as the sample count, ops
/// sorted, segments in [`SEGMENTS`] order, zero rows omitted.
/// Deterministic: the same profiles always render to the same bytes.
pub fn folded_stacks(profiles: &[InvocationProfile]) -> String {
    let mut totals: BTreeMap<&str, BTreeMap<&'static str, u64>> = BTreeMap::new();
    for p in profiles {
        let per_op = totals.entry(p.op.as_str()).or_default();
        for &(seg, us) in &p.segments {
            *per_op.entry(seg).or_insert(0) += us;
        }
    }
    let mut out = String::new();
    for (op, per_op) in &totals {
        for seg in SEGMENTS {
            if let Some(&us) = per_op.get(seg) {
                if us > 0 {
                    out.push_str(&format!("invoke.{op};{seg} {us}\n"));
                }
            }
        }
    }
    out
}

/// Renders a per-operation attribution table: calls, mean latency, and
/// the µs total per segment. Deterministic byte-for-byte.
pub fn attribution_table(profiles: &[InvocationProfile]) -> String {
    struct Row {
        calls: u64,
        total: u64,
        segs: BTreeMap<&'static str, u64>,
    }
    let mut rows: BTreeMap<&str, Row> = BTreeMap::new();
    for p in profiles {
        let row = rows.entry(p.op.as_str()).or_insert(Row {
            calls: 0,
            total: 0,
            segs: BTreeMap::new(),
        });
        row.calls += 1;
        row.total += p.total_us();
        for &(seg, us) in &p.segments {
            *row.segs.entry(seg).or_insert(0) += us;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{:<18} {:>6} {:>10}", "op", "calls", "total_us"));
    for seg in SEGMENTS {
        out.push_str(&format!(" {seg:>14}"));
    }
    out.push('\n');
    for (op, row) in &rows {
        out.push_str(&format!("{:<18} {:>6} {:>10}", op, row.calls, row.total));
        for seg in SEGMENTS {
            out.push_str(&format!(" {:>14}", row.segs.get(seg).copied().unwrap_or(0)));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmodp_observe::event::{Event, EventKind, Layer};

    fn ev(
        seq: u64,
        t_us: u64,
        layer: Layer,
        kind: EventKind,
        span: Option<u64>,
        parent: Option<u64>,
        detail: &str,
    ) -> Event {
        Event {
            seq,
            t_us,
            layer,
            kind,
            span,
            parent,
            node: None,
            port: None,
            channel: Some(1),
            capsule: None,
            detail: detail.into(),
        }
    }

    /// A hand-built trace of one queued invocation, mirroring the real
    /// emission order: marshal 0µs, link 500µs each way, 300µs queued,
    /// service 0µs (dispatch and reply send coincide).
    fn queued_call() -> Vec<Event> {
        use EventKind::*;
        use Layer::*;
        vec![
            ev(0, 0, Engineering, CallStart, Some(1), None, "op=Add"),
            ev(1, 0, Engineering, Marshal, Some(1), None, "Text -> Binary"),
            ev(2, 0, Netsim, Send, Some(2), Some(1), "-> n0:0"),
            ev(3, 500, Netsim, Deliver, Some(2), None, "<- n1:1"),
            ev(4, 500, Engineering, AdmissionEnqueue, Some(2), None, ""),
            ev(5, 800, Engineering, AdmissionDispatch, Some(2), None, ""),
            ev(6, 800, Netsim, Send, Some(3), Some(2), "-> n1:1"),
            ev(7, 1300, Netsim, Deliver, Some(3), None, "<- n0:0"),
            ev(8, 1300, Engineering, CallEnd, Some(1), None, "op=Add -> OK"),
        ]
    }

    #[test]
    fn queued_call_attributes_each_segment() {
        let profiles = analyze(&queued_call());
        assert_eq!(profiles.len(), 1);
        let p = &profiles[0];
        assert_eq!(p.op, "Add");
        assert_eq!(p.outcome, "OK");
        assert_eq!(p.total_us(), 1300);
        assert_eq!(p.segment_sum(), p.total_us());
        assert_eq!(p.segment("marshal"), 0);
        assert_eq!(p.segment("link.request"), 500);
        assert_eq!(p.segment("queue.wait"), 300);
        assert_eq!(p.segment("server.service"), 0);
        assert_eq!(p.segment("link.reply"), 500);
        assert_eq!(p.segment("reply.path"), 0);
    }

    #[test]
    fn dropped_request_counts_as_retry_wait() {
        use EventKind::*;
        use Layer::*;
        let evs = vec![
            ev(0, 0, Engineering, CallStart, Some(1), None, "op=Get"),
            ev(1, 0, Netsim, Send, Some(2), Some(1), ""),
            ev(2, 0, Netsim, Drop, Some(2), None, "random loss"),
            ev(
                3,
                2000,
                Engineering,
                Retry,
                Some(1),
                None,
                "op=Get attempt=1",
            ),
            ev(4, 2000, Netsim, Send, Some(3), Some(1), ""),
            ev(5, 2500, Netsim, Deliver, Some(3), None, ""),
            ev(6, 2500, Netsim, Send, Some(4), Some(3), ""),
            ev(7, 3000, Netsim, Deliver, Some(4), None, ""),
            ev(8, 3000, Engineering, CallEnd, Some(1), None, "op=Get -> OK"),
        ];
        let p = &analyze(&evs)[0];
        assert_eq!(p.total_us(), 3000);
        assert_eq!(p.segment_sum(), 3000);
        assert_eq!(p.segment("retry.wait"), 2000);
        assert_eq!(p.segment("link.request"), 500);
        assert_eq!(p.segment("link.reply"), 500);
    }

    #[test]
    fn late_reply_after_call_end_is_ignored() {
        use EventKind::*;
        use Layer::*;
        let mut evs = queued_call();
        // A duplicate reply delivered long after the call closed.
        evs.push(ev(9, 9000, Netsim, Send, Some(4), Some(2), "dup"));
        evs.push(ev(10, 9500, Netsim, Deliver, Some(4), None, "dup"));
        let p = &analyze(&evs)[0];
        assert_eq!(p.total_us(), 1300);
        assert_eq!(p.segment_sum(), 1300);
    }

    #[test]
    fn in_flight_call_is_skipped() {
        use EventKind::*;
        use Layer::*;
        let evs = vec![ev(0, 0, Engineering, CallStart, Some(1), None, "op=Add")];
        assert!(analyze(&evs).is_empty());
    }

    #[test]
    fn folded_stacks_and_table_are_deterministic_and_nonzero_only() {
        let profiles = analyze(&queued_call());
        let folded = folded_stacks(&profiles);
        assert_eq!(folded, folded_stacks(&profiles));
        assert!(folded.contains("invoke.Add;link.request 500"));
        assert!(folded.contains("invoke.Add;queue.wait 300"));
        assert!(!folded.contains("server.service"), "zero rows omitted");
        let table = attribution_table(&profiles);
        assert!(table.contains("Add"));
        assert!(table.contains("1300"));
    }

    #[test]
    fn nested_call_spans_do_not_leak_into_parent() {
        use EventKind::*;
        use Layer::*;
        // Outer call 1 encloses inner call 5 (parented on 1); the inner
        // call's message span 6 must not flip the outer's labels.
        let evs = vec![
            ev(0, 0, Engineering, CallStart, Some(1), None, "op=Outer"),
            ev(1, 0, Engineering, CallStart, Some(5), Some(1), "op=Inner"),
            ev(2, 0, Netsim, Send, Some(6), Some(5), ""),
            ev(3, 400, Netsim, Deliver, Some(6), None, ""),
            ev(4, 400, Netsim, Send, Some(7), Some(6), ""),
            ev(5, 700, Netsim, Deliver, Some(7), None, ""),
            ev(
                6,
                700,
                Engineering,
                CallEnd,
                Some(5),
                None,
                "op=Inner -> OK",
            ),
            ev(
                7,
                700,
                Engineering,
                CallEnd,
                Some(1),
                None,
                "op=Outer -> OK",
            ),
        ];
        let profiles = analyze(&evs);
        assert_eq!(profiles.len(), 2);
        let outer = profiles.iter().find(|p| p.op == "Outer").unwrap();
        let inner = profiles.iter().find(|p| p.op == "Inner").unwrap();
        // The outer call saw no message milestones of its own: all its
        // time stays in the opening segment.
        assert_eq!(outer.segment("marshal"), 700);
        assert_eq!(outer.segment_sum(), 700);
        assert_eq!(inner.segment("link.request"), 400);
        assert_eq!(inner.segment("link.reply"), 300);
    }
}
